//===- mechanisms/WqLinear.cpp - Work Queue Linear --------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/WqLinear.h"

#include "mechanisms/ServerNest.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

using namespace dope;

WqLinearMechanism::WqLinearMechanism(WqLinearParams Params) : Params(Params) {
  assert(Params.MMin >= 1 && "Mmin must be positive");
  assert(Params.MMax >= Params.MMin && "Mmax must be at least Mmin");
  assert(Params.QMax > 0.0 && "Qmax must be positive");
}

double WqLinearMechanism::slope() const {
  return static_cast<double>(Params.MMax - Params.MMin) / Params.QMax;
}

unsigned WqLinearMechanism::extentForOccupancy(double Occupancy) const {
  const double Raw =
      static_cast<double>(Params.MMax) - slope() * std::max(0.0, Occupancy);
  const double Clamped = std::max(static_cast<double>(Params.MMin), Raw);
  // Round to the nearest integer extent.
  return static_cast<unsigned>(Clamped + 0.5);
}

std::optional<RegionConfig>
WqLinearMechanism::reconfigure(const ParDescriptor &Region,
                               const RegionSnapshot &Root,
                               const RegionConfig &Current,
                               const MechanismContext &Ctx) {
  (void)Current;
  if (!isServerNest(Region))
    return std::nullopt;
  assert(!Root.Tasks.empty() && "snapshot is empty");

  // Instantaneous occupancy WQo (paper uses the instantaneous value, not
  // the smoothed one, so the mechanism can react within one decision).
  const double Occupancy = Root.Tasks.front().LastLoad;
  unsigned Extent = extentForOccupancy(Occupancy);

  if (LastExtent != 0 && Params.HysteresisBand > 0) {
    const unsigned Delta = Extent > LastExtent ? Extent - LastExtent
                                               : LastExtent - Extent;
    if (Delta <= Params.HysteresisBand)
      Extent = LastExtent;
  }
  LastExtent = Extent;

  const unsigned Outer = outerExtentFor(Ctx.effectiveThreads(), Extent);
  return makeServerConfig(Region, Outer, Extent, Params.AltIndex);
}

void WqLinearMechanism::reset() { LastExtent = 0; }

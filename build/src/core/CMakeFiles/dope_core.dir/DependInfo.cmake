
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Config.cpp" "src/core/CMakeFiles/dope_core.dir/Config.cpp.o" "gcc" "src/core/CMakeFiles/dope_core.dir/Config.cpp.o.d"
  "/root/repo/src/core/Dope.cpp" "src/core/CMakeFiles/dope_core.dir/Dope.cpp.o" "gcc" "src/core/CMakeFiles/dope_core.dir/Dope.cpp.o.d"
  "/root/repo/src/core/FeatureRegistry.cpp" "src/core/CMakeFiles/dope_core.dir/FeatureRegistry.cpp.o" "gcc" "src/core/CMakeFiles/dope_core.dir/FeatureRegistry.cpp.o.d"
  "/root/repo/src/core/Placement.cpp" "src/core/CMakeFiles/dope_core.dir/Placement.cpp.o" "gcc" "src/core/CMakeFiles/dope_core.dir/Placement.cpp.o.d"
  "/root/repo/src/core/Task.cpp" "src/core/CMakeFiles/dope_core.dir/Task.cpp.o" "gcc" "src/core/CMakeFiles/dope_core.dir/Task.cpp.o.d"
  "/root/repo/src/core/ThreadPool.cpp" "src/core/CMakeFiles/dope_core.dir/ThreadPool.cpp.o" "gcc" "src/core/CMakeFiles/dope_core.dir/ThreadPool.cpp.o.d"
  "/root/repo/src/core/Types.cpp" "src/core/CMakeFiles/dope_core.dir/Types.cpp.o" "gcc" "src/core/CMakeFiles/dope_core.dir/Types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

//===- tests/ArbiterConformanceTest.cpp - Golden lease-trace conformance ---===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arbiter's analogue of the mechanism conformance suite: re-running
/// the canonical colocation scenario must reproduce the committed lease
/// grant/revoke trace (tests/golden/arbiter-colocation.leases.jsonl)
/// byte-identically. The scenario closes the loop — grants change the
/// synthetic tenants' throughput, which changes utilities, which change
/// the next grants — so the golden freezes the whole decision chain:
/// water-filling, utility estimation, SLO urgency, hysteresis, and the
/// join/leave re-split policy.
///
//===----------------------------------------------------------------------===//

#include "arbiter/Scenario.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

using namespace dope;

#ifndef DOPE_GOLDEN_DIR
#error "DOPE_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

std::string leaseTraceOf(const ArbiterScenario &Scenario) {
  Tracer Trace(1 << 16);
  runArbiterScenario(Scenario, &Trace);
  std::vector<TraceRecord> Leases;
  for (TraceRecord &R : Trace.drain())
    if (R.Kind == TraceKind::LeaseGrant || R.Kind == TraceKind::LeaseRevoke)
      Leases.push_back(std::move(R));
  std::ostringstream OS;
  writeTraceJsonl(Leases, OS);
  return OS.str();
}

} // namespace

TEST(ArbiterConformance, CanonicalScenarioMatchesGolden) {
  const std::string Path =
      std::string(DOPE_GOLDEN_DIR) + "/arbiter-colocation.leases.jsonl";
  std::ifstream IS(Path);
  ASSERT_TRUE(IS.good()) << "missing golden lease trace: " << Path
                         << " (run the trace-regen target)";
  std::stringstream Golden;
  Golden << IS.rdbuf();

  const std::string Actual = leaseTraceOf(makeCanonicalColocationScenario());
  EXPECT_EQ(Golden.str(), Actual)
      << "arbiter lease decisions diverged from the golden trace "
         "(intentional change? regenerate with the trace-regen target and "
         "review the diff)";
}

TEST(ArbiterConformance, ScenarioIsDeterministic) {
  const ArbiterScenario Scenario = makeCanonicalColocationScenario();
  EXPECT_EQ(leaseTraceOf(Scenario), leaseTraceOf(Scenario));
}

TEST(ArbiterConformance, LeaseTraceRoundTrips) {
  Tracer Trace(1 << 16);
  runArbiterScenario(makeCanonicalColocationScenario(), &Trace);
  const std::vector<TraceRecord> Records = Trace.drain();

  std::ostringstream OS;
  writeTraceJsonl(Records, OS);
  std::istringstream IS(OS.str());
  std::string Error;
  std::optional<std::vector<TraceRecord>> Read = readTraceJsonl(IS, &Error);
  ASSERT_TRUE(Read.has_value()) << Error;
  ASSERT_EQ(Read->size(), Records.size());
  for (size_t I = 0; I != Records.size(); ++I) {
    EXPECT_EQ((*Read)[I].Kind, Records[I].Kind);
    EXPECT_EQ((*Read)[I].Name, Records[I].Name);
    EXPECT_EQ((*Read)[I].A, Records[I].A);
    EXPECT_EQ((*Read)[I].B, Records[I].B);
  }

  // The scenario must exercise all three new record kinds.
  auto CountOf = [&](TraceKind K) {
    size_t N = 0;
    for (const TraceRecord &R : Records)
      N += R.Kind == K;
    return N;
  };
  EXPECT_GT(CountOf(TraceKind::LeaseGrant), 0u);
  EXPECT_GT(CountOf(TraceKind::LeaseRevoke), 0u);
  EXPECT_GT(CountOf(TraceKind::TenantUtility), 0u);
}

TEST(ArbiterConformance, LeaseSequenceNeverOvercommits) {
  // Walk the golden changes in order, tracking every tenant's holding:
  // applying revocations before grants must keep the platform within
  // its grantable pool at every intermediate point.
  const ArbiterScenario Scenario = makeCanonicalColocationScenario();
  ArbiterOptions Opts = Scenario.Options;
  Opts.Trace = nullptr;
  const Arbiter Probe(Opts);
  const unsigned Pool = Probe.grantableThreads();

  Tracer Trace(1 << 16);
  const std::vector<LeaseChange> Changes =
      runArbiterScenario(Scenario, &Trace);
  ASSERT_FALSE(Changes.empty());

  std::map<std::string, unsigned> Held;
  for (const LeaseChange &C : Changes) {
    Held[C.Tenant] = C.NewThreads;
    unsigned Total = 0;
    for (const auto &[Name, Threads] : Held)
      Total += Threads;
    EXPECT_LE(Total, Pool) << "overcommitted after " << C.Tenant << " at t="
                           << C.Time;
  }
}

//===- mechanisms/Edp.h - Energy-delay-product goal -------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An example of the paper's open-ended administrator goals (Sec. 4):
/// "The administrator may also invent more complex performance goals
/// such as minimizing the energy-delay product". This mechanism
/// demonstrates that a new goal slots into DoPE without touching
/// application code — exactly the separation of concerns the paper
/// claims.
///
/// Model, for a server nest with inner extent m on C contexts:
///
///   T(m)   = T1 / S(m)                 per-transaction delay
///   E(m)  ~=  m * T(m)                 dynamic energy (m busy cores for
///                                      T(m) seconds, unit core power)
///   EDP(m) =  E(m) * T(m)  ~  m * T1^2 / S(m)^2
///
/// The mechanism picks the extent minimizing EDP among the extents whose
/// system capacity (C / m) * S(m) / T1 still covers the observed demand
/// with a safety margin; under pressure it therefore degrades toward
/// throughput mode like the response-time mechanisms. The application's
/// scalability curve S is profiled offline and supplied by the
/// administrator (the same curve the simulator uses).
///
/// For near-linear curves EDP decreases with m (parallelism saves
/// energy-delay); for overhead-heavy curves the optimum sits at small m
/// — the ext_goals benchmark sweeps both regimes.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_EDP_H
#define DOPE_MECHANISMS_EDP_H

#include "core/Mechanism.h"
#include "support/SpeedupCurve.h"

namespace dope {

/// Tuning parameters of the EDP mechanism.
struct EdpParams {
  /// Profiled scalability of the inner parallelization.
  SpeedupCurve Curve;
  /// Largest inner extent considered.
  unsigned MMax = 8;
  /// Capacity must exceed the demand estimate by this factor before an
  /// extent is considered feasible.
  double StabilityMargin = 1.15;
  /// Inner alternative activated when the chosen extent exceeds 1.
  int AltIndex = 0;
};

/// Minimize energy-delay product with N threads.
class EdpMechanism : public Mechanism {
public:
  explicit EdpMechanism(EdpParams Params);

  std::string name() const override { return "EDP"; }

  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx)
      override;

  /// Relative energy-delay product of extent \p M (unit T1): m / S(m)^2.
  double edpScore(unsigned M) const;

  /// The extent the mechanism would pick for a demand-to-capacity ratio
  /// of \p DemandFraction (0 = idle). Exposed for tests and the
  /// benchmark harness.
  unsigned extentForDemand(double DemandFraction, unsigned Contexts) const;

private:
  EdpParams Params;
};

} // namespace dope

#endif // DOPE_MECHANISMS_EDP_H

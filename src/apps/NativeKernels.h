//===- apps/NativeKernels.h - Deterministic CPU kernels --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic CPU-burning kernels used by the native examples and
/// tests that drive the real DoPE run-time (as opposed to the simulated
/// platform). Each kernel produces a checkable result so tests verify
/// that reconfiguration never corrupts application output:
///
///   * hashWork       — iterated 64-bit mixing (generic "work item"),
///   * frame pipeline — make/transform/checksum (transcoding analog),
///   * monteCarloPi   — Monte Carlo estimation (swaptions analog),
///   * RLE codec      — run-length compression (bzip/dedup analog).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_APPS_NATIVEKERNELS_H
#define DOPE_APPS_NATIVEKERNELS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dope {

/// Iterated splitmix-style mixing; the result depends on every iteration.
uint64_t hashWork(uint64_t Seed, uint64_t Iterations);

/// A synthetic video frame.
struct Frame {
  uint32_t Index = 0;
  std::vector<uint8_t> Pixels;
};

/// Builds a deterministic frame of \p Size bytes.
Frame makeFrame(uint32_t Index, size_t Size, uint64_t Seed);

/// "Encodes" a frame: \p Passes smoothing+quantization sweeps. The output
/// depends only on the input frame and pass count.
Frame transformFrame(const Frame &Input, unsigned Passes);

/// Order-independent-checkable digest of a frame.
uint64_t frameChecksum(const Frame &F);

/// Estimates pi by Monte Carlo with \p Samples points; deterministic for
/// a given seed.
double monteCarloPi(uint64_t Samples, uint64_t Seed);

/// Byte-level run-length encoding (count, value pairs).
std::vector<uint8_t> rleCompress(const std::vector<uint8_t> &Input);

/// Inverse of rleCompress.
std::vector<uint8_t> rleDecompress(const std::vector<uint8_t> &Encoded);

} // namespace dope

#endif // DOPE_APPS_NATIVEKERNELS_H

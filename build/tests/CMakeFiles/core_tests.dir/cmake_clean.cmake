file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/BuildersTest.cpp.o"
  "CMakeFiles/core_tests.dir/BuildersTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/ConfigTest.cpp.o"
  "CMakeFiles/core_tests.dir/ConfigTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/CoreUnitsTest.cpp.o"
  "CMakeFiles/core_tests.dir/CoreUnitsTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/DopeExecutiveTest.cpp.o"
  "CMakeFiles/core_tests.dir/DopeExecutiveTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/PlacementTest.cpp.o"
  "CMakeFiles/core_tests.dir/PlacementTest.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- apps/NativeKernels.cpp - Deterministic CPU kernels ------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/NativeKernels.h"

#include "support/Random.h"

#include <cassert>

using namespace dope;

uint64_t dope::hashWork(uint64_t Seed, uint64_t Iterations) {
  uint64_t X = Seed;
  for (uint64_t I = 0; I != Iterations; ++I) {
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    X ^= X >> 31;
  }
  return X;
}

Frame dope::makeFrame(uint32_t Index, size_t Size, uint64_t Seed) {
  Frame F;
  F.Index = Index;
  F.Pixels.resize(Size);
  Rng R(Seed ^ (static_cast<uint64_t>(Index) << 20));
  for (uint8_t &Pixel : F.Pixels)
    Pixel = static_cast<uint8_t>(R.next() & 0xff);
  return F;
}

Frame dope::transformFrame(const Frame &Input, unsigned Passes) {
  Frame Out = Input;
  const size_t N = Out.Pixels.size();
  if (N < 3 || Passes == 0)
    return Out;
  for (unsigned P = 0; P != Passes; ++P) {
    // Neighbour smoothing followed by quantization; purely sequential
    // dependence within a pass keeps the result deterministic.
    uint8_t Prev = Out.Pixels[0];
    for (size_t I = 1; I + 1 < N; ++I) {
      const unsigned Sum = Prev + Out.Pixels[I] + Out.Pixels[I + 1];
      Prev = Out.Pixels[I];
      Out.Pixels[I] = static_cast<uint8_t>(((Sum / 3) >> 2) << 2);
    }
  }
  return Out;
}

uint64_t dope::frameChecksum(const Frame &F) {
  uint64_t Digest = 0xcbf29ce484222325ULL ^ F.Index;
  for (uint8_t Pixel : F.Pixels) {
    Digest ^= Pixel;
    Digest *= 0x100000001b3ULL;
  }
  return Digest;
}

double dope::monteCarloPi(uint64_t Samples, uint64_t Seed) {
  assert(Samples > 0 && "need at least one sample");
  Rng R(Seed);
  uint64_t Inside = 0;
  for (uint64_t I = 0; I != Samples; ++I) {
    const double X = R.uniform();
    const double Y = R.uniform();
    if (X * X + Y * Y <= 1.0)
      ++Inside;
  }
  return 4.0 * static_cast<double>(Inside) / static_cast<double>(Samples);
}

std::vector<uint8_t> dope::rleCompress(const std::vector<uint8_t> &Input) {
  std::vector<uint8_t> Out;
  size_t I = 0;
  while (I < Input.size()) {
    uint8_t Run = 1;
    while (I + Run < Input.size() && Run < 255 &&
           Input[I + Run] == Input[I])
      ++Run;
    Out.push_back(Run);
    Out.push_back(Input[I]);
    I += Run;
  }
  return Out;
}

std::vector<uint8_t>
dope::rleDecompress(const std::vector<uint8_t> &Encoded) {
  assert(Encoded.size() % 2 == 0 && "malformed RLE stream");
  std::vector<uint8_t> Out;
  for (size_t I = 0; I + 1 < Encoded.size(); I += 2) {
    const uint8_t Run = Encoded[I];
    const uint8_t Value = Encoded[I + 1];
    Out.insert(Out.end(), Run, Value);
  }
  return Out;
}

file(REMOVE_RECURSE
  "CMakeFiles/fig14_power_throughput.dir/fig14_power_throughput.cpp.o"
  "CMakeFiles/fig14_power_throughput.dir/fig14_power_throughput.cpp.o.d"
  "fig14_power_throughput"
  "fig14_power_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_power_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

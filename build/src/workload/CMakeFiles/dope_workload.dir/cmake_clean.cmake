file(REMOVE_RECURSE
  "CMakeFiles/dope_workload.dir/Arrivals.cpp.o"
  "CMakeFiles/dope_workload.dir/Arrivals.cpp.o.d"
  "libdope_workload.a"
  "libdope_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dope_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

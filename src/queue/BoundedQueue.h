//===- queue/BoundedQueue.h - Bounded blocking MPMC queue -----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded blocking MPMC queue. Pipeline parallelizations in the paper's
/// applications (ferret, dedup, x264) bound inter-stage queues so a fast
/// producer cannot outrun a slow consumer without backpressure; the
/// resulting occupancy plateau is exactly the signal SEDA/TBF react to.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_QUEUE_BOUNDEDQUEUE_H
#define DOPE_QUEUE_BOUNDEDQUEUE_H

#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dope {

/// Bounded blocking MPMC queue with close semantics mirroring WorkQueue.
template <typename T> class BoundedQueue {
public:
  explicit BoundedQueue(size_t Capacity) : Capacity(Capacity) {
    assert(Capacity > 0 && "bounded queue needs capacity");
  }
  BoundedQueue(const BoundedQueue &) = delete;
  BoundedQueue &operator=(const BoundedQueue &) = delete;

  /// Blocks while full. Returns false if the queue is closed (item is
  /// dropped in that case).
  bool push(T Item) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      NotFull.wait(Lock, [this] { return Items.size() < Capacity || Closed; });
      if (Closed)
        return false;
      Items.push_back(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool tryPush(T Item) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Closed || Items.size() >= Capacity)
        return false;
      Items.push_back(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocking pop; nullopt only when closed and drained.
  std::optional<T> waitAndPop() {
    std::optional<T> Result;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      NotEmpty.wait(Lock, [this] { return !Items.empty() || Closed; });
      if (Items.empty())
        return std::nullopt;
      Result = std::move(Items.front());
      Items.pop_front();
    }
    NotFull.notify_one();
    return Result;
  }

  /// Non-blocking pop.
  std::optional<T> tryPop() {
    std::optional<T> Result;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Items.empty())
        return std::nullopt;
      Result = std::move(Items.front());
      Items.pop_front();
    }
    NotFull.notify_one();
    return Result;
  }

  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Closed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  void reopen() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = false;
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Closed;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Items.size();
  }

  size_t capacity() const { return Capacity; }
  bool empty() const { return size() == 0; }
  bool full() const { return size() >= Capacity; }

private:
  const size_t Capacity;
  mutable std::mutex Mutex;
  std::condition_variable NotEmpty;
  std::condition_variable NotFull;
  std::deque<T> Items;
  bool Closed = false;
};

} // namespace dope

#endif // DOPE_QUEUE_BOUNDEDQUEUE_H

file(REMOVE_RECURSE
  "libdope_mechanisms.a"
)

//===- sim/EventQueue.h - Discrete-event simulation core -------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete-event engine under the simulated multicore platform.
///
/// Why a simulator at all: the paper's evaluation ran on a 24-core Xeon;
/// this reproduction targets machines where that parallelism is not
/// physically available. Every evaluated phenomenon — the latency versus
/// throughput tradeoff, adaptation dynamics, oversubscription costs,
/// power capping — is a scheduling/queueing property, so a deterministic
/// virtual-time simulation exercises the *same mechanism code* (via
/// core/Mechanism.h) while making the experiments reproducible anywhere.
///
/// The engine is a four-level hierarchical timing wheel over a slab of
/// pooled event nodes:
///
///  - Virtual time is quantized into ticks (2^-10 s). Each wheel level
///    has 64 slots; level L buckets events whose tick differs from the
///    current tick in digit L (radix-64). A per-level occupancy bitmask
///    finds the next populated slot with one ctz.
///  - Events whose tick is at or before the current tick sit in a small
///    binary min-heap ("near" heap) ordered by (time, schedule
///    sequence). Because every wheel/overflow event lives in a strictly
///    later tick, the near-heap top is always the global minimum — so
///    dispatch order is exactly time order with FIFO tie-break, the
///    same contract the old binary heap provided, and golden traces
///    stay byte-identical.
///  - Events beyond the wheel horizon (2^24 ticks ≈ 4.7 h) wait in an
///    overflow heap and migrate inward as time advances.
///  - Nodes are recycled through a free list; cancellation bumps a
///    per-node generation counter, so a stale EventId can never cancel
///    a recycled node and cancelled nodes cost no search or erase.
///  - Callbacks are SmallFn (48-byte small-buffer optimization), so
///    scheduling an event allocates nothing in steady state.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_EVENTQUEUE_H
#define DOPE_SIM_EVENTQUEUE_H

#include "support/SmallFn.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace dope {

/// Handle used to cancel a scheduled event. Packs (generation, slab
/// index); 0 is never a valid id.
using EventId = uint64_t;

/// A virtual-time event queue. Events fire in time order; ties break by
/// schedule order (FIFO), keeping runs deterministic.
class EventQueue {
public:
  EventQueue() = default;
  EventQueue(const EventQueue &) = delete;
  EventQueue &operator=(const EventQueue &) = delete;

  /// Current virtual time in seconds.
  double now() const { return Now; }

  /// Schedules \p Fn at absolute time \p Time (>= now).
  EventId scheduleAt(double Time, SmallFn Fn);

  /// Schedules \p Fn after \p Delay seconds.
  EventId scheduleAfter(double Delay, SmallFn Fn) {
    assert(Delay >= 0.0 && "negative delay");
    return scheduleAt(Now + Delay, std::move(Fn));
  }

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId Id);

  /// Runs events until the queue drains or virtual time would exceed
  /// \p EndTime. Returns the number of events dispatched. On return,
  /// now() == EndTime unless an event at exactly EndTime fired last.
  uint64_t runUntil(double EndTime);

  /// Runs a single event if one is pending at or before \p EndTime;
  /// returns false otherwise.
  bool step(double EndTime);

  bool empty() const { return Live == 0; }
  size_t pendingEvents() const { return Live; }

private:
  static constexpr uint32_t SlotBits = 6;
  static constexpr uint32_t Slots = 1u << SlotBits; // 64
  static constexpr uint32_t Levels = 4;
  static constexpr uint32_t NoIndex = 0xffffffffu;
  /// Ticks per virtual second. Power of two so quantization is exact
  /// for binary-representable times.
  static constexpr double TicksPerSecond = 1024.0;

  struct Node {
    double Time = 0.0;
    uint64_t Seq = 0;      // schedule order; FIFO tie-break
    uint32_t Gen = 1;      // bumped on free; 0 is never valid
    uint32_t Next = 0;     // free list link
    bool Armed = false;    // false once fired or cancelled
    SmallFn Fn;
  };

  /// Heap entry for the near and overflow heaps. Time/Seq are copied
  /// out of the node so comparisons never chase the slab.
  struct HeapEntry {
    double Time;
    uint64_t Seq;
    uint32_t Index;
  };
  struct EarlierFirst {
    bool operator()(const HeapEntry &A, const HeapEntry &B) const {
      if (A.Time != B.Time)
        return A.Time > B.Time; // min-heap via std::*_heap
      return A.Seq > B.Seq;
    }
  };

  uint64_t tickOf(double Time) const;
  uint32_t allocNode();
  void freeNode(uint32_t Index);
  /// Routes an entry to the near heap, a wheel slot, or overflow
  /// depending on its tick relative to CurTick. Never touches the slab:
  /// entries carry (Time, Seq) copies, so slotting and cascading stay in
  /// contiguous memory.
  void insertEntry(const HeapEntry &E);
  void pushWheel(const HeapEntry &E, uint64_t Tick);
  /// Lower bound on the smallest tick stored anywhere in the wheel.
  bool lowestWheelBase(uint64_t &Base) const;
  /// Advances CurTick to \p TargetTick (<= every wheel/overflow tick),
  /// cascading the slots the target maps into.
  void advanceTo(uint64_t TargetTick);
  /// Ensures the near-heap top is the earliest live event; returns true
  /// iff that event's time is <= \p EndTime.
  bool refillNear(double EndTime);

  static constexpr uint32_t ChunkShift = 10;
  static constexpr uint32_t ChunkSize = 1u << ChunkShift;

  Node &node(uint32_t Index) {
    return Chunks[Index >> ChunkShift][Index & (ChunkSize - 1)];
  }
  const Node &node(uint32_t Index) const {
    return Chunks[Index >> ChunkShift][Index & (ChunkSize - 1)];
  }

  double Now = 0.0;
  uint64_t NextSeq = 1;
  size_t Live = 0;

  // Node slab: fixed-size chunks for stable addresses with two-load
  // power-of-two indexing; free list threaded via Node::Next.
  std::vector<std::unique_ptr<Node[]>> Chunks;
  uint32_t NodeCount = 0;
  uint32_t FreeList = NoIndex;

  // Timing wheel. Slots are contiguous entry vectors (capacity retained
  // across reuse), so detaching a slot during a cascade is a sequential
  // scan rather than a pointer chase through the node slab.
  uint64_t CurTick = 0;
  uint64_t Occupied[Levels] = {};
  std::vector<HeapEntry> Wheel[Levels * Slots];
  /// Scratch buffer for entries detached by advanceTo.
  std::vector<HeapEntry> Cascade;

  std::vector<HeapEntry> Near;
  std::vector<HeapEntry> Overflow;
};

} // namespace dope

#endif // DOPE_SIM_EVENTQUEUE_H

//===- tools/dope_lint/LockGraph.h - Static lock-order analysis -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock-order layer of dope_lint (LK001 / LK002, DESIGN.md §12).
/// Builds a lock-acquisition graph from two sources that the codebase
/// already maintains for the clang thread-safety analysis:
///
///   * lexical guard-scope tracking — `std::lock_guard` /
///     `unique_lock` / `scoped_lock` / `shared_lock` declarations and
///     explicit `.lock()` / `.unlock()` calls, with brace-scoped
///     lifetimes;
///   * `DOPE_REQUIRES(Mu)` annotations — capabilities held on entry.
///
/// Locks are keyed `Class::Member` (declared `std::mutex` members are
/// indexed whole-program, like the call graph's symbols); a
/// member-access lock whose owner cannot be determined gets an opaque
/// per-site key so it can never fabricate a cycle. Edges run from every
/// held lock to each newly acquired one, both directly and through
/// resolvable calls (callee's transitive acquisition set). LK001
/// reports any cycle — a potential deadlock; LK002 reports a lock held
/// across a blocking call (condition-variable waits that pass the held
/// unique_lock are the sanctioned exception).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_TOOLS_LINT_LOCKGRAPH_H
#define DOPE_TOOLS_LINT_LOCKGRAPH_H

#include "CallGraph.h"
#include "Checks.h"

#include <vector>

namespace dopelint {

/// Runs the LK001 (lock-order cycle) and LK002 (lock held across a
/// blocking call) analyses over the whole scanned set. Findings are
/// returned unfiltered — the caller applies --allow and line
/// suppressions.
std::vector<Finding> analyzeLocks(const std::vector<FileTokens> &Files,
                                  const CallGraph &CG);

} // namespace dopelint

#endif // DOPE_TOOLS_LINT_LOCKGRAPH_H

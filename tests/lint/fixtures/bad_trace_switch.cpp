// TS002 fixture: defaultless switch over TraceKind missing enumerators.
// Never compiled — scanned by dope_lint in the lint test suite.

enum class TraceKind : unsigned char {
  FeatureSample,
  Decision,
  Reconfig,
  Fault,
};

int replayDispatch(TraceKind K) {
  switch (K) {
  case TraceKind::FeatureSample:
    return 1;
  case TraceKind::Decision:
    return 2;
  }
  return 0;
}

int coveredDispatch(TraceKind K) {
  switch (K) {
  case TraceKind::FeatureSample:
    return 1;
  default:
    return 0;
  }
}

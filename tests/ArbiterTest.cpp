//===- tests/ArbiterTest.cpp - Platform arbiter unit tests -----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "arbiter/Arbiter.h"
#include "arbiter/UtilityEstimator.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

TenantSpec throughputTenant(const std::string &Name, double Weight = 1.0) {
  TenantSpec S;
  S.Name = Name;
  S.Goal = TenantGoal::Throughput;
  S.Weight = Weight;
  return S;
}

TenantSpec latencyTenant(const std::string &Name, double SloSeconds,
                         double Weight = 1.0) {
  TenantSpec S;
  S.Name = Name;
  S.Goal = TenantGoal::ResponseTime;
  S.SloSeconds = SloSeconds;
  S.Weight = Weight;
  return S;
}

/// Feeds a saturated sample: queue backed up so the observation teaches
/// the estimator, throughput as given.
TenantSample saturated(double Time, unsigned Threads, double Throughput) {
  TenantSample S;
  S.Time = Time;
  S.GrantedThreads = Threads;
  S.Throughput = Throughput;
  S.OfferedRate = Throughput * 4.0;
  S.QueueDepth = 50.0;
  return S;
}

TEST(Arbiter, SingleTenantGetsWholePlatform) {
  ArbiterOptions Opts;
  Opts.TotalThreads = 24;
  Arbiter Arb(Opts);
  const TenantId A = Arb.addTenant(throughputTenant("a"), 0.0);
  EXPECT_EQ(Arb.leaseOf(A).Threads, 24u);
}

TEST(Arbiter, EqualTenantsSplitEqually) {
  ArbiterOptions Opts;
  Opts.TotalThreads = 24;
  Arbiter Arb(Opts);
  const TenantId A = Arb.addTenant(throughputTenant("a"), 0.0);
  const TenantId B = Arb.addTenant(throughputTenant("b"), 0.0);
  EXPECT_EQ(Arb.leaseOf(A).Threads + Arb.leaseOf(B).Threads, 24u);
  EXPECT_EQ(Arb.leaseOf(A).Threads, 12u);
  EXPECT_EQ(Arb.leaseOf(B).Threads, 12u);
}

TEST(Arbiter, WeightTiltsEqualShareBids) {
  ArbiterOptions Opts;
  Opts.TotalThreads = 24;
  Arbiter Arb(Opts);
  const TenantId Heavy = Arb.addTenant(throughputTenant("heavy", 2.0), 0.0);
  const TenantId Light = Arb.addTenant(throughputTenant("light", 1.0), 0.0);
  EXPECT_EQ(Arb.leaseOf(Heavy).Threads + Arb.leaseOf(Light).Threads, 24u);
  // Harmonic equal-share bidding converges to weighted proportional
  // shares: roughly 2:1.
  EXPECT_GE(Arb.leaseOf(Heavy).Threads, 14u);
  EXPECT_GE(Arb.leaseOf(Light).Threads, 7u);
}

TEST(Arbiter, JoinRevokesBeforeGranting) {
  ArbiterOptions Opts;
  Opts.TotalThreads = 24;
  Arbiter Arb(Opts);
  Arb.addTenant(throughputTenant("a"), 0.0);
  std::vector<LeaseChange> Changes;
  Arb.addTenant(throughputTenant("b"), 1.0, &Changes);
  ASSERT_FALSE(Changes.empty());
  bool SawGrant = false;
  for (const LeaseChange &C : Changes) {
    if (C.isGrant())
      SawGrant = true;
    else
      EXPECT_FALSE(SawGrant) << "revocation ordered after a grant";
  }
  // Applying in order never overcommits.
  unsigned HeldA = 24, HeldB = 0;
  for (const LeaseChange &C : Changes) {
    (C.Tenant == "a" ? HeldA : HeldB) = C.NewThreads;
    EXPECT_LE(HeldA + HeldB, 24u);
  }
}

TEST(Arbiter, MinAndMaxThreadsRespected) {
  ArbiterOptions Opts;
  Opts.TotalThreads = 24;
  Arbiter Arb(Opts);
  TenantSpec Floor = throughputTenant("floor");
  Floor.MinThreads = 6;
  TenantSpec Ceiling = throughputTenant("ceiling", 8.0); // outbids heavily
  Ceiling.MaxThreads = 4;
  const TenantId F = Arb.addTenant(Floor, 0.0);
  const TenantId C = Arb.addTenant(Ceiling, 0.0);
  for (double Now = 2.0; Now <= 20.0; Now += 2.0) {
    Arb.reportSample(F, saturated(Now, Arb.leaseOf(F).Threads, 5.0));
    Arb.reportSample(C, saturated(Now, Arb.leaseOf(C).Threads, 50.0));
    Arb.rebalance(Now);
    EXPECT_GE(Arb.leaseOf(F).Threads, 6u);
    EXPECT_LE(Arb.leaseOf(C).Threads, 4u);
  }
}

TEST(Arbiter, PowerBudgetCapsThePool) {
  ArbiterOptions Opts;
  Opts.TotalThreads = 24;
  Opts.PowerBudgetWatts = 100.0;
  Opts.WattsPerThread = 10.0;
  Opts.IdlePowerWatts = 20.0; // (100 - 20) / 10 = 8 grantable
  Arbiter Arb(Opts);
  EXPECT_EQ(Arb.grantableThreads(), 8u);
  const TenantId A = Arb.addTenant(throughputTenant("a"), 0.0);
  const TenantId B = Arb.addTenant(throughputTenant("b"), 0.0);
  EXPECT_LE(Arb.leaseOf(A).Threads + Arb.leaseOf(B).Threads, 8u);
  EXPECT_DOUBLE_EQ(Arb.leaseOf(A).PowerWatts,
                   10.0 * Arb.leaseOf(A).Threads);
}

TEST(Arbiter, EpochGateSuppressesEarlyRebalance) {
  ArbiterOptions Opts;
  Opts.TotalThreads = 24;
  Opts.EpochSeconds = 2.0;
  Arbiter Arb(Opts);
  const TenantId A = Arb.addTenant(throughputTenant("a"), 0.0);
  const TenantId B = Arb.addTenant(throughputTenant("b"), 0.0);
  // Strong utility signal for B, but the epoch has not elapsed.
  Arb.reportSample(A, saturated(0.5, Arb.leaseOf(A).Threads, 1.0));
  Arb.reportSample(B, saturated(0.5, Arb.leaseOf(B).Threads, 100.0));
  EXPECT_TRUE(Arb.rebalance(0.5).empty());
  EXPECT_TRUE(Arb.rebalance(1.9).empty());
}

TEST(Arbiter, UtilityBiddingShiftsThreadsToTheScalableTenant) {
  ArbiterOptions Opts;
  Opts.TotalThreads = 24;
  Opts.EpochSeconds = 2.0;
  Arbiter Arb(Opts);
  const TenantId Scaler = Arb.addTenant(throughputTenant("scaler"), 0.0);
  const TenantId Flat = Arb.addTenant(throughputTenant("flat"), 0.0);

  // History spanning two extents each (as earlier lease changes would
  // leave behind): Scaler's throughput tracks its grant ~linearly; Flat
  // is stuck at 4/s no matter how many threads it holds. The arbiter
  // never explores on its own — grant diversity comes from membership
  // churn and load swings — so the unit test seeds it directly.
  Arb.reportSample(Scaler, saturated(2.0, 4, 8.0));
  Arb.reportSample(Scaler, saturated(2.0, 8, 16.0));
  Arb.reportSample(Flat, saturated(2.0, 4, 4.0));
  Arb.reportSample(Flat, saturated(2.0, 12, 4.0));
  Arb.rebalance(2.0);

  EXPECT_GT(Arb.leaseOf(Scaler).Threads, 16u)
      << "scaler should have outbid the flat tenant";
  EXPECT_GE(Arb.leaseOf(Flat).Threads, 1u);
  EXPECT_GT(Arb.lastBidOf(Scaler), Arb.lastBidOf(Flat));
}

TEST(Arbiter, SloBreachTriggersUrgentReallocation) {
  ArbiterOptions Opts;
  Opts.TotalThreads = 24;
  Opts.EpochSeconds = 2.0;
  Arbiter Arb(Opts);
  const TenantId Lat = Arb.addTenant(latencyTenant("lat", 0.5, 2.0), 0.0);
  const TenantId Batch = Arb.addTenant(throughputTenant("batch"), 0.0);

  // Let the batch tenant absorb the platform while the latency tenant
  // idles comfortably.
  for (double Now = 2.0; Now <= 10.0; Now += 2.0) {
    TenantSample Comfy;
    Comfy.Time = Now;
    Comfy.GrantedThreads = Arb.leaseOf(Lat).Threads;
    Comfy.Throughput = 5.0;
    Comfy.OfferedRate = 5.0;
    Comfy.P95ResponseSeconds = 0.1;
    Arb.reportSample(Lat, Comfy);
    Arb.reportSample(Batch,
                     saturated(Now, Arb.leaseOf(Batch).Threads,
                               3.0 * Arb.leaseOf(Batch).Threads));
    Arb.rebalance(Now);
  }
  const unsigned Before = Arb.leaseOf(Lat).Threads;
  EXPECT_LE(Before, 6u) << "comfortable latency tenant should have yielded";

  // Burst: p95 blows through the SLO.
  TenantSample Burning;
  Burning.Time = 12.0;
  Burning.GrantedThreads = Before;
  Burning.Throughput = 10.0;
  Burning.OfferedRate = 80.0;
  Burning.P95ResponseSeconds = 3.0;
  Burning.QueueDepth = 120.0;
  Arb.reportSample(Lat, Burning);
  const std::vector<LeaseChange> Changes = Arb.rebalance(12.0);
  EXPECT_FALSE(Changes.empty());
  EXPECT_GT(Arb.leaseOf(Lat).Threads, Before)
      << "burning SLO must pull threads back";
  bool SawUrgent = false;
  for (const LeaseChange &C : Changes)
    SawUrgent |= C.Reason == "slo-urgent";
  EXPECT_TRUE(SawUrgent);
}

TEST(Arbiter, HysteresisSuppressesOneThreadDrift) {
  ArbiterOptions Opts;
  Opts.TotalThreads = 23; // odd pool: equal-share target dithers by 1
  Opts.HysteresisThreads = 1;
  Arbiter Arb(Opts);
  const TenantId A = Arb.addTenant(throughputTenant("a"), 0.0);
  const TenantId B = Arb.addTenant(throughputTenant("b"), 0.0);
  const unsigned HeldA = Arb.leaseOf(A).Threads;
  const unsigned HeldB = Arb.leaseOf(B).Threads;
  // No samples at all: targets stay within one thread of the holding,
  // so every epoch is suppressed — leases must not thrash.
  for (double Now = 2.0; Now <= 40.0; Now += 2.0)
    EXPECT_TRUE(Arb.rebalance(Now).empty()) << "thrash at t=" << Now;
  EXPECT_EQ(Arb.leaseOf(A).Threads, HeldA);
  EXPECT_EQ(Arb.leaseOf(B).Threads, HeldB);
}

TEST(Arbiter, RemoveTenantFreesItsLease) {
  ArbiterOptions Opts;
  Opts.TotalThreads = 24;
  Arbiter Arb(Opts);
  const TenantId A = Arb.addTenant(throughputTenant("a"), 0.0);
  const TenantId B = Arb.addTenant(throughputTenant("b"), 0.0);
  std::vector<LeaseChange> Changes;
  Arb.removeTenant(B, 1.0, &Changes);
  ASSERT_EQ(Changes.size(), 1u);
  EXPECT_EQ(Changes[0].NewThreads, 0u);
  EXPECT_EQ(Changes[0].Reason, "leave");
  EXPECT_EQ(Arb.tenantCount(), 1u);
  // Next epoch the survivor reclaims the slack.
  Arb.rebalance(2.0);
  EXPECT_EQ(Arb.leaseOf(A).Threads, 24u);
}

TEST(Arbiter, TraceRecordsLifecycle) {
  Tracer Trace(1 << 14);
  ArbiterOptions Opts;
  Opts.TotalThreads = 24;
  Opts.Trace = &Trace;
  Arbiter Arb(Opts);
  const TenantId A = Arb.addTenant(throughputTenant("a"), 0.0);
  const TenantId B = Arb.addTenant(throughputTenant("b"), 0.0);
  Arb.reportSample(A, saturated(2.0, Arb.leaseOf(A).Threads, 30.0));
  Arb.reportSample(B, saturated(2.0, Arb.leaseOf(B).Threads, 2.0));
  Arb.rebalance(2.0);
  Arb.removeTenant(B, 3.0);

  size_t Grants = 0, Revokes = 0, Utilities = 0;
  for (const TraceRecord &R : Trace.drain()) {
    Grants += R.Kind == TraceKind::LeaseGrant;
    Revokes += R.Kind == TraceKind::LeaseRevoke;
    Utilities += R.Kind == TraceKind::TenantUtility;
  }
  EXPECT_GT(Grants, 0u);
  EXPECT_GT(Revokes, 0u) << "join re-split and leave must revoke";
  EXPECT_GT(Utilities, 0u);
}

TEST(UtilityEstimator, FallsBackWithoutTwoExtents) {
  UtilityEstimator E;
  EXPECT_FALSE(E.hasHistory());
  E.observe(4, 10.0);
  E.observe(4, 12.0);
  EXPECT_FALSE(E.hasHistory());
  E.observe(8, 18.0);
  EXPECT_TRUE(E.hasHistory());
  EXPECT_GT(E.predictRate(8), E.predictRate(4));
}

TEST(UtilityEstimator, MarginalRateNeverNegative) {
  UtilityEstimator E;
  // Anti-scaling observations: more threads, less throughput.
  E.observe(2, 20.0);
  E.observe(8, 12.0);
  E.observe(16, 8.0);
  for (unsigned K = 1; K <= 24; ++K)
    EXPECT_GE(E.marginalRate(K), 0.0);
}

TEST(UtilityEstimator, SmoothsRepeatedObservations) {
  UtilityEstimator E(0.5);
  E.observe(4, 10.0);
  E.observe(4, 20.0); // EMA: 15
  E.observe(2, 6.0);
  const double Predicted = E.predictRate(4);
  EXPECT_GT(Predicted, 10.0);
  EXPECT_LT(Predicted, 20.0);
}

} // namespace

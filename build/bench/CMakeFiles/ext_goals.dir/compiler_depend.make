# Empty compiler generated dependencies file for ext_goals.
# This may be replaced when dependencies are built.

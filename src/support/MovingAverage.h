//===- support/MovingAverage.h - Smoothing filters ------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exponential and windowed moving averages. The DoPE run-time smooths
/// per-task execution times and load samples with these filters before
/// handing them to mechanisms (the paper records "a moving average of the
/// throughput (inverse of execution time) of each task", Sec. 7.2).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_MOVINGAVERAGE_H
#define DOPE_SUPPORT_MOVINGAVERAGE_H

#include <cassert>
#include <cstddef>
#include <deque>

namespace dope {

/// Exponentially weighted moving average.
///
/// The first sample initializes the average directly so that start-up
/// transients do not drag the estimate toward zero.
class Ema {
public:
  /// \p Alpha is the weight of each new sample, in (0, 1].
  explicit Ema(double Alpha = 0.25) : Alpha(Alpha) {
    assert(Alpha > 0.0 && Alpha <= 1.0 && "EMA weight out of range");
  }

  void addSample(double X) {
    if (Count == 0)
      Value = X;
    else
      Value += Alpha * (X - Value);
    ++Count;
  }

  /// Folds in \p N samples summarized by their mean, as if addSample had
  /// been called \p N times with \p Mean: the update
  /// v' = m + (v - m)(1 - a)^N is the closed form of N identical
  /// single-sample steps. Used by batched monitoring paths that flush a
  /// per-thread window instead of locking per sample.
  void addBatch(size_t N, double Mean) {
    if (N == 0)
      return;
    if (Count == 0) {
      Value = Mean;
      Count = N;
      return;
    }
    double Keep = 1.0;
    const double Decay = 1.0 - Alpha;
    for (size_t I = 0; I != N; ++I)
      Keep *= Decay;
    Value = Mean + (Value - Mean) * Keep;
    Count += N;
  }

  /// Returns the current estimate; zero before any sample arrives.
  double value() const { return Count == 0 ? 0.0 : Value; }

  size_t sampleCount() const { return Count; }
  bool empty() const { return Count == 0; }

  void reset() {
    Value = 0.0;
    Count = 0;
  }

private:
  double Alpha;
  double Value = 0.0;
  size_t Count = 0;
};

/// Fixed-width sliding-window mean over the last N samples.
class WindowedAverage {
public:
  explicit WindowedAverage(size_t Width = 16) : Width(Width) {
    assert(Width > 0 && "window must hold at least one sample");
  }

  void addSample(double X) {
    Samples.push_back(X);
    Sum += X;
    if (Samples.size() > Width) {
      Sum -= Samples.front();
      Samples.pop_front();
    }
  }

  double value() const {
    return Samples.empty() ? 0.0 : Sum / static_cast<double>(Samples.size());
  }

  size_t sampleCount() const { return Samples.size(); }
  bool full() const { return Samples.size() == Width; }
  bool empty() const { return Samples.empty(); }

  void reset() {
    Samples.clear();
    Sum = 0.0;
  }

private:
  size_t Width;
  std::deque<double> Samples;
  double Sum = 0.0;
};

} // namespace dope

#endif // DOPE_SUPPORT_MOVINGAVERAGE_H

file(REMOVE_RECURSE
  "CMakeFiles/queue_tests.dir/QueueTest.cpp.o"
  "CMakeFiles/queue_tests.dir/QueueTest.cpp.o.d"
  "queue_tests"
  "queue_tests.pdb"
  "queue_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- tests/SimCoreTest.cpp - Event queue / curves / power tests -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/EventQueue.h"
#include "sim/PowerModel.h"
#include "support/SpeedupCurve.h"

#include <gtest/gtest.h>

#include <vector>

using namespace dope;

namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue Q;
  std::vector<int> Order;
  Q.scheduleAt(2.0, [&] { Order.push_back(2); });
  Q.scheduleAt(1.0, [&] { Order.push_back(1); });
  Q.scheduleAt(3.0, [&] { Order.push_back(3); });
  Q.runUntil(10.0);
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(Q.now(), 10.0);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue Q;
  std::vector<int> Order;
  for (int I = 0; I != 5; ++I)
    Q.scheduleAt(1.0, [&Order, I] { Order.push_back(I); });
  Q.runUntil(2.0);
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue Q;
  int Count = 0;
  std::function<void()> Chain = [&] {
    if (++Count < 5)
      Q.scheduleAfter(1.0, Chain);
  };
  Q.scheduleAfter(1.0, Chain);
  Q.runUntil(100.0);
  EXPECT_EQ(Count, 5);
  EXPECT_TRUE(Q.empty());
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue Q;
  bool Fired = false;
  const EventId Id = Q.scheduleAt(1.0, [&] { Fired = true; });
  Q.cancel(Id);
  Q.runUntil(5.0);
  EXPECT_FALSE(Fired);
  EXPECT_TRUE(Q.empty());
}

TEST(EventQueue, CancelUnknownIsNoop) {
  EventQueue Q;
  Q.cancel(0);
  Q.cancel(999);
  EXPECT_TRUE(Q.empty());
}

TEST(EventQueue, StepStopsAtBoundary) {
  EventQueue Q;
  int Count = 0;
  Q.scheduleAt(1.0, [&] { ++Count; });
  Q.scheduleAt(5.0, [&] { ++Count; });
  EXPECT_TRUE(Q.step(2.0));
  EXPECT_FALSE(Q.step(2.0)); // next event is beyond the bound
  EXPECT_EQ(Count, 1);
  EXPECT_EQ(Q.pendingEvents(), 1u);
}

TEST(EventQueue, NowAdvancesToEventTimes) {
  EventQueue Q;
  double Seen = -1.0;
  Q.scheduleAt(4.5, [&] { Seen = Q.now(); });
  Q.runUntil(10.0);
  EXPECT_DOUBLE_EQ(Seen, 4.5);
}

TEST(SpeedupCurve, UnitAtOne) {
  SpeedupCurve C(0.1, 0.5, 8.0);
  EXPECT_DOUBLE_EQ(C.speedup(1), 1.0);
}

TEST(SpeedupCurve, LinearOverheadForm) {
  SpeedupCurve C(0.1, 0.0);
  // S(11) = 11 / (1 + 0.1 * 10) = 5.5.
  EXPECT_NEAR(C.speedup(11), 5.5, 1e-12);
}

TEST(SpeedupCurve, CapApplies) {
  SpeedupCurve C(0.0, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(C.speedup(16), 4.0);
}

TEST(SpeedupCurve, FixedCostSuppressesSmallExtents) {
  // bzip-like: no speedup below extent 4 (Table 4 DoPmin).
  SpeedupCurve C(0.3, 1.4, 8.0);
  EXPECT_LT(C.speedup(2), 1.0);
  EXPECT_LE(C.speedup(3), 1.0);
  EXPECT_GT(C.speedup(4), 1.0);
  EXPECT_EQ(C.dopMin(), 4u);
}

TEST(SpeedupCurve, X264Calibration) {
  // Sec. 2: maximum Texec improvement 6.3x at 8 threads per video.
  SpeedupCurve C(0.033, 0.0, 6.3);
  EXPECT_NEAR(C.speedup(8), 6.3, 0.05);
  EXPECT_EQ(C.bestExtent(), 8u);
  EXPECT_LT(C.speedup(7), C.speedup(8));
}

TEST(SpeedupCurve, MmaxEfficiencyKnee) {
  SpeedupCurve C(0.0, 0.0, 6.0);
  // Efficiency 6/m >= 0.5 up to m = 12.
  EXPECT_EQ(C.mmax(0.5), 12u);
  EXPECT_DOUBLE_EQ(C.efficiency(12), 0.5);
}

TEST(SpeedupCurve, DopMinZeroWhenNeverFaster) {
  SpeedupCurve C(1.0, 5.0, 2.0);
  EXPECT_EQ(C.dopMin(8), 0u);
}

TEST(PowerModel, PaperCalibration) {
  // Sec. 8.2.3: 90% of peak total power == 60% of the dynamic CPU range.
  PowerModel P(24, 450.0, 6.25);
  EXPECT_DOUBLE_EQ(P.peakWatts(), 600.0);
  EXPECT_DOUBLE_EQ(P.idleWatts(), 450.0);
  const double Target = 0.9 * P.peakWatts();
  const double DynamicFraction =
      (Target - P.idleWatts()) / (P.peakWatts() - P.idleWatts());
  EXPECT_NEAR(DynamicFraction, 0.6, 1e-12);
}

TEST(PowerModel, ClampsActiveCores) {
  PowerModel P(24, 450.0, 6.25);
  EXPECT_DOUBLE_EQ(P.watts(0.0), 450.0);
  EXPECT_DOUBLE_EQ(P.watts(24.0), 600.0);
  EXPECT_DOUBLE_EQ(P.watts(98.0), 600.0); // oversubscription adds nothing
  EXPECT_DOUBLE_EQ(P.watts(-3.0), 450.0);
}

TEST(PowerModel, InverseMapping) {
  PowerModel P(24, 450.0, 6.25);
  EXPECT_NEAR(P.coresForWatts(540.0), 14.4, 1e-12);
  EXPECT_DOUBLE_EQ(P.coresForWatts(1000.0), 24.0);
  EXPECT_DOUBLE_EQ(P.coresForWatts(100.0), 0.0);
}

} // namespace

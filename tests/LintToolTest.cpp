//===- tests/LintToolTest.cpp - dope_lint conformance suite ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Drives the dope_lint binary end to end (ctest label: lint):
//  - every check ID reproduces its golden diagnostic on a known-bad
//    fixture (tests/lint/fixtures -> tests/lint/expected),
//  - the clean and suppression fixtures stay silent,
//  - the tool reports zero findings over the repository's own src/
//    (via the exported compile_commands.json),
//  - a seeded regression — re-introducing a raw system_clock read into
//    a mechanism — is caught,
//  - JSON output parses and the check table lists every ID.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Output;
};

/// Runs the lint binary with \p Args, capturing stdout.
RunResult runLint(const std::string &Args) {
  RunResult R;
  std::string Cmd = std::string(DOPE_LINT_BIN) + " " + Args + " 2>/dev/null";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P) {
    R.Output = "<popen failed>";
    return R;
  }
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), P)) > 0)
    R.Output.append(Buf.data(), N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string readFile(const fs::path &Path) {
  std::ifstream IS(Path);
  std::ostringstream SS;
  SS << IS.rdbuf();
  return SS.str();
}

std::string fixture(const std::string &Name) {
  return std::string(DOPE_LINT_FIXTURES) + "/" + Name + ".cpp";
}

std::string expected(const std::string &Name) {
  return std::string(DOPE_LINT_FIXTURES) + "/../expected/" + Name + ".txt";
}

/// Golden comparison for one fixture: exact diagnostics, exact exit
/// code (1 when the golden lists findings, 0 when it is empty).
void checkGolden(const std::string &Name) {
  RunResult R = runLint("--basenames --quiet " + fixture(Name));
  std::string Want = readFile(expected(Name));
  EXPECT_EQ(R.Output, Want) << "fixture " << Name
                            << " diverged from its golden diagnostics";
  EXPECT_EQ(R.ExitCode, Want.empty() ? 0 : 1) << "fixture " << Name;
}

} // namespace

TEST(LintGolden, DeterminismClock) { checkGolden("bad_clock"); }
TEST(LintGolden, DeterminismRandom) { checkGolden("bad_random"); }
TEST(LintGolden, HotPathLock) { checkGolden("bad_hot_lock"); }
TEST(LintGolden, HotPathAlloc) { checkGolden("bad_hot_alloc"); }
TEST(LintGolden, HotPathVirtual) { checkGolden("bad_hot_virtual"); }
TEST(LintGolden, HotPathStealRuntime) { checkGolden("bad_hot_steal"); }
TEST(LintGolden, BeginEndPairing) { checkGolden("bad_pairing"); }
TEST(LintGolden, WaitBeforeDestroy) { checkGolden("bad_create_nowait"); }
TEST(LintGolden, FiniOnce) { checkGolden("bad_fini_twice"); }
TEST(LintGolden, TraceKindNames) { checkGolden("bad_trace_names"); }
TEST(LintGolden, TraceKindSwitch) { checkGolden("bad_trace_switch"); }
TEST(LintGolden, CleanFixtureSilent) { checkGolden("good_clean"); }
TEST(LintGolden, SuppressionsHonored) { checkGolden("suppressed"); }

/// Every check ID the goldens exercise must appear in --list-checks, so
/// the fixture suite and the check table cannot drift apart.
TEST(LintTool, ListChecksCoversAllIds) {
  RunResult R = runLint("--list-checks");
  EXPECT_EQ(R.ExitCode, 0);
  for (const char *Id : {"DL001", "DL002", "HP001", "HP002", "HP003",
                         "AP001", "AP002", "AP003", "TS001", "TS002"})
    EXPECT_NE(R.Output.find(Id), std::string::npos) << Id;
}

/// The repository's own sources must satisfy every contract: scan the
/// TUs of the exported compilation database plus the headers under
/// src/ and require zero findings.
TEST(LintTool, SrcTreeIsClean) {
  ASSERT_TRUE(fs::exists(DOPE_COMPDB))
      << "compile_commands.json missing — configure exports it";
  RunResult R = runLint(std::string("--compdb ") + DOPE_COMPDB + " --root " +
                        DOPE_SOURCE_ROOT + "/src --quiet");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, "") << "src/ must stay lint-clean";
}

/// Seeded regression: re-introduce a raw wall-clock read into a copy of
/// a mechanism translation unit and require DL001 to fire on the
/// injected line. This is the drift the determinism contract exists to
/// catch — a mechanism that reads the wall clock diverges under replay.
TEST(LintTool, SeededClockRegressionCaught) {
  fs::path Mechanism;
  for (const fs::directory_entry &E :
       fs::directory_iterator(std::string(DOPE_SOURCE_ROOT) +
                              "/src/mechanisms")) {
    if (E.path().extension() == ".cpp") {
      Mechanism = E.path();
      break;
    }
  }
  ASSERT_FALSE(Mechanism.empty()) << "no mechanism sources found";

  fs::path Tmp = fs::temp_directory_path() / "dope_lint_seeded.cpp";
  std::string Source = readFile(Mechanism);
  unsigned LineCount =
      static_cast<unsigned>(std::count(Source.begin(), Source.end(), '\n'));
  Source += "\nstatic double dopeLintSeededDrift() {\n"
            "  return std::chrono::duration<double>(\n"
            "             std::chrono::system_clock::now()"
            ".time_since_epoch())\n"
            "      .count();\n"
            "}\n";
  {
    std::ofstream OS(Tmp);
    OS << Source;
  }
  const unsigned InjectedLine = LineCount + 4; // system_clock's line

  RunResult R = runLint(Tmp.string());
  fs::remove(Tmp);
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("DL001"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find(":" + std::to_string(InjectedLine) + ":"),
            std::string::npos)
      << "finding not on the injected line\n"
      << R.Output;
}

/// --json output must parse and carry the same findings as the text
/// form, so CI consumers can rely on the schema.
TEST(LintTool, JsonOutputParses) {
  RunResult R = runLint("--json --basenames " + fixture("bad_clock"));
  EXPECT_EQ(R.ExitCode, 1);
  std::string Error;
  std::optional<dope::JsonValue> Doc = dope::JsonValue::parse(R.Output,
                                                              &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const dope::JsonValue *Findings = Doc->get("findings");
  ASSERT_NE(Findings, nullptr);
  ASSERT_TRUE(Findings->isArray());
  ASSERT_EQ(Findings->size(), 2u);
  for (size_t I = 0; I != Findings->size(); ++I) {
    const dope::JsonValue &F = Findings->at(I);
    EXPECT_EQ(F.getString("check"), "DL001");
    EXPECT_EQ(F.getString("severity"), "error");
    EXPECT_EQ(F.getString("file"), "bad_clock.cpp");
    EXPECT_GT(F.getNumber("line"), 0.0);
    EXPECT_FALSE(F.getString("message").empty());
  }
}

/// --allow disables a check wholesale.
TEST(LintTool, AllowDisablesCheck) {
  RunResult R = runLint("--quiet --allow DL001 " + fixture("bad_clock"));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, "");
}

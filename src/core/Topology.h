//===- core/Topology.h - Platform topology model ---------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A socket/core topology of the platform. The paper's evaluation
/// machine is "4 sockets, each with a 6-core Intel Core Architecture
/// 64-bit processor" — communication between pipeline stages placed on
/// different sockets costs more than within a socket, which is why the
/// run-time decides "on which hardware thread should each stage be
/// placed to maximize locality of communication" (Sec. 1).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_TOPOLOGY_H
#define DOPE_CORE_TOPOLOGY_H

#include <cassert>

namespace dope {

/// Symmetric sockets-of-cores topology with a relative communication
/// cost metric.
class Topology {
public:
  /// Default: the paper's 4 x 6 Xeon X7460 platform.
  Topology(unsigned Sockets = 4, unsigned CoresPerSocket = 6,
           double CrossSocketFactor = 3.0)
      : Sockets(Sockets), CoresPerSocket(CoresPerSocket),
        CrossSocketFactor(CrossSocketFactor) {
    assert(Sockets >= 1 && CoresPerSocket >= 1 && "empty topology");
    assert(CrossSocketFactor >= 1.0 &&
           "cross-socket traffic cannot be cheaper than local");
  }

  unsigned sockets() const { return Sockets; }
  unsigned coresPerSocket() const { return CoresPerSocket; }
  unsigned totalCores() const { return Sockets * CoresPerSocket; }

  /// The socket that hosts \p Core. Cores are numbered socket-major:
  /// [0, CoresPerSocket) sit on socket 0, and so on.
  unsigned socketOf(unsigned Core) const {
    assert(Core < totalCores() && "core id out of range");
    return Core / CoresPerSocket;
  }

  bool sameSocket(unsigned A, unsigned B) const {
    return socketOf(A) == socketOf(B);
  }

  /// Relative cost of moving one item between threads on \p A and \p B:
  /// 0 on the same core (cache-resident), 1 within a socket, and
  /// CrossSocketFactor across sockets.
  double commCost(unsigned A, unsigned B) const {
    if (A == B)
      return 0.0;
    return sameSocket(A, B) ? 1.0 : CrossSocketFactor;
  }

  double crossSocketFactor() const { return CrossSocketFactor; }

private:
  unsigned Sockets;
  unsigned CoresPerSocket;
  double CrossSocketFactor;
};

} // namespace dope

#endif // DOPE_CORE_TOPOLOGY_H

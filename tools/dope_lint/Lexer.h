//===- tools/dope_lint/Lexer.h - C++ token stream for dope_lint -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in frontend: a self-contained C++ tokenizer producing the
/// token stream the dope_lint checks run over. It deliberately mirrors
/// libclang's CXToken granularity (identifiers, literals, maximal-munch
/// punctuation) so the optional libclang frontend (LibclangFrontend.h)
/// and this lexer feed the checks identical streams — the checks never
/// know which frontend produced their input.
///
/// Handled: // and /* */ comments, string/char literals (with escapes),
/// raw strings R"delim(...)delim", preprocessor directives (tokens are
/// kept but flagged InPP, including backslash-continued lines),
/// `// dope-lint: allow(ID[,ID...])` suppression comments, and
/// `// dope-lint: mo-proof(<anchor>)` reviewed-memory-order markers.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_TOOLS_LINT_LEXER_H
#define DOPE_TOOLS_LINT_LEXER_H

#include <map>
#include <set>
#include <string>
#include <vector>

namespace dopelint {

enum class TokKind {
  Ident,   ///< Identifier or keyword.
  Number,  ///< Numeric literal (integer or floating, any base).
  String,  ///< String literal, including raw strings; text excludes quotes.
  CharLit, ///< Character literal; text excludes quotes.
  Punct,   ///< Punctuation, maximal munch ("::", "->", "<<=", ...).
};

struct Token {
  TokKind Kind = TokKind::Punct;
  std::string Text;
  unsigned Line = 0; ///< 1-based.
  unsigned Col = 0;  ///< 1-based.
  bool InPP = false; ///< Inside a preprocessor directive.
};

struct LexOutput {
  std::vector<Token> Tokens;
  /// Line -> check IDs suppressed on that line via
  /// `// dope-lint: allow(DL001)`. The ID "all" suppresses everything.
  std::map<unsigned, std::set<std::string>> Suppressions;
  /// Line -> DESIGN.md anchor cited via `// dope-lint: mo-proof(...)`.
  /// Unlike allow(), the marker is an *acknowledgement*: the MO checks
  /// accept a relaxed/mixed ordering only when the author points at the
  /// written argument for it. Empty anchors are ignored.
  std::map<unsigned, std::string> MoProofs;
};

/// Tokenizes \p Source. Never fails: unrecognized bytes become
/// single-character Punct tokens, unterminated literals run to EOF.
LexOutput lex(const std::string &Source);

} // namespace dopelint

#endif // DOPE_TOOLS_LINT_LEXER_H

file(REMOVE_RECURSE
  "libdope_apps.a"
)

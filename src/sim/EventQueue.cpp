//===- sim/EventQueue.cpp - Discrete-event simulation core -----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/EventQueue.h"

#include <algorithm>
#include <bit>

using namespace dope;

uint64_t EventQueue::tickOf(double Time) const {
  const double Scaled = Time * TicksPerSecond;
  // Huge, infinite, or NaN times park in the overflow heap forever;
  // clamping avoids double->uint64 conversion UB.
  if (!(Scaled < 9.0e18))
    return UINT64_MAX;
  return static_cast<uint64_t>(Scaled);
}

uint32_t EventQueue::allocNode() {
  if (FreeList != NoIndex) {
    const uint32_t Index = FreeList;
    FreeList = node(Index).Next;
    return Index;
  }
  if (NodeCount == Chunks.size() * ChunkSize)
    Chunks.emplace_back(new Node[ChunkSize]);
  return NodeCount++;
}

void EventQueue::freeNode(uint32_t Index) {
  Node &N = node(Index);
  N.Fn.reset(); // drop captured state promptly
  N.Armed = false;
  if (++N.Gen == 0) // 0 must stay invalid across generation wrap
    N.Gen = 1;
  N.Next = FreeList;
  FreeList = Index;
}

EventId EventQueue::scheduleAt(double Time, SmallFn Fn) {
  assert(Fn && "scheduling empty event");
  assert(Time >= Now && "scheduling into the past");
  const uint32_t Index = allocNode();
  Node &N = node(Index);
  N.Time = Time;
  N.Seq = NextSeq++;
  N.Armed = true;
  N.Fn = std::move(Fn);
  ++Live;
  insertEntry({N.Time, N.Seq, Index});
  return (static_cast<uint64_t>(N.Gen) << 32) | Index;
}

void EventQueue::cancel(EventId Id) {
  const uint32_t Index = static_cast<uint32_t>(Id);
  const uint32_t Gen = static_cast<uint32_t>(Id >> 32);
  if (Gen == 0 || Index >= NodeCount)
    return;
  Node &N = node(Index);
  if (N.Gen != Gen || !N.Armed)
    return;
  // The node stays wherever it is (wheel slot, near heap, overflow) and
  // is reclaimed when next encountered; no search, no erase.
  N.Armed = false;
  N.Fn.reset();
  assert(Live > 0);
  --Live;
}

void EventQueue::insertEntry(const HeapEntry &E) {
  const uint64_t Tick = tickOf(E.Time);
  if (Tick <= CurTick) {
    Near.push_back(E);
    std::push_heap(Near.begin(), Near.end(), EarlierFirst{});
    return;
  }
  if ((Tick ^ CurTick) >> (Levels * SlotBits)) {
    Overflow.push_back(E);
    std::push_heap(Overflow.begin(), Overflow.end(), EarlierFirst{});
    return;
  }
  pushWheel(E, Tick);
}

void EventQueue::pushWheel(const HeapEntry &E, uint64_t Tick) {
  const uint64_t Diff = Tick ^ CurTick; // != 0 and < 64^Levels here
  const uint32_t Level =
      (63u - static_cast<uint32_t>(std::countl_zero(Diff))) / SlotBits;
  const uint32_t Slot =
      static_cast<uint32_t>(Tick >> (Level * SlotBits)) & (Slots - 1);
  Wheel[Level * Slots + Slot].push_back(E);
  Occupied[Level] |= uint64_t(1) << Slot;
}

bool EventQueue::lowestWheelBase(uint64_t &Base) const {
  for (uint32_t L = 0; L != Levels; ++L) {
    const uint64_t Mask = Occupied[L];
    if (!Mask)
      continue;
    // Every occupied slot's digit exceeds CurTick's digit at this level
    // (ticks are strictly in the future and share the higher digits),
    // so the raw minimum set bit is the earliest slot.
    const uint32_t S = static_cast<uint32_t>(std::countr_zero(Mask));
    const uint32_t Shift = L * SlotBits;
    const uint64_t High = CurTick >> (Shift + SlotBits);
    Base = ((High << SlotBits) | S) << Shift;
    return true;
  }
  return false;
}

void EventQueue::advanceTo(uint64_t TargetTick) {
  // Detach, highest level first, every slot the target maps into: those
  // are exactly the slots whose contents may now belong at a lower
  // level (or in the near heap). Slots with a larger digit than the
  // target's at their level remain correctly placed. A reinserted entry
  // always lands strictly below its detached level, and never in a slot
  // this advance also detaches (its digit differs from the target's at
  // the chosen level), so collecting everything first is safe.
  //
  // Cancelled events cascade as stale entries and are reclaimed when the
  // near heap purges them; the cascade itself never reads the slab.
  Cascade.clear();
  for (uint32_t L = Levels; L-- > 0;) {
    const uint32_t S =
        static_cast<uint32_t>(TargetTick >> (L * SlotBits)) & (Slots - 1);
    const uint64_t Bit = uint64_t(1) << S;
    if (!(Occupied[L] & Bit))
      continue;
    Occupied[L] &= ~Bit;
    std::vector<HeapEntry> &SlotVec = Wheel[L * Slots + S];
    Cascade.insert(Cascade.end(), SlotVec.begin(), SlotVec.end());
    SlotVec.clear(); // capacity retained for reuse
  }
  CurTick = TargetTick;
  for (const HeapEntry &E : Cascade)
    insertEntry(E);
  // Overflow entries whose tick caught up migrate inward so the
  // "everything outside Near is in a strictly later tick" invariant
  // holds.
  while (!Overflow.empty() && tickOf(Overflow.front().Time) <= CurTick) {
    const HeapEntry E = Overflow.front();
    std::pop_heap(Overflow.begin(), Overflow.end(), EarlierFirst{});
    Overflow.pop_back();
    insertEntry(E);
  }
}

bool EventQueue::refillNear(double EndTime) {
  const uint64_t EndTick = tickOf(EndTime);
  for (;;) {
    // Purge cancelled entries from the top, then check the earliest
    // live near event. The near top is the global minimum: every
    // wheel/overflow node has a strictly later tick, hence a strictly
    // later time.
    while (!Near.empty()) {
      const HeapEntry &Top = Near.front();
      if (node(Top.Index).Armed)
        return Top.Time <= EndTime;
      const uint32_t Index = Top.Index;
      std::pop_heap(Near.begin(), Near.end(), EarlierFirst{});
      Near.pop_back();
      freeNode(Index);
    }
    uint64_t WheelBase = 0;
    const bool HaveWheel = lowestWheelBase(WheelBase);
    const bool HaveOver = !Overflow.empty();
    if (!HaveWheel && !HaveOver)
      return false;
    uint64_t Target = HaveWheel ? WheelBase : UINT64_MAX;
    if (HaveOver)
      Target = std::min(Target, tickOf(Overflow.front().Time));
    if (Target > EndTick)
      return false; // earliest possible event is past EndTime's tick
    advanceTo(Target);
  }
}

bool EventQueue::step(double EndTime) {
  for (;;) {
    if (!refillNear(EndTime))
      return false;
    const uint32_t Index = Near.front().Index;
    std::pop_heap(Near.begin(), Near.end(), EarlierFirst{});
    Near.pop_back();
    Node &N = node(Index);
    if (!N.Armed) { // cancelled between refill and pop (paranoia)
      freeNode(Index);
      continue;
    }
    // Move the callback out before recycling: the handler may schedule
    // more events and reuse this very node.
    SmallFn Fn = std::move(N.Fn);
    Now = N.Time;
    freeNode(Index);
    --Live;
    Fn();
    return true;
  }
}

uint64_t EventQueue::runUntil(double EndTime) {
  uint64_t Dispatched = 0;
  while (step(EndTime))
    ++Dispatched;
  if (Now < EndTime)
    Now = EndTime; // idle or stopped on a future event
  return Dispatched;
}

//===- analysis/Scenarios.h - Canonical what-if scenarios ------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The golden what-if scenarios: fixed, seeded workloads shared by the
/// dope_whatif CLI (profile/recommend/validate/regen), the whatif test
/// suite, and the warm-start ablation bench. One definition keeps the
/// committed golden traces, the recommendations computed from them, and
/// the validation runs all describing the same run.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_ANALYSIS_SCENARIOS_H
#define DOPE_ANALYSIS_SCENARIOS_H

#include "sim/ColocationSim.h"
#include "sim/PipelineSim.h"
#include "support/Trace.h"

#include <utility>
#include <vector>

namespace dope {

/// The pipeline scenario: app model, sim options, and the deliberately
/// skewed baseline extents the golden trace runs under.
struct WhatIfPipelineScenario {
  PipelineAppModel App;
  PipelineSimOptions Opts;
  /// Under-provisions the slow stage, so the profiler has a real
  /// bottleneck to find and the recommendation a real gain to predict.
  std::vector<unsigned> BaselineExtents;
};

/// A 4-stage imbalanced pipeline (ferret-shaped: fast ends, heavy
/// middle) with 24 contexts, seed 42 — deterministic.
WhatIfPipelineScenario whatifPipelineScenario();

/// Runs the scenario statically under its baseline extents with task
/// instances traced, returning the result and the canonicalized trace —
/// the exact byte stream committed as the golden
/// whatif-pipeline.trace.jsonl.
std::pair<PipelineSimResult, std::vector<TraceRecord>>
runWhatifPipelineScenario(const WhatIfPipelineScenario &Scenario);

/// The colocation scenario: two pipeline tenants and one nest-server
/// tenant with asymmetric loads, so an equal split is visibly wrong and
/// the recommended shares visibly right.
struct WhatIfColocationScenario {
  std::vector<ColocationTenantSpec> Tenants;
  ColocationSimOptions Opts;
};

WhatIfColocationScenario whatifColocationScenario();

} // namespace dope

#endif // DOPE_ANALYSIS_SCENARIOS_H

//===- tests/TpcTest.cpp - Throughput Power Controller tests ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Tpc.h"

#include "core/FeatureRegistry.h"
#include "sim/PowerModel.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

/// Drives TPC against an analytical plant: stage service times are fixed,
/// throughput is the bottleneck capacity, and power follows the
/// PowerModel with "active cores" equal to the useful demand.
class TpcPlant {
public:
  TpcPlant()
      : G(makePipelineGraph({{"load", false},
                             {"work1", true},
                             {"work2", true},
                             {"out", false}})),
        Service({0.05, 2.0, 1.0, 0.05}), Power(24, 450.0, 6.25) {
    Registry.registerFeature("SystemPower",
                             [this] { return CurrentPower; });
  }

  /// One decision round; returns the extents TPC chose.
  std::vector<unsigned> step(TpcMechanism &M, double BudgetWatts) {
    RegionConfig Config = makeConfig();
    RegionSnapshot Snap = makeSnapshot();

    MechanismContext Ctx;
    Ctx.MaxThreads = 24;
    Ctx.PowerBudgetWatts = BudgetWatts;
    Ctx.Features = &Registry;
    Ctx.NowSeconds = Now;
    Now += 1.0;

    std::optional<RegionConfig> Next =
        M.reconfigure(*G.Root, Snap, Config, Ctx);
    if (Next) {
      Extents.clear();
      for (const TaskConfig &TC : Next->Tasks.front().Inner)
        Extents.push_back(TC.Extent);
    }
    updatePlant();
    return Extents;
  }

  double throughput() const {
    double Min = 1e300;
    for (size_t I = 0; I != Service.size(); ++I)
      Min = std::min(Min, Extents[I] / Service[I]);
    return Min;
  }

  unsigned totalExtent() const {
    unsigned Total = 0;
    for (unsigned E : Extents)
      Total += E;
    return Total;
  }

  double currentPower() const { return CurrentPower; }

private:
  RegionConfig makeConfig() const {
    TaskConfig Driver;
    Driver.Extent = 1;
    Driver.AltIndex = 0;
    for (unsigned E : Extents) {
      TaskConfig TC;
      TC.Extent = E;
      Driver.Inner.push_back(TC);
    }
    RegionConfig Config;
    Config.Tasks.push_back(Driver);
    return Config;
  }

  RegionSnapshot makeSnapshot() const {
    std::vector<StageMetricsSpec> Metrics;
    for (size_t I = 0; I != Service.size(); ++I)
      Metrics.push_back({Service[I], 4.0, 25});
    return makePipelineSnapshot(G, makeConfig(), Metrics);
  }

  void updatePlant() {
    // Busy cores: the pipeline only keeps threads busy up to the work
    // the bottleneck admits (t * sum(s_i) core-seconds per second).
    const double T = throughput();
    double TotalService = 0.0;
    for (double S : Service)
      TotalService += S;
    const double Busy =
        std::min(static_cast<double>(totalExtent()), T * TotalService);
    CurrentPower = Power.watts(Busy);
  }

public:
  PipelineGraph G;
  std::vector<unsigned> Extents{1, 1, 1, 1};
  std::vector<double> Service;
  PowerModel Power;
  FeatureRegistry Registry;
  double CurrentPower = 450.0;
  double Now = 0.0;
};

TEST(Tpc, InitializesAllExtentsToOne) {
  TpcPlant Plant;
  Plant.Extents = {1, 9, 9, 1};
  TpcMechanism M;
  const std::vector<unsigned> E = Plant.step(M, 600.0);
  EXPECT_EQ(E, (std::vector<unsigned>{1, 1, 1, 1}));
  EXPECT_EQ(M.phase(), TpcMechanism::Phase::Ramp);
}

TEST(Tpc, RampsUntilPowerBudget) {
  TpcPlant Plant;
  TpcMechanism M;
  const double Budget = 0.9 * Plant.Power.peakWatts(); // 540 W
  for (int I = 0; I != 60; ++I)
    Plant.step(M, Budget);
  // Stabilizes under (or at) the budget...
  EXPECT_LE(Plant.currentPower(), Budget + Plant.Power.watts(1) -
                                      Plant.Power.idleWatts() + 1e-9);
  // ...while using most of it: at least 10 busy cores' worth over idle.
  EXPECT_GT(Plant.currentPower(), Plant.Power.idleWatts() + 60.0);
  EXPECT_EQ(M.phase(), TpcMechanism::Phase::Stable);
}

TEST(Tpc, UnconstrainedRampStopsAtThreadBudget) {
  TpcPlant Plant;
  TpcMechanism M;
  for (int I = 0; I != 80; ++I)
    Plant.step(M, /*BudgetWatts=*/0.0);
  EXPECT_LE(Plant.totalExtent(), 24u);
  EXPECT_GE(Plant.totalExtent(), 20u);
}

TEST(Tpc, GrowsTheBottleneckFirst) {
  TpcPlant Plant;
  TpcMechanism M;
  Plant.step(M, 600.0); // init -> all ones
  const std::vector<unsigned> E = Plant.step(M, 600.0);
  // work1 (2.0 s) is the bottleneck at 1/2 = 0.5 items/s.
  EXPECT_EQ(E[1], 2u);
  EXPECT_EQ(E[2], 1u);
}

TEST(Tpc, ShedsThreadsOnOvershootInStable) {
  TpcPlant Plant;
  TpcMechanism M;
  const double Budget = 0.9 * Plant.Power.peakWatts();
  for (int I = 0; I != 60; ++I)
    Plant.step(M, Budget);
  ASSERT_EQ(M.phase(), TpcMechanism::Phase::Stable);
  const unsigned Before = Plant.totalExtent();
  // Tighten the budget sharply: the controller must shed threads.
  for (int I = 0; I != 20; ++I)
    Plant.step(M, Budget - 40.0);
  EXPECT_LT(Plant.totalExtent(), Before);
}

TEST(Tpc, ResetRestartsFromInit) {
  TpcPlant Plant;
  TpcMechanism M;
  for (int I = 0; I != 10; ++I)
    Plant.step(M, 600.0);
  M.reset();
  EXPECT_EQ(M.phase(), TpcMechanism::Phase::Init);
  const std::vector<unsigned> E = Plant.step(M, 600.0);
  EXPECT_EQ(E, (std::vector<unsigned>{1, 1, 1, 1}));
}

} // namespace

//===- arbiter/Lease.h - Revocable resource leases -------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The currency of the platform arbiter: a revocable thread-and-power
/// lease. A lease is a *ceiling*, not a pinning — the tenant's own
/// mechanism plans any configuration within it (the lease reaches the
/// tenant's executive as its thread envelope and its mechanisms as
/// MechanismContext::effectiveThreads). The arbiter may revoke part of a
/// lease at an epoch boundary; the tenant degrades gracefully through
/// its suspend/quiesce path rather than losing tasks.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_ARBITER_LEASE_H
#define DOPE_ARBITER_LEASE_H

#include <string>

namespace dope {

/// What one tenant currently holds.
struct Lease {
  /// Hardware threads the tenant may occupy (its thread envelope).
  unsigned Threads = 0;

  /// Power attributed to the lease under the arbiter's linear model, in
  /// watts; 0 when the arbiter runs without a power model.
  double PowerWatts = 0.0;
};

/// One applied lease transition, as returned by Arbiter::rebalance.
/// Revocations are ordered before grants so a caller applying changes in
/// sequence never overcommits the platform.
struct LeaseChange {
  /// Tenant the change applies to.
  std::string Tenant;

  /// Virtual time of the decision in seconds.
  double Time = 0.0;

  unsigned OldThreads = 0;
  unsigned NewThreads = 0;

  /// Why the arbiter moved: "join", "leave", "rebalance", "slo-urgent",
  /// "equal-share".
  std::string Reason;

  /// True when the change enlarges the lease.
  bool isGrant() const { return NewThreads > OldThreads; }
};

} // namespace dope

#endif // DOPE_ARBITER_LEASE_H

//===- support/OptionParser.cpp - Tiny command line parser ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/OptionParser.h"

#include <cassert>
#include <cstdlib>

using namespace dope;

OptionParser::OptionParser(std::string ProgramDescription)
    : Description(std::move(ProgramDescription)) {}

void OptionParser::addString(const std::string &Name,
                             const std::string &Default,
                             const std::string &Help) {
  assert(!Options.count(Name) && "duplicate option");
  Options[Name] = {OptionKind::String, Default, Default, Help, false};
  DeclOrder.push_back(Name);
}

void OptionParser::addInt(const std::string &Name, long long Default,
                          const std::string &Help) {
  assert(!Options.count(Name) && "duplicate option");
  Options[Name] = {OptionKind::Int, std::to_string(Default),
                   std::to_string(Default), Help, false};
  DeclOrder.push_back(Name);
}

void OptionParser::addDouble(const std::string &Name, double Default,
                             const std::string &Help) {
  assert(!Options.count(Name) && "duplicate option");
  Options[Name] = {OptionKind::Double, std::to_string(Default),
                   std::to_string(Default), Help, false};
  DeclOrder.push_back(Name);
}

void OptionParser::addFlag(const std::string &Name, const std::string &Help) {
  assert(!Options.count(Name) && "duplicate option");
  Options[Name] = {OptionKind::Flag, "0", "0", Help, false};
  DeclOrder.push_back(Name);
}

bool OptionParser::parse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      HelpRequested = true;
      continue;
    }
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }

    std::string Name = Arg.substr(2);
    std::string Value;
    bool HasValue = false;
    const size_t Eq = Name.find('=');
    if (Eq != std::string::npos) {
      Value = Name.substr(Eq + 1);
      Name = Name.substr(0, Eq);
      HasValue = true;
    }

    auto It = Options.find(Name);
    if (It == Options.end()) {
      Error = "unknown option '--" + Name + "'";
      return false;
    }
    Option &Opt = It->second;

    if (Opt.Kind == OptionKind::Flag) {
      if (HasValue) {
        Error = "flag '--" + Name + "' does not take a value";
        return false;
      }
      Opt.Value = "1";
      Opt.Seen = true;
      continue;
    }

    if (!HasValue) {
      if (I + 1 >= Argc) {
        Error = "option '--" + Name + "' expects a value";
        return false;
      }
      Value = Argv[++I];
    }

    // Validate typed values eagerly so harnesses fail fast.
    char *End = nullptr;
    if (Opt.Kind == OptionKind::Int) {
      (void)std::strtoll(Value.c_str(), &End, 10);
      if (End == Value.c_str() || *End != '\0') {
        Error = "option '--" + Name + "' expects an integer, got '" + Value +
                "'";
        return false;
      }
    } else if (Opt.Kind == OptionKind::Double) {
      (void)std::strtod(Value.c_str(), &End);
      if (End == Value.c_str() || *End != '\0') {
        Error = "option '--" + Name + "' expects a number, got '" + Value +
                "'";
        return false;
      }
    }
    Opt.Value = Value;
    Opt.Seen = true;
  }
  return true;
}

const OptionParser::Option *OptionParser::find(const std::string &Name) const {
  auto It = Options.find(Name);
  assert(It != Options.end() && "querying undeclared option");
  return &It->second;
}

std::string OptionParser::getString(const std::string &Name) const {
  return find(Name)->Value;
}

long long OptionParser::getInt(const std::string &Name) const {
  const Option *Opt = find(Name);
  assert(Opt->Kind == OptionKind::Int && "option is not an integer");
  return std::strtoll(Opt->Value.c_str(), nullptr, 10);
}

double OptionParser::getDouble(const std::string &Name) const {
  const Option *Opt = find(Name);
  assert((Opt->Kind == OptionKind::Double || Opt->Kind == OptionKind::Int) &&
         "option is not numeric");
  return std::strtod(Opt->Value.c_str(), nullptr);
}

bool OptionParser::getFlag(const std::string &Name) const {
  const Option *Opt = find(Name);
  assert(Opt->Kind == OptionKind::Flag && "option is not a flag");
  return Opt->Value == "1";
}

std::string OptionParser::helpText() const {
  std::string Out;
  if (!Description.empty())
    Out += Description + "\n\n";
  Out += "Options:\n";
  for (const std::string &Name : DeclOrder) {
    const Option &Opt = Options.at(Name);
    Out += "  --" + Name;
    if (Opt.Kind != OptionKind::Flag)
      Out += "=<value> (default: " + Opt.Default + ")";
    Out += "\n      " + Opt.Help + "\n";
  }
  return Out;
}

//===- tools/dope_lint/Checks.h - DoPE contract checks ---------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DoPE-specific contract checks (DESIGN.md §12). Each check has a
/// stable ID and severity and runs over the frontend-agnostic token
/// stream (Lexer.h / LibclangFrontend.h):
///
///   DL001 determinism-clock    raw std::chrono clock reads outside
///                              support/Clock.h
///   DL002 determinism-random   rand()/random_device/mt19937 outside
///                              support/Random
///   HP001 hot-path-lock        DOPE_HOT function body takes a mutex
///   HP002 hot-path-alloc       DOPE_HOT function body allocates
///   HP003 hot-path-virtual     DOPE_HOT function body calls a
///                              non-DOPE_HOT virtual
///   AP001 begin-end-pairing    Task begin/end imbalance on one
///                              TaskRuntime within one function
///   AP002 wait-before-destroy  Dope::create without wait/waitFor/
///                              destroy in the same function
///   AP003 fini-once            FiniCB registered twice for one
///                              descriptor in one function
///   TS001 trace-kind-names     TraceKind enumerator count != KindNames
///                              serializer entries
///   TS002 trace-kind-switch    defaultless switch over TraceKind not
///                              covering every enumerator
///
/// Interprocedural checks (CallGraph.h / LockGraph.h):
///
///   HP004 hot-path-transitive  DOPE_HOT body *reaches* a lock /
///                              allocation / blocking wait / container
///                              growth through a call chain (stops at
///                              DOPE_COLD and DOPE_HOT callees)
///   LK001 lock-order-cycle     cycle in the lock-acquisition graph —
///                              a potential deadlock
///   LK002 lock-across-blocking lock held across a blocking call
///   MO001 atomic-order-mix     relaxed op on an atomic that elsewhere
///                              uses acquire/release/seq_cst, with no
///                              fence in the function and no mo-proof
///   MO002 cas-order-split      compare_exchange with differing
///                              success/failure orders, no mo-proof
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_TOOLS_LINT_CHECKS_H
#define DOPE_TOOLS_LINT_CHECKS_H

#include "Lexer.h"

#include <set>
#include <string>
#include <vector>

namespace dopelint {

struct CheckInfo {
  const char *Id;
  const char *Severity; ///< "error" or "warning".
  const char *Name;
  const char *Description;
};

/// The full check table, in ID order.
const std::vector<CheckInfo> &allChecks();

/// One step of interprocedural evidence: a function (or lock edge) and
/// the site that links it into the chain.
struct ChainFrame {
  std::string Symbol; ///< Function name or "LockA -> LockB" edge.
  std::string File;
  unsigned Line = 0;
};

struct Finding {
  std::string CheckId;
  std::string Severity;
  std::string File;
  unsigned Line = 0;
  std::string Message;
  /// Interprocedural evidence (HP004 call chains, LK001 witness edges,
  /// LK002 blocking paths). Empty for per-body findings. Printed by
  /// --explain and carried in the JSON `chain` array.
  std::vector<ChainFrame> Chain;
};

/// One scanned file: path plus its token stream.
struct FileTokens {
  std::string Path;
  LexOutput Lex;
};

/// Cross-file symbol knowledge collected in pass 1. HP003 needs the
/// global virtual/hot sets (a call in A.cpp dispatches to a virtual
/// declared in B.h); TS001/TS002 need the TraceKind schema.
struct GlobalIndex {
  std::set<std::string> HotFunctions;
  std::set<std::string> VirtualFunctions;
  /// Names with at least one non-virtual function *definition* anywhere
  /// in the scanned set. A name-based virtual-call check cannot tell
  /// Task::name() (non-virtual) from Mechanism::name() (virtual), so
  /// ambiguous names are exempted from HP003 rather than guessed at.
  std::set<std::string> NonVirtualDefs;
  std::vector<std::string> TraceKindEnumerators;
  int KindNamesStrings = -1; ///< -1 while the serializer table is unseen.
  std::string KindNamesFile;
  unsigned KindNamesLine = 0;
};

GlobalIndex buildIndex(const std::vector<FileTokens> &Files);

struct CheckOptions {
  /// Check IDs disabled via --allow.
  std::set<std::string> Disabled;
};

/// Runs every enabled check over \p File. Findings suppressed by
/// `// dope-lint: allow(ID)` on the finding's line (or the line above)
/// are dropped.
std::vector<Finding> runChecks(const FileTokens &File,
                               const GlobalIndex &Index,
                               const CheckOptions &Opts);

/// Runs the whole-program checks (HP004, LK001/LK002, MO001/MO002)
/// over the full scanned set. --allow and `// dope-lint: allow(ID)` /
/// `mo-proof(...)` markers are honored exactly as in runChecks.
std::vector<Finding> runGlobalChecks(const std::vector<FileTokens> &Files,
                                     const GlobalIndex &Index,
                                     const CheckOptions &Opts);

/// Shared suppression lookup: `// dope-lint: allow(ID)` on the
/// finding's line or the line above.
bool isSuppressed(const FileTokens &File, const std::string &Id,
                  unsigned Line);

/// True when \p Path is an allowed home for raw clock / RNG primitives
/// (support/Clock.h, core/Clock.h forwarder, support/Random.*).
bool isDeterminismWhitelisted(const std::string &Path);

} // namespace dopelint

#endif // DOPE_TOOLS_LINT_CHECKS_H

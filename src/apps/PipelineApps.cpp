//===- apps/PipelineApps.cpp - Pipeline application models -----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/PipelineApps.h"

using namespace dope;

PipelineAppModel dope::makeFerretApp() {
  PipelineAppModel App;
  App.Name = "ferret";
  // Per-query stage times (seconds on the model platform). The feature
  // extraction and ranking stages dominate and are imbalanced, which is
  // why the even static split starves the bottleneck.
  App.Stages = {
      {"load", /*Parallel=*/false, /*ServiceSeconds=*/0.10, /*Cv=*/0.10},
      {"segment", true, 0.80, 0.15},
      {"extract", true, 8.00, 0.20},
      {"vector", true, 1.20, 0.15},
      {"rank", true, 2.00, 0.20},
      {"out", false, 0.10, 0.10},
  };
  // Fused variant: the four parallel stages collapse into one task,
  // saving inter-stage forwarding (~7% of the parallel work).
  App.FusedStages = {
      {"load", false, 0.10, 0.10},
      {"query", true, 11.16, 0.18},
      {"out", false, 0.10, 0.10},
  };
  // Compute-bound: tolerates a large thread footprint.
  App.OversubPenalty = 0.05;
  App.ThreadOverheadPenalty = 0.10;
  return App;
}

PipelineAppModel dope::makeDedupApp() {
  PipelineAppModel App;
  App.Name = "dedup";
  App.Stages = {
      {"fragment", /*Parallel=*/false, 0.10, 0.10},
      {"refine", true, 0.60, 0.15},
      {"deduplicate", true, 6.00, 0.20},
      {"compress", true, 1.90, 0.15},
      {"write", false, 0.10, 0.10},
  };
  App.FusedStages = {
      {"fragment", false, 0.10, 0.10},
      {"chunk", true, 7.90, 0.18},
      {"write", false, 0.10, 0.10},
  };
  // Memory-bound: a large thread footprint pollutes caches and consumes
  // memory (paper: Pthreads-OS shows "virtually no improvement").
  App.OversubPenalty = 0.15;
  App.ThreadOverheadPenalty = 0.65;
  return App;
}

std::vector<PipelineAppModel> dope::allPipelineApps() {
  return {makeFerretApp(), makeDedupApp()};
}

//===- mechanisms/Goal.cpp - Administrator performance goals ---------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Goal.h"

#include "mechanisms/Tbf.h"
#include "mechanisms/Tpc.h"
#include "support/Compiler.h"

using namespace dope;

std::string dope::toString(Objective Obj) {
  switch (Obj) {
  case Objective::MinResponseTime:
    return "MinResponseTime";
  case Objective::MaxThroughput:
    return "MaxThroughput";
  case Objective::MaxThroughputPowerCapped:
    return "MaxThroughputPowerCapped";
  }
  DOPE_UNREACHABLE("invalid Objective");
}

std::unique_ptr<Mechanism>
dope::makeDefaultMechanism(const PerformanceGoal &Goal) {
  switch (Goal.Obj) {
  case Objective::MinResponseTime:
    return std::make_unique<WqLinearMechanism>(Goal.ResponseParams);
  case Objective::MaxThroughput:
    return std::make_unique<TbfMechanism>();
  case Objective::MaxThroughputPowerCapped:
    return std::make_unique<TpcMechanism>();
  }
  DOPE_UNREACHABLE("invalid Objective");
}

//===- bench/micro_primitives.cpp - Runtime primitive microbenchmarks ------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the run-time primitives on the
/// executive's hot paths: queue operations (every pipeline item crosses
/// at least two), the work-stealing deque (owner push/pop, contended
/// steal, 1-vs-N thieves — every recursive task crosses it), metric
/// recording (every Task::begin/end pair), load sampling, RNG draws,
/// and configuration bookkeeping. These quantify why full per-instance
/// monitoring stays in the noise (Sec. 8.2).
///
//===----------------------------------------------------------------------===//

#include "core/Config.h"
#include "core/FeatureRegistry.h"
#include "core/Monitor.h"
#include "queue/BoundedQueue.h"
#include "queue/ChaseLevDeque.h"
#include "queue/SpscRing.h"
#include "queue/StealScheduler.h"
#include "queue/WorkQueue.h"
#include "support/MathUtils.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace dope;

namespace {

void BM_WorkQueuePushPop(benchmark::State &State) {
  WorkQueue<int> Q;
  for (auto _ : State) {
    Q.push(1);
    benchmark::DoNotOptimize(Q.tryPop());
  }
}
BENCHMARK(BM_WorkQueuePushPop);

void BM_WorkQueueOccupancy(benchmark::State &State) {
  WorkQueue<int> Q;
  for (int I = 0; I != 64; ++I)
    Q.push(I);
  for (auto _ : State)
    benchmark::DoNotOptimize(Q.size());
}
BENCHMARK(BM_WorkQueueOccupancy);

void BM_BoundedQueuePushPop(benchmark::State &State) {
  BoundedQueue<int> Q(1024);
  for (auto _ : State) {
    Q.tryPush(1);
    benchmark::DoNotOptimize(Q.tryPop());
  }
}
BENCHMARK(BM_BoundedQueuePushPop);

void BM_SpscRingPushPop(benchmark::State &State) {
  SpscRing<int> R(1024);
  for (auto _ : State) {
    R.push(1);
    benchmark::DoNotOptimize(R.pop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

//===----------------------------------------------------------------------===//
// Work-stealing primitives (queue/ChaseLevDeque.h, queue/StealScheduler.h)
//===----------------------------------------------------------------------===//

void BM_ChaseLevOwnerPushPop(benchmark::State &State) {
  ChaseLevDeque<uint64_t> D(1024);
  uint64_t Out = 0;
  for (auto _ : State) {
    D.push(1);
    benchmark::DoNotOptimize(D.pop(Out));
  }
}
BENCHMARK(BM_ChaseLevOwnerPushPop);

void BM_ChaseLevUncontendedSteal(benchmark::State &State) {
  ChaseLevDeque<uint64_t> D(1024);
  uint64_t Out = 0;
  for (auto _ : State) {
    D.push(1);
    benchmark::DoNotOptimize(D.steal(Out));
  }
}
BENCHMARK(BM_ChaseLevUncontendedSteal);

/// Owner and thieves on one live deque: thread 0 keeps the deque fed
/// (push two, pop one) while every other thread steals. With the
/// 1-thread variant this doubles as the owner-only baseline; 2/4/8
/// threads give the 1-vs-N-thieves contention curve. The shared deque
/// outlives each thread count's run (function-local static), which is
/// fine: leftover elements only mean steals start warm.
void BM_ChaseLevContendedSteal(benchmark::State &State) {
  static ChaseLevDeque<uint64_t> D(1 << 12);
  uint64_t Out = 0;
  if (State.thread_index() == 0) {
    for (auto _ : State) {
      D.push(1);
      D.push(2);
      benchmark::DoNotOptimize(D.pop(Out));
      // Keep the backlog bounded if thieves fall behind the surplus.
      if (D.size() > (1u << 12))
        benchmark::DoNotOptimize(D.pop(Out));
    }
  } else {
    for (auto _ : State)
      benchmark::DoNotOptimize(D.steal(Out));
  }
}
BENCHMARK(BM_ChaseLevContendedSteal)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_StealSchedulerSpawnAcquire(benchmark::State &State) {
  StealScheduler<uint64_t> S(8);
  uint64_t Out = 0;
  for (auto _ : State) {
    S.spawn(0, 1);
    benchmark::DoNotOptimize(S.tryAcquire(0, Out));
  }
}
BENCHMARK(BM_StealSchedulerSpawnAcquire);

/// Cross-deque acquisition: worker 1..7's deques are empty, so every
/// tryAcquire from worker 1 sweeps victims until it finds worker 0's
/// element — the randomized victim-selection plus steal path.
void BM_StealSchedulerCrossSteal(benchmark::State &State) {
  StealScheduler<uint64_t> S(8);
  uint64_t Out = 0;
  for (auto _ : State) {
    S.spawn(0, 1);
    benchmark::DoNotOptimize(S.tryAcquire(1, Out));
  }
}
BENCHMARK(BM_StealSchedulerCrossSteal);

void BM_TaskMetricsRecord(benchmark::State &State) {
  TaskMetrics M;
  double T = 0.001;
  for (auto _ : State) {
    M.recordExecTime(T);
    T += 1e-9;
  }
  benchmark::DoNotOptimize(M.execTime());
}
BENCHMARK(BM_TaskMetricsRecord);

void BM_FeatureRegistryGet(benchmark::State &State) {
  FeatureRegistry R;
  R.registerFeature("SystemPower", [] { return 540.0; });
  double Now = 0.0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(R.getValue("SystemPower", Now));
    Now += 0.001;
  }
}
BENCHMARK(BM_FeatureRegistryGet);

void BM_RngLogNormal(benchmark::State &State) {
  Rng R(42);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.logNormal(1.0, 0.2));
}
BENCHMARK(BM_RngLogNormal);

void BM_WaterfillSplit(benchmark::State &State) {
  const std::vector<double> Costs = {0.0, 0.8, 8.0, 1.2, 2.0, 0.0};
  for (auto _ : State)
    benchmark::DoNotOptimize(waterfillSplit(24, Costs));
}
BENCHMARK(BM_WaterfillSplit);

void BM_ProportionalSplit(benchmark::State &State) {
  const std::vector<double> Weights = {0.8, 8.0, 1.2, 2.0};
  for (auto _ : State)
    benchmark::DoNotOptimize(proportionalSplit(24, Weights, 1));
}
BENCHMARK(BM_ProportionalSplit);

} // namespace

BENCHMARK_MAIN();

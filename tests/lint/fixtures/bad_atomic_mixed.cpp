// MO001 fixture: one atomic accessed with acquire/release ordering in
// some functions and memory_order_relaxed in another, with no fence and
// no mo-proof annotation. A second relaxed access sits next to an
// explicit atomic_thread_fence and is therefore exempt.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <atomic>

struct Counter {
  std::atomic<int> Value{0};

  void bump() { Value.fetch_add(1, std::memory_order_release); }

  int read() const { return Value.load(std::memory_order_acquire); }

  // MO001: relaxed access to a key that synchronizes elsewhere.
  int peek() const { return Value.load(std::memory_order_relaxed); }

  // Exempt: the fence supplies the ordering the relaxed load elides.
  int peekFenced() const {
    const int V = Value.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    return V;
  }
};

//===- bench/fig11_response_time.cpp - Figure 11 reproduction --------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 11: response time vs. load for the four online
/// service applications (x264 video transcoding, swaptions option
/// pricing, bzip data compression, gimp image editing) under
///
///   * Static-Seq:  <(N, DOALL), (1, SEQ)>,
///   * Static-Par:  <(N/Mmax, DOALL), (Mmax, PIPE|DOALL)>,
///   * WQT-H, and
///   * WQ-Linear.
///
/// Expected shapes (Sec. 8.2.1): the adaptive mechanisms dominate the
/// statics across the load range; WQ-Linear gives the most graceful
/// degradation except for bzip, where DoPmin = 4 starves it of useful
/// intermediate configurations and it lands near WQT-H.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "ParallelSweep.h"

#include "apps/NestApps.h"
#include "mechanisms/ServerNest.h"
#include "mechanisms/WqLinear.h"
#include "mechanisms/WqtH.h"
#include "sim/NestServerSim.h"

#include <cstdio>
#include <map>
#include <vector>

using namespace dope;
using namespace dope::bench;

namespace {

/// The four variants measured at one load point.
struct LoadPointResult {
  double StaticSeq = 0.0;
  double StaticPar = 0.0;
  double WqtH = 0.0;
  double WqLinear = 0.0;
};

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options(
      "Figure 11: response time vs load under Static-Seq, Static-Par, "
      "WQT-H, WQ-Linear for four server applications");
  addCommonOptions(Options);
  Options.addInt("transactions", 600, "transactions per run");
  Options.addInt("jobs", 0,
                 "parallel workers for independent load points "
                 "(0 = hardware contexts, 1 = sequential)");
  parseOrExit(Options, Argc, Argv);

  const bool Csv = Options.getFlag("csv");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  const uint64_t Seed = static_cast<uint64_t>(Options.getInt("seed"));
  const unsigned Jobs =
      resolveSweepWorkers(static_cast<int>(Options.getInt("jobs")));
  uint64_t Transactions =
      static_cast<uint64_t>(Options.getInt("transactions"));
  if (Options.getFlag("quick"))
    Transactions = 200;

  const std::vector<double> Loads = {0.1, 0.3, 0.5, 0.6, 0.7,
                                     0.8, 0.9, 1.0};

  bool AllOk = true;
  for (const NestAppBundle &App : allNestApps()) {
    Table T({"load", "Static-Seq", "Static-Par", "WQT-H", "WQ-Linear"});

    // Per-mechanism response-time averages across the load sweep, used
    // by the shape checks.
    std::map<std::string, double> MeanAcrossLoads;
    std::map<std::string, double> WorstRatioVsBestStatic;

    // Load points are independent (each worker owns its simulator and
    // every run reseeds from SimOpts.Seed), so fan them across real
    // threads; the per-point numbers are identical to the sequential
    // sweep and rows print in load order below.
    const std::vector<LoadPointResult> Points =
        parallelSweep<LoadPointResult>(Loads.size(), Jobs, [&](size_t I) {
          NestSimOptions SimOpts;
          SimOpts.Contexts = Contexts;
          SimOpts.LoadFactor = Loads[I];
          SimOpts.NumTransactions = Transactions;
          SimOpts.Seed = Seed;
          NestServerSim Sim(App.Model, SimOpts);

          const unsigned ParOuter = outerExtentFor(Contexts, App.MMax);
          LoadPointResult R;
          R.StaticSeq =
              Sim.run(nullptr, Contexts, 1).Stats.meanResponseTime();
          R.StaticPar =
              Sim.run(nullptr, ParOuter, App.MMax).Stats.meanResponseTime();

          WqtHMechanism WqtH(App.WqtH);
          R.WqtH = Sim.run(&WqtH, Contexts, 1).Stats.meanResponseTime();
          WqLinearMechanism WqLin(App.WqLinear);
          R.WqLinear = Sim.run(&WqLin, Contexts, 1).Stats.meanResponseTime();
          return R;
        });

    for (size_t I = 0; I != Loads.size(); ++I) {
      const LoadPointResult &R = Points[I];
      T.addRow({Table::formatDouble(Loads[I], 1),
                Table::formatDouble(R.StaticSeq, 2),
                Table::formatDouble(R.StaticPar, 2),
                Table::formatDouble(R.WqtH, 2),
                Table::formatDouble(R.WqLinear, 2)});

      const double BestStatic = std::min(R.StaticSeq, R.StaticPar);
      MeanAcrossLoads["seq"] += R.StaticSeq;
      MeanAcrossLoads["par"] += R.StaticPar;
      MeanAcrossLoads["wqth"] += R.WqtH;
      MeanAcrossLoads["wqlin"] += R.WqLinear;
      auto &WorstH = WorstRatioVsBestStatic["wqth"];
      WorstH = std::max(WorstH, R.WqtH / BestStatic);
      auto &WorstL = WorstRatioVsBestStatic["wqlin"];
      WorstL = std::max(WorstL, R.WqLinear / BestStatic);
    }

    emitTable("Fig. 11 (" + App.Model.Name +
                  ") mean response time (s) vs load",
              T, Csv);

    const double N = static_cast<double>(Loads.size());
    const double MeanSeq = MeanAcrossLoads["seq"] / N;
    const double MeanPar = MeanAcrossLoads["par"] / N;
    const double MeanWqLin = MeanAcrossLoads["wqlin"] / N;
    const double MeanWqtH = MeanAcrossLoads["wqth"] / N;

    if (App.Model.Name != "bzip") {
      AllOk &= checkShape(
          MeanWqLin < std::min(MeanSeq, MeanPar),
          App.Model.Name +
              ": WQ-Linear beats both statics averaged across loads");
      AllOk &= checkShape(
          WorstRatioVsBestStatic["wqlin"] < 1.35,
          App.Model.Name + ": WQ-Linear never falls far behind the best "
                           "static at any load (worst ratio " +
              Table::formatDouble(WorstRatioVsBestStatic["wqlin"], 2) +
              ")");
    } else {
      // Sec. 8.2.1: for data compression DoPmin = 4, so WQ-Linear
      // "may give unhelpful configurations such as <(8, DOALL),
      // (3, PIPE)>" and has too few configurations "to provide any
      // improvement over WQT-H".
      AllOk &= checkShape(MeanWqLin > MeanWqtH * 0.95,
                          "bzip: WQ-Linear provides no improvement over "
                          "WQT-H (DoPmin = 4)");
      AllOk &= checkShape(
          MeanWqtH < std::min(MeanSeq, MeanPar) * 1.1,
          "bzip: WQT-H stays competitive with the best static");
    }
    std::printf("\n");
  }
  return AllOk ? 0 : 1;
}

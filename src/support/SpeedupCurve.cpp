//===- support/SpeedupCurve.cpp - Parallel scalability models ------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/SpeedupCurve.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dope;

SpeedupCurve::SpeedupCurve(double Alpha, double FixedCost, double Cap)
    : Alpha(Alpha), FixedCost(FixedCost), Cap(Cap) {
  assert(Alpha >= 0.0 && "negative per-thread overhead");
  assert(FixedCost >= 0.0 && "negative fixed cost");
  assert(Cap > 0.0 && "cap must be positive");
}

double SpeedupCurve::speedup(unsigned M) const {
  assert(M >= 1 && "extent must be positive");
  if (M == 1)
    return 1.0;
  const double Raw = static_cast<double>(M) /
                     (1.0 + FixedCost + Alpha * static_cast<double>(M - 1));
  return std::min(Cap, Raw);
}

double SpeedupCurve::efficiency(unsigned M) const {
  return speedup(M) / static_cast<double>(M);
}

unsigned SpeedupCurve::mmax(double Threshold, unsigned Limit) const {
  assert(Threshold > 0.0 && Threshold <= 1.0 && "threshold is a ratio");
  unsigned Best = 1;
  for (unsigned M = 2; M <= Limit; ++M)
    if (efficiency(M) >= Threshold)
      Best = M;
  return Best;
}

unsigned SpeedupCurve::dopMin(unsigned Limit) const {
  for (unsigned M = 1; M <= Limit; ++M)
    if (speedup(M) > 1.0 && M > 1)
      return M;
  return 0;
}

unsigned SpeedupCurve::bestExtent(unsigned Limit) const {
  unsigned Best = 1;
  double BestSpeedup = 1.0;
  for (unsigned M = 2; M <= Limit; ++M) {
    const double S = speedup(M);
    if (S > BestSpeedup) {
      Best = M;
      BestSpeedup = S;
    }
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Fitting
//===----------------------------------------------------------------------===//

namespace {

/// Sum of squared residuals of Rate_i ~ Base * S_{Alpha,Fixed}(Extent_i)
/// with Base solved in closed form: for fixed curve shape the model is
/// linear in Base, so Base* = sum(r_i s_i) / sum(s_i^2).
double residual(const std::vector<SpeedupSample> &Samples, double Alpha,
                double Fixed, double *BaseOut) {
  double Rs = 0.0, Ss = 0.0;
  const SpeedupCurve C(Alpha, Fixed);
  for (const SpeedupSample &P : Samples) {
    const double S = C.speedup(P.Extent);
    Rs += P.Rate * S;
    Ss += S * S;
  }
  const double Base = Ss > 0.0 ? Rs / Ss : 0.0;
  double Err = 0.0;
  for (const SpeedupSample &P : Samples) {
    const double D = P.Rate - Base * C.speedup(P.Extent);
    Err += D * D;
  }
  if (BaseOut)
    *BaseOut = Base;
  return Err;
}

} // namespace

SpeedupCurveFit
dope::fitSpeedupCurve(const std::vector<SpeedupSample> &Samples) {
  SpeedupCurveFit Fit;

  std::vector<SpeedupSample> Usable;
  for (const SpeedupSample &P : Samples)
    if (P.Extent >= 1 && P.Rate > 0.0)
      Usable.push_back(P);
  Fit.SampleCount = Usable.size();

  bool TwoExtents = false;
  for (const SpeedupSample &P : Usable)
    TwoExtents |= P.Extent != Usable.front().Extent;
  if (Usable.size() < 2 || !TwoExtents)
    return Fit; // BaseRate = 0: "no history"

  // Coarse grid, then adaptive refinement around the incumbent. The
  // residual surface has a long, nearly flat valley (Base and Fixed
  // trade off against each other for all extents but 1), so refinement
  // keeps the span while it is still improving — crawling along the
  // valley — and only zooms once a span stops paying. Ties resolve to
  // the smallest (Alpha, Fixed) visited first, keeping the fit
  // deterministic.
  double BestAlpha = 0.0, BestFixed = 0.0, BestBase = 0.0;
  double BestErr = std::numeric_limits<double>::infinity();
  auto Search = [&](double AlphaLo, double AlphaHi, double FixedLo,
                    double FixedHi, unsigned Points) {
    const double AlphaStep = (AlphaHi - AlphaLo) / (Points - 1);
    const double FixedStep = (FixedHi - FixedLo) / (Points - 1);
    for (unsigned I = 0; I != Points; ++I) {
      for (unsigned J = 0; J != Points; ++J) {
        const double Alpha = AlphaLo + AlphaStep * I;
        const double Fixed = FixedLo + FixedStep * J;
        double Base = 0.0;
        const double Err = residual(Usable, Alpha, Fixed, &Base);
        if (Err < BestErr) {
          BestErr = Err;
          BestAlpha = Alpha;
          BestFixed = Fixed;
          BestBase = Base;
        }
      }
    }
  };

  Search(0.0, 1.0, 0.0, 2.0, 21);
  double AlphaSpan = 0.05, FixedSpan = 0.1;
  for (int Pass = 0; Pass != 12 && AlphaSpan > 1e-5; ++Pass) {
    const double PrevErr = BestErr;
    Search(std::max(0.0, BestAlpha - AlphaSpan), BestAlpha + AlphaSpan,
           std::max(0.0, BestFixed - FixedSpan), BestFixed + FixedSpan, 11);
    if (BestErr < PrevErr * (1.0 - 1e-9))
      continue; // still descending at this scale: crawl, don't zoom
    AlphaSpan *= 0.25;
    FixedSpan *= 0.25;
  }

  Fit.Curve = SpeedupCurve(BestAlpha, BestFixed);
  Fit.BaseRate = BestBase;
  Fit.Rmse = std::sqrt(BestErr / static_cast<double>(Usable.size()));
  return Fit;
}

//===- mechanisms/Proportional.cpp - Exec-time-proportional DoP ------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Proportional.h"

#include "support/MathUtils.h"

#include <cassert>

using namespace dope;

std::vector<TaskConfig>
ProportionalMechanism::assignRegion(const ParDescriptor &Region,
                                    const RegionSnapshot &Snap,
                                    const std::vector<TaskConfig> &Current,
                                    unsigned Budget) const {
  const size_t N = Region.size();
  assert(Current.size() == N && "config arity mismatch");

  // Step 1-2 of Fig. 10: normalize execution times into a share of the
  // budget. Unmeasured tasks weigh as the average (weight 0 handled by
  // proportionalSplit's even fallback).
  std::vector<double> Weights(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    if (I < Snap.Tasks.size())
      Weights[I] = Snap.Tasks[I].ExecTime;

  std::vector<unsigned> Shares =
      proportionalSplit(Budget >= static_cast<unsigned>(N)
                            ? Budget
                            : static_cast<unsigned>(N),
                        Weights, 1);

  std::vector<TaskConfig> Result;
  for (size_t I = 0; I != N; ++I) {
    const Task *T = Region.tasks()[I];
    TaskConfig TC;
    const unsigned Share = std::max(1u, Shares[I]);

    const int Alt = Current[I].AltIndex;
    if (Alt >= 0 && T->hasInner()) {
      // The task's share flows into its inner loop ("recurse if
      // needed"); the replica itself hosts the inner master.
      TC.Extent = 1;
      TC.AltIndex = Alt;
      const ParDescriptor *Inner =
          T->descriptor()->alternative(static_cast<size_t>(Alt));
      const RegionSnapshot *InnerSnap =
          I < Snap.Tasks.size() &&
                  static_cast<size_t>(Alt) <
                      Snap.Tasks[I].InnerAlternatives.size()
              ? &Snap.Tasks[I].InnerAlternatives[Alt]
              : nullptr;
      static const RegionSnapshot Empty;
      TC.Inner = assignRegion(*Inner, InnerSnap ? *InnerSnap : Empty,
                              Current[I].Inner, Share);
    } else {
      TC.Extent = T->kind() == TaskKind::Parallel ? Share : 1;
    }
    Result.push_back(std::move(TC));
  }
  return Result;
}

std::optional<RegionConfig>
ProportionalMechanism::reconfigure(const ParDescriptor &Region,
                                   const RegionSnapshot &Root,
                                   const RegionConfig &Current,
                                   const MechanismContext &Ctx) {
  // Warm-up: wait until at least the master task has measurements.
  if (Root.Tasks.empty() || Root.Tasks.front().Invocations == 0)
    return std::nullopt;
  RegionConfig Config;
  Config.Tasks = assignRegion(Region, Root, Current.Tasks, Ctx.effectiveThreads());
  return Config;
}

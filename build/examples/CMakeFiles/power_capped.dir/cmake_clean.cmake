file(REMOVE_RECURSE
  "CMakeFiles/power_capped.dir/power_capped.cpp.o"
  "CMakeFiles/power_capped.dir/power_capped.cpp.o.d"
  "power_capped"
  "power_capped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_capped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- examples/batch_search.cpp - Ferret-like pipeline under TBF ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ferret-style image-search pipeline on the real DoPE run-time: a
/// batch of queries flows through load -> extract -> rank -> out stages
/// connected by work queues. The pipeline and a *fused* variant (one
/// task performing extract+rank back-to-back, communicating through the
/// stack instead of queues) are both registered as descriptor
/// alternatives — exactly how the paper's TBF consumes
/// application-exposed fused tasks (Sec. 7.2).
///
/// The administrator's goal is maximum throughput; DoPE's default
/// mechanism for that goal (TBF) balances and, when stage imbalance
/// crosses the threshold, fuses.
///
//===----------------------------------------------------------------------===//

#include "apps/NativeKernels.h"
#include "core/Clock.h"
#include "core/Dope.h"
#include "mechanisms/Goal.h"
#include "queue/WorkQueue.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>

using namespace dope;

namespace {

constexpr uint64_t NumQueries = 4000;
// Deliberately imbalanced stage weights (extract dominates).
constexpr uint64_t LoadWork = 4000;
constexpr uint64_t ExtractWork = 120000;
constexpr uint64_t RankWork = 30000;

struct Query {
  uint64_t Id = 0;
  uint64_t Feature = 0;
  uint64_t Score = 0;
};

uint64_t expectedResult(uint64_t Id) {
  const uint64_t Feature = hashWork(Id, LoadWork);
  const uint64_t Score = hashWork(Feature, ExtractWork);
  return hashWork(Score, RankWork);
}

} // namespace

int main() {
  WorkQueue<uint64_t> Input;
  for (uint64_t I = 0; I != NumQueries; ++I)
    Input.push(I);
  Input.close();

  WorkQueue<Query> Q1; // load -> extract (unfused) or load -> fused
  WorkQueue<Query> Q2; // extract -> rank
  WorkQueue<Query> Q3; // rank -> out / fused -> out

  std::mutex ResultsMutex;
  std::set<uint64_t> Done;
  std::atomic<uint64_t> ResultDigest{0};

  TaskGraph Graph;

  TaskFn LoadFn_ = [&](TaskRuntime &RT) {
    if (RT.begin() == TaskStatus::Suspended)
      return TaskStatus::Suspended; // the FiniCB closes Q1 downstream
    std::optional<uint64_t> Id = Input.waitAndPop();
    if (!Id)
      return TaskStatus::Finished;
    Query Q;
    Q.Id = *Id;
    Q.Feature = hashWork(*Id, LoadWork);
    Q1.push(Q);
    (void)RT.end();
    return TaskStatus::Executing;
  };
  TaskFn ExtractFn = [&](TaskRuntime &RT) {
    std::optional<Query> Q = Q1.waitAndPop();
    if (!Q)
      return TaskStatus::Finished; // FiniCB closes Q2
    (void)RT.begin();
    Q->Score = hashWork(Q->Feature, ExtractWork);
    (void)RT.end();
    Q2.push(*Q);
    return TaskStatus::Executing;
  };
  TaskFn RankFn = [&](TaskRuntime &RT) {
    std::optional<Query> Q = Q2.waitAndPop();
    if (!Q)
      return TaskStatus::Finished; // FiniCB closes Q3
    (void)RT.begin();
    Q->Score = hashWork(Q->Score, RankWork);
    (void)RT.end();
    Q3.push(*Q);
    return TaskStatus::Executing;
  };
  // Fused variant: extract + rank in one task, no intermediate queue —
  // "unidirectional inter-task communication changed to method-argument
  // communication via the stack" (Sec. 7.2).
  TaskFn FusedFn = [&](TaskRuntime &RT) {
    std::optional<Query> Q = Q1.waitAndPop();
    if (!Q)
      return TaskStatus::Finished; // FiniCB closes Q3
    (void)RT.begin();
    Q->Score = hashWork(hashWork(Q->Feature, ExtractWork), RankWork);
    (void)RT.end();
    Q3.push(*Q);
    return TaskStatus::Executing;
  };
  TaskFn OutFn = [&](TaskRuntime &RT) {
    std::optional<Query> Q = Q3.waitAndPop();
    if (!Q)
      return TaskStatus::Finished;
    (void)RT.begin(); // every stage is monitored, like the paper's Write
    ResultDigest.fetch_add(Q->Score, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(ResultsMutex);
      Done.insert(Q->Id);
    }
    (void)RT.end();
    return TaskStatus::Executing;
  };

  auto QueueLoad = [](WorkQueue<Query> &Q) {
    return [&Q] { return static_cast<double>(Q.size()); };
  };

  // InitCBs reopen each task's output queue when a parallel region is
  // (re)entered after a reconfiguration; the suspension path closed them
  // to drain the pipeline.
  Task *Load = Graph.createTask("load", LoadFn_, LoadFn(),
                                Graph.seqDescriptor(),
                                /*Init=*/[&] { Q1.reopen(); },
                                /*Fini=*/[&] { Q1.close(); });
  Task *Extract = Graph.createTask("extract", ExtractFn, QueueLoad(Q1),
                                   Graph.parDescriptor(),
                                   /*Init=*/[&] { Q2.reopen(); },
                                   /*Fini=*/[&] { Q2.close(); });
  Task *Rank = Graph.createTask("rank", RankFn, QueueLoad(Q2),
                                Graph.parDescriptor(),
                                /*Init=*/[&] { Q3.reopen(); },
                                /*Fini=*/[&] { Q3.close(); });
  Task *Out = Graph.createTask("out", OutFn, QueueLoad(Q3),
                               Graph.seqDescriptor());
  ParDescriptor *Pipeline = Graph.createRegion({Load, Extract, Rank, Out});

  Task *LoadF = Graph.createTask("load", LoadFn_, LoadFn(),
                                 Graph.seqDescriptor(),
                                 /*Init=*/[&] { Q1.reopen(); },
                                 /*Fini=*/[&] { Q1.close(); });
  Task *Fused = Graph.createTask("extract+rank", FusedFn, QueueLoad(Q1),
                                 Graph.parDescriptor(),
                                 /*Init=*/[&] { Q3.reopen(); },
                                 /*Fini=*/[&] { Q3.close(); });
  Task *OutF = Graph.createTask("out", OutFn, QueueLoad(Q3),
                                Graph.seqDescriptor());
  ParDescriptor *FusedPipeline = Graph.createRegion({LoadF, Fused, OutF});

  // Driver task: runs the selected pipeline alternative once.
  TaskFn DriverFn = [&](TaskRuntime &RT) {
    const TaskStatus Inner = RT.wait();
    return Inner == TaskStatus::Suspended ? TaskStatus::Suspended
                                          : TaskStatus::Finished;
  };
  Task *Driver = Graph.createTask(
      "search", DriverFn, LoadFn(),
      Graph.createDescriptor(TaskKind::Sequential,
                             {Pipeline, FusedPipeline}));
  ParDescriptor *Root = Graph.createRegion({Driver});

  // Administrator: "maximize throughput with 4 threads" — the default
  // mechanism for that goal is TBF.
  PerformanceGoal Goal;
  Goal.Obj = Objective::MaxThroughput;
  Goal.MaxThreads = 4;

  DopeOptions Opts;
  Opts.MaxThreads = Goal.MaxThreads;
  Opts.MonitorIntervalSeconds = 0.01;
  Opts.MinReconfigIntervalSeconds = 0.05;
  Opts.Mech = makeDefaultMechanism(Goal);

  const double Start = monotonicSeconds();
  std::unique_ptr<Dope> Executive = Dope::create(Root, std::move(Opts));
  Executive->wait();
  const double Elapsed = monotonicSeconds() - Start;

  uint64_t Expected = 0;
  for (uint64_t I = 0; I != NumQueries; ++I)
    Expected += expectedResult(I);

  const bool Correct =
      Done.size() == NumQueries && ResultDigest.load() == Expected;
  std::printf("batch_search: %zu/%llu queries, digest %s, %.2f "
              "queries/s\n",
              Done.size(), static_cast<unsigned long long>(NumQueries),
              Correct ? "verified" : "MISMATCH",
              static_cast<double>(Done.size()) / Elapsed);
  std::printf("  reconfigurations: %llu, final configuration: %s\n",
              static_cast<unsigned long long>(
                  Executive->reconfigurationCount()),
              toString(*Root, Executive->currentConfig()).c_str());
  return Correct ? 0 : 1;
}

//===- tests/ServerNestTest.cpp - Server nest helper tests ------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/ServerNest.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

TEST(ServerNest, DetectsShape) {
  ServerNestGraph G = makeServerNestGraph();
  EXPECT_TRUE(isServerNest(*G.Root));

  PipelineGraph Flat = makePipelineGraph({{"a", true}, {"b", true}});
  // A driver-wrapped pipeline *is* a server nest shape (single task with
  // inner alternatives); a multi-task root region is not.
  EXPECT_TRUE(isServerNest(*Flat.Root));
  const ParDescriptor *Stages = Flat.Driver->descriptor()->alternative(0);
  EXPECT_FALSE(isServerNest(*Stages));
}

TEST(ServerNest, SequentialInnerDisablesAlternative) {
  ServerNestGraph G = makeServerNestGraph();
  const RegionConfig Config = makeServerConfig(*G.Root, 24, 1);
  ASSERT_EQ(Config.Tasks.size(), 1u);
  EXPECT_EQ(Config.Tasks[0].Extent, 24u);
  EXPECT_EQ(Config.Tasks[0].AltIndex, -1);
  EXPECT_TRUE(Config.Tasks[0].Inner.empty());
  EXPECT_EQ(serverInnerExtent(Config), 1u);
  EXPECT_EQ(serverOuterExtent(Config), 24u);
}

TEST(ServerNest, ParallelInnerActivatesAlternative) {
  ServerNestGraph G = makeServerNestGraph();
  const RegionConfig Config = makeServerConfig(*G.Root, 3, 8);
  EXPECT_EQ(Config.Tasks[0].Extent, 3u);
  EXPECT_EQ(Config.Tasks[0].AltIndex, 0);
  ASSERT_EQ(Config.Tasks[0].Inner.size(), 1u);
  EXPECT_EQ(Config.Tasks[0].Inner[0].Extent, 8u);
  EXPECT_EQ(serverInnerExtent(Config), 8u);
  EXPECT_EQ(totalThreads(*G.Root, Config), 24u);
}

TEST(ServerNest, InnerPipelineDistribution) {
  // Inner region read(SEQ) -> transform(PAR) -> write(SEQ): an inner
  // extent of 8 gives the sequential stages one thread each and the
  // parallel stage the remaining six.
  TaskGraph Graph;
  TaskFn Dummy = dummyFn();
  Task *Read = Graph.createTask("read", Dummy, {}, Graph.seqDescriptor());
  Task *Transform =
      Graph.createTask("transform", Dummy, {}, Graph.parDescriptor());
  Task *Write = Graph.createTask("write", Dummy, {}, Graph.seqDescriptor());
  ParDescriptor *Inner = Graph.createRegion({Read, Transform, Write});
  Task *Outer = Graph.createTask(
      "transcode", Dummy, {},
      Graph.createDescriptor(TaskKind::Parallel, {Inner}));
  ParDescriptor *Root = Graph.createRegion({Outer});

  const RegionConfig Config = makeServerConfig(*Root, 3, 8);
  ASSERT_EQ(Config.Tasks[0].Inner.size(), 3u);
  EXPECT_EQ(Config.Tasks[0].Inner[0].Extent, 1u);
  EXPECT_EQ(Config.Tasks[0].Inner[1].Extent, 6u);
  EXPECT_EQ(Config.Tasks[0].Inner[2].Extent, 1u);
  EXPECT_EQ(serverInnerExtent(Config), 8u);
  EXPECT_EQ(totalThreads(*Root, Config), 24u);

  std::string Error;
  EXPECT_TRUE(validateConfig(*Root, Config, &Error)) << Error;
}

TEST(ServerNest, TinyInnerBudgetStillValid) {
  TaskGraph Graph;
  TaskFn Dummy = dummyFn();
  Task *A = Graph.createTask("a", Dummy, {}, Graph.seqDescriptor());
  Task *B = Graph.createTask("b", Dummy, {}, Graph.parDescriptor());
  ParDescriptor *Inner = Graph.createRegion({A, B});
  Task *Outer = Graph.createTask(
      "outer", Dummy, {},
      Graph.createDescriptor(TaskKind::Parallel, {Inner}));
  ParDescriptor *Root = Graph.createRegion({Outer});

  // Inner extent 2 with one seq and one par stage: both get one thread.
  const RegionConfig Config = makeServerConfig(*Root, 12, 2);
  EXPECT_EQ(Config.Tasks[0].Inner[0].Extent, 1u);
  EXPECT_EQ(Config.Tasks[0].Inner[1].Extent, 1u);
  std::string Error;
  EXPECT_TRUE(validateConfig(*Root, Config, &Error)) << Error;
}

TEST(ServerNest, OuterExtentFor) {
  EXPECT_EQ(outerExtentFor(24, 1), 24u);
  EXPECT_EQ(outerExtentFor(24, 8), 3u);
  EXPECT_EQ(outerExtentFor(24, 5), 4u);
  EXPECT_EQ(outerExtentFor(24, 48), 1u); // never zero
}

} // namespace

file(REMOVE_RECURSE
  "CMakeFiles/dope_core.dir/Config.cpp.o"
  "CMakeFiles/dope_core.dir/Config.cpp.o.d"
  "CMakeFiles/dope_core.dir/Dope.cpp.o"
  "CMakeFiles/dope_core.dir/Dope.cpp.o.d"
  "CMakeFiles/dope_core.dir/FeatureRegistry.cpp.o"
  "CMakeFiles/dope_core.dir/FeatureRegistry.cpp.o.d"
  "CMakeFiles/dope_core.dir/Placement.cpp.o"
  "CMakeFiles/dope_core.dir/Placement.cpp.o.d"
  "CMakeFiles/dope_core.dir/Task.cpp.o"
  "CMakeFiles/dope_core.dir/Task.cpp.o.d"
  "CMakeFiles/dope_core.dir/ThreadPool.cpp.o"
  "CMakeFiles/dope_core.dir/ThreadPool.cpp.o.d"
  "CMakeFiles/dope_core.dir/Types.cpp.o"
  "CMakeFiles/dope_core.dir/Types.cpp.o.d"
  "libdope_core.a"
  "libdope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- tests/EventQueueWheelTest.cpp - Wheel vs reference heap -------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential property tests for the timing-wheel EventQueue against
/// ReferenceEventQueue (the pre-wheel binary heap, kept verbatim as the
/// oracle). Both are driven through identical randomized scripts of
/// schedule/cancel/run interleavings; the dispatch logs — (label, time)
/// pairs in firing order — must match exactly, which pins down the
/// contract the simulators and golden traces depend on: time order with
/// FIFO tie-break, cancellation as a precise no-op on fired/stale ids,
/// and identical behavior across near, wheel, and overflow horizons.
///
//===----------------------------------------------------------------------===//

#include "sim/EventQueue.h"
#include "sim/ReferenceEventQueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <type_traits>
#include <utility>
#include <vector>

using namespace dope;

namespace {

using DispatchLog = std::vector<std::pair<int, double>>;

/// Runs a deterministic schedule/cancel/run script derived from \p Seed.
/// Every RNG draw depends only on script position, never on queue state,
/// so both implementations observe byte-identical call sequences.
template <typename QueueT> DispatchLog runScript(uint64_t Seed) {
  QueueT Q;
  std::mt19937_64 Rng(Seed);
  std::vector<uint64_t> Ids; // includes fired/cancelled (stale) ids
  DispatchLog Log;
  int NextLabel = 0;

  for (int Round = 0; Round != 400; ++Round) {
    const uint64_t Op = Rng() % 10;
    if (Op < 5) {
      const unsigned Burst = 1 + static_cast<unsigned>(Rng() % 4);
      for (unsigned I = 0; I != Burst; ++I) {
        double Delay = 0.0;
        switch (Rng() % 6) {
        case 0:
          Delay = 0.0; // same-instant: exercises the FIFO tie-break
          break;
        case 1:
          Delay = static_cast<double>(Rng() % 1000) * 1e-6; // sub-tick
          break;
        case 2:
          Delay = static_cast<double>(Rng() % 1000) * 1e-3; // levels 0-1
          break;
        case 3:
          Delay = static_cast<double>(1 + Rng() % 100); // levels 1-2
          break;
        case 4:
          Delay = 3600.0 + static_cast<double>(Rng() % 10000); // level 3
          break;
        case 5:
          // Beyond the 2^24-tick wheel horizon: overflow heap.
          Delay = 20000.0 + static_cast<double>(Rng() % 3) * 10000.0;
          break;
        }
        const int Label = NextLabel++;
        Ids.push_back(Q.scheduleAfter(
            Delay, [&Log, &Q, Label] { Log.emplace_back(Label, Q.now()); }));
      }
    } else if (Op < 8 && !Ids.empty()) {
      // Cancel by position: the same logical event in both queues, and
      // often one that already fired or was already cancelled — both
      // implementations must treat that as a precise no-op.
      Q.cancel(Ids[Rng() % Ids.size()]);
    } else {
      const double Window =
          static_cast<double>(Rng() % 2000) * 1e-3 *
          static_cast<double>(1 + Rng() % 50);
      Q.runUntil(Q.now() + Window);
    }
  }
  Q.runUntil(1e9); // drain everything, overflow horizons included
  // Only the wheel guarantees live-count accuracy here: the reference
  // keeps the pre-wheel quirk where cancelling an already-fired id
  // spuriously decrements its live counter (generation tags are exactly
  // what fixed this). Dispatch order — what the goldens depend on — is
  // compared for both.
  if constexpr (std::is_same_v<QueueT, EventQueue>) {
    EXPECT_TRUE(Q.empty());
    EXPECT_EQ(Q.pendingEvents(), 0u);
  }
  return Log;
}

TEST(EventQueueWheel, MatchesReferenceAcrossSeeds) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    const DispatchLog Wheel = runScript<EventQueue>(Seed);
    const DispatchLog Heap = runScript<ReferenceEventQueue>(Seed);
    ASSERT_EQ(Wheel.size(), Heap.size()) << "seed " << Seed;
    for (size_t I = 0; I != Wheel.size(); ++I) {
      EXPECT_EQ(Wheel[I].first, Heap[I].first)
          << "seed " << Seed << " position " << I;
      EXPECT_DOUBLE_EQ(Wheel[I].second, Heap[I].second)
          << "seed " << Seed << " position " << I;
    }
  }
}

TEST(EventQueueWheel, ScriptIsDeterministic) {
  EXPECT_EQ(runScript<EventQueue>(7), runScript<EventQueue>(7));
}

TEST(EventQueueWheel, SameTickEventsFireInStableTimeOrder) {
  // Many events inside one tick (delays below the 2^-10 s quantum) with
  // repeated exact times: dispatch must be the stable sort of the
  // schedule sequence by time (FIFO tie-break).
  EventQueue Q;
  std::vector<int> Order;
  std::vector<std::pair<double, int>> Scheduled;
  for (int I = 0; I != 100; ++I) {
    const double Delay = 0.0004 + 1e-7 * static_cast<double>(I % 3);
    Scheduled.emplace_back(Delay, I);
    Q.scheduleAfter(Delay, [&Order, I] { Order.push_back(I); });
  }
  Q.runUntil(1.0);
  ASSERT_EQ(Order.size(), 100u);
  std::stable_sort(
      Scheduled.begin(), Scheduled.end(),
      [](const auto &A, const auto &B) { return A.first < B.first; });
  for (size_t I = 0; I != Scheduled.size(); ++I)
    EXPECT_EQ(Order[I], Scheduled[I].second) << "position " << I;
}

TEST(EventQueueWheel, FarFutureOverflowMigratesInward) {
  EventQueue Q;
  std::vector<int> Order;
  Q.scheduleAt(50000.0, [&Order] { Order.push_back(2); }); // overflow
  Q.scheduleAt(0.5, [&Order] { Order.push_back(0); });     // wheel
  Q.scheduleAt(40000.0, [&Order] { Order.push_back(1); }); // overflow
  Q.runUntil(60000.0);
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(Q.empty());
}

TEST(EventQueueWheel, CancelAfterFireIsNoopOnRecycledNode) {
  // After an event fires, its slab node is recycled; the stale id's
  // generation no longer matches, so cancelling it must not disturb the
  // node's new occupant.
  EventQueue Q;
  bool FiredA = false, FiredB = false;
  const EventId A = Q.scheduleAfter(0.1, [&FiredA] { FiredA = true; });
  Q.runUntil(1.0);
  EXPECT_TRUE(FiredA);
  const EventId B = Q.scheduleAfter(0.1, [&FiredB] { FiredB = true; });
  Q.cancel(A); // stale: must not cancel B even if it reuses A's node
  Q.runUntil(2.0);
  EXPECT_TRUE(FiredB);
  (void)B;
}

TEST(EventQueueWheel, CancelledOverflowEventReclaimed) {
  EventQueue Q;
  const EventId Far = Q.scheduleAfter(30000.0, [] { FAIL(); });
  EXPECT_EQ(Q.pendingEvents(), 1u);
  Q.cancel(Far);
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.runUntil(40000.0), 0u);
}

/// The wheel horizon in seconds: 2^24 ticks at 1024 ticks/second. Events
/// past now + Horizon live in the overflow heap until the wheel turns
/// far enough to admit them.
constexpr double HorizonSeconds = 16777216.0 / 1024.0; // 16384 s

/// Differential script that *crosses* the overflow horizon: clusters of
/// events straddle now + Horizon at schedule time, then time advances in
/// windows that carry the horizon past each cluster, so events migrate
/// from the overflow heap into the wheel mid-run. Firing callbacks
/// schedule again near the (moved) horizon, exercising admission from a
/// non-zero wheel position.
template <typename QueueT> DispatchLog runHorizonCrossingScript() {
  QueueT Q;
  DispatchLog Log;
  int NextLabel = 0;
  auto note = [&Log, &Q](int Label) { Log.emplace_back(Label, Q.now()); };

  // Straddle the horizon as seen from t=0: one tick short of it, exactly
  // at it, one tick past it, and deep into overflow territory.
  const double Tick = 1.0 / 1024.0;
  for (const double At :
       {HorizonSeconds - Tick, HorizonSeconds, HorizonSeconds + Tick,
        2.0 * HorizonSeconds, 3.0 * HorizonSeconds + 0.25}) {
    const int Label = NextLabel++;
    Q.scheduleAt(At, [&, Label] {
      note(Label);
      // Reschedule relative to the new now: this target is again just
      // beyond the current horizon, so it must take the overflow path
      // even though the wheel has rotated.
      const int Again = 100 + Label;
      Q.scheduleAfter(HorizonSeconds + Tick, [&note, Again] { note(Again); });
    });
  }
  // Advance in windows that each cross one cluster's admission boundary.
  for (int Step = 1; Step <= 10; ++Step)
    Q.runUntil(static_cast<double>(Step) * 0.45 * HorizonSeconds);
  Q.runUntil(1e9);
  return Log;
}

TEST(EventQueueWheel, DifferentialDispatchAcrossOverflowHorizon) {
  const DispatchLog Wheel = runHorizonCrossingScript<EventQueue>();
  const DispatchLog Heap = runHorizonCrossingScript<ReferenceEventQueue>();
  ASSERT_EQ(Wheel.size(), 10u);
  ASSERT_EQ(Wheel.size(), Heap.size());
  for (size_t I = 0; I != Wheel.size(); ++I) {
    EXPECT_EQ(Wheel[I].first, Heap[I].first) << "position " << I;
    EXPECT_DOUBLE_EQ(Wheel[I].second, Heap[I].second) << "position " << I;
  }
}

/// Differential cancellation around the horizon: events scheduled into
/// the overflow heap are cancelled (a) while still in the heap, (b)
/// after time has advanced enough that the survivor set migrated into
/// the wheel — the stale ids must stay precise no-ops in both
/// implementations and the survivors must fire identically.
template <typename QueueT> DispatchLog runHorizonCancelScript() {
  QueueT Q;
  DispatchLog Log;
  std::vector<uint64_t> Ids;
  for (int I = 0; I != 12; ++I) {
    const double At = HorizonSeconds + 100.0 * static_cast<double>(I + 1);
    Ids.push_back(Q.scheduleAt(
        At, [&Log, &Q, I] { Log.emplace_back(I, Q.now()); }));
  }
  // (a) Cancel every third event while it still sits in overflow.
  for (size_t I = 0; I < Ids.size(); I += 3)
    Q.cancel(Ids[I]);
  // Advance past the horizon so the survivors migrate into the wheel,
  // but stop short of the first firing time.
  Q.runUntil(HorizonSeconds + 50.0);
  // (b) Cancel every fourth event post-migration, plus re-cancel an
  // already-cancelled id (stale: must be a no-op, not a crash or a
  // cancellation of a recycled node).
  for (size_t I = 0; I < Ids.size(); I += 4)
    Q.cancel(Ids[I]);
  Q.cancel(Ids[0]);
  Q.runUntil(1e9);
  return Log;
}

TEST(EventQueueWheel, DifferentialCancelWithinOverflowHorizon) {
  const DispatchLog Wheel = runHorizonCancelScript<EventQueue>();
  const DispatchLog Heap = runHorizonCancelScript<ReferenceEventQueue>();
  ASSERT_EQ(Wheel, Heap);
  // Survivors: indices not divisible by 3 or 4.
  std::vector<int> Fired;
  for (const auto &[Label, Time] : Wheel)
    Fired.push_back(Label);
  EXPECT_EQ(Fired, (std::vector<int>{1, 2, 5, 7, 10, 11}));
}

TEST(EventQueueWheel, HeavyChurnStaysConsistent) {
  // Self-rescheduling load with periodic cancellation: pendingEvents()
  // must drop to zero once the churn stops rescheduling.
  EventQueue Q;
  int Budget = 20000;
  std::mt19937_64 Rng(99);
  struct Actor {
    EventQueue &Q;
    int &Budget;
    std::mt19937_64 &Rng;
    void fire() {
      if (--Budget <= 0)
        return;
      const double Delay = 1e-4 * static_cast<double>(1 + Rng() % 5000);
      Actor Self{Q, Budget, Rng};
      Q.scheduleAfter(Delay, [Self]() mutable { Self.fire(); });
    }
  };
  for (int I = 0; I != 16; ++I) {
    Actor A{Q, Budget, Rng};
    Q.scheduleAfter(1e-3 * I, [A]() mutable { A.fire(); });
  }
  Q.runUntil(1e9);
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.pendingEvents(), 0u);
  EXPECT_LE(Budget, 0);
}

} // namespace

//===- analysis/WhatIf.cpp - What-if projection and recommendation ---------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/WhatIf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

using namespace dope;

WhatIfModel WhatIfModel::fromProfile(const CriticalPathProfile &Profile,
                                     unsigned Contexts, double OversubPenalty,
                                     double ThreadOverheadPenalty) {
  WhatIfModel Model;
  Model.Contexts = Contexts;
  Model.OversubPenalty = OversubPenalty;
  Model.ThreadOverheadPenalty = ThreadOverheadPenalty;
  for (const StageProfile &SP : Profile.Stages) {
    Model.Stages.push_back(SP.Task);
    Model.ServiceSeconds.push_back(SP.MeanExecSeconds);
    // Causal inference from the trace alone: a stage is treated as
    // parallelizable only if it was ever *observed* running two
    // instances at once. A stage that never overlapped may simply be
    // sequential, and a what-if must not promise speedup it cannot
    // defend from the evidence.
    Model.Parallel.push_back(SP.MaxConcurrent > 1);
    Model.BaselineExtents.push_back(std::max(1u, SP.MaxConcurrent));
  }
  return Model;
}

WhatIfModel WhatIfModel::fromApp(const PipelineAppModel &App,
                                 unsigned Contexts,
                                 std::vector<unsigned> BaselineExtents) {
  WhatIfModel Model;
  Model.Contexts = Contexts;
  Model.OversubPenalty = App.OversubPenalty;
  Model.ThreadOverheadPenalty = App.ThreadOverheadPenalty;
  for (const PipelineStageSpec &Spec : App.Stages) {
    Model.Stages.push_back(Spec.Name);
    Model.ServiceSeconds.push_back(Spec.ServiceSeconds);
    Model.Parallel.push_back(Spec.Parallel);
  }
  if (BaselineExtents.empty())
    BaselineExtents.assign(App.Stages.size(), 1);
  Model.BaselineExtents = std::move(BaselineExtents);
  return Model;
}

double
WhatIfModel::projectThroughput(const std::vector<unsigned> &Extents) const {
  assert(Extents.size() == ServiceSeconds.size() && "extent arity mismatch");
  const double C = static_cast<double>(Contexts);

  // The simulator pins sequential stages to one context no matter what
  // the config says; the projection must mirror that or it predicts
  // speedup the sim will never grant.
  auto Eff = [&](size_t I) {
    return Parallel[I] ? Extents[I] : std::min(Extents[I], 1u);
  };

  // Same damped fixed point as PipelineSim::analyticThroughput: the
  // footprint penalty depends on created threads, the contention penalty
  // on busy threads, and only the bottleneck keeps all its threads busy
  // in steady state. The solver must match the simulator term for term —
  // the validation bound is only meaningful if prediction error measures
  // model error, not solver divergence.
  double TotalThreads = 0.0;
  for (size_t I = 0; I != Extents.size(); ++I)
    TotalThreads += Eff(I);
  const double Footprint =
      1.0 / (1.0 + ThreadOverheadPenalty *
                       std::max(0.0, TotalThreads / C - 1.0));

  size_t Bottleneck = 0;
  for (size_t I = 1; I != ServiceSeconds.size(); ++I) {
    if (ServiceSeconds[I] / Eff(I) >
        ServiceSeconds[Bottleneck] / Eff(Bottleneck))
      Bottleneck = I;
  }
  if (ServiceSeconds[Bottleneck] <= 0.0)
    return 0.0;

  double Rate = Footprint;
  for (int Iteration = 0; Iteration != 100; ++Iteration) {
    const double T = static_cast<double>(Eff(Bottleneck)) /
                     ServiceSeconds[Bottleneck] * Rate;
    double Busy = 0.0;
    for (size_t I = 0; I != ServiceSeconds.size(); ++I)
      Busy += std::min(static_cast<double>(Eff(I)),
                       T * ServiceSeconds[I] / std::max(Rate, 1e-12));
    const double CEff =
        C / (1.0 + OversubPenalty * std::max(0.0, Busy / C - 1.0));
    const double Next = Footprint * std::min(1.0, CEff / Busy);
    Rate = 0.5 * Rate + 0.5 * Next;
  }
  return static_cast<double>(Eff(Bottleneck)) /
         ServiceSeconds[Bottleneck] * Rate;
}

double WhatIfModel::baselineThroughput() const {
  return projectThroughput(BaselineExtents);
}

static std::string describeChange(const WhatIfModel &Model,
                                  const std::vector<unsigned> &Extents) {
  std::ostringstream OS;
  bool First = true;
  for (size_t I = 0; I != Extents.size(); ++I) {
    if (Extents[I] == Model.BaselineExtents[I])
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << (Extents[I] > Model.BaselineExtents[I] ? "grow " : "shrink ")
       << Model.Stages[I] << " " << Model.BaselineExtents[I] << "->"
       << Extents[I];
  }
  return First ? std::string("keep the measured assignment") : OS.str();
}

std::vector<Recommendation> dope::recommendExtents(const WhatIfModel &Model,
                                                   unsigned Budget,
                                                   size_t TopK) {
  const size_t N = Model.Stages.size();
  std::vector<Recommendation> Ranked;
  if (N == 0 || TopK == 0)
    return Ranked;

  const double Baseline = Model.baselineThroughput();

  // Greedy frontier: from the all-minimal assignment, add one thread at
  // a time to the parallel stage whose increment projects the largest
  // throughput, lowest index on ties. Every prefix of the frontier is a
  // candidate, so the ranking spans all budgets from N to Budget rather
  // than only the full-budget point — fewer threads at equal throughput
  // should win.
  std::vector<unsigned> Extents(N, 1);
  unsigned Used = N;
  std::vector<std::vector<unsigned>> Candidates;
  Candidates.push_back(Extents);
  while (Used < Budget) {
    size_t Best = TaskInstance::npos;
    double BestRate = -1.0;
    for (size_t I = 0; I != N; ++I) {
      if (!Model.Parallel[I])
        continue;
      ++Extents[I];
      const double Rate = Model.projectThroughput(Extents);
      --Extents[I];
      if (Rate > BestRate) {
        BestRate = Rate;
        Best = I;
      }
    }
    if (Best == TaskInstance::npos)
      break; // no parallel stage to grow
    ++Extents[Best];
    ++Used;
    Candidates.push_back(Extents);
  }

  for (const std::vector<unsigned> &Cand : Candidates) {
    if (Cand == Model.BaselineExtents)
      continue;
    Recommendation Rec;
    Rec.Extents = Cand;
    Rec.PredictedThroughput = Model.projectThroughput(Cand);
    Rec.BaselineThroughput = Baseline;
    Rec.PredictedSpeedup =
        Baseline > 0.0 ? Rec.PredictedThroughput / Baseline : 0.0;
    Rec.Rationale = describeChange(Model, Cand);
    Ranked.push_back(std::move(Rec));
  }

  auto Footprint = [](const std::vector<unsigned> &E) {
    unsigned Total = 0;
    for (unsigned X : E)
      Total += X;
    return Total;
  };
  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [&](const Recommendation &A, const Recommendation &B) {
                     if (A.PredictedThroughput != B.PredictedThroughput)
                       return A.PredictedThroughput > B.PredictedThroughput;
                     return Footprint(A.Extents) < Footprint(B.Extents);
                   });
  if (Ranked.size() > TopK)
    Ranked.resize(TopK);
  return Ranked;
}

WarmStartHint dope::makeWarmStartHint(std::string Mechanism,
                                      const Recommendation &Rec) {
  WarmStartHint Hint;
  Hint.Mechanism = std::move(Mechanism);
  Hint.Source = "dope_whatif";
  Hint.PredictedThroughput = Rec.PredictedThroughput;
  Hint.Extents = Rec.Extents;
  return Hint;
}

ValidationReport dope::validateRecommendation(PipelineSim &Sim,
                                              const Recommendation &Rec,
                                              double Bound) {
  ValidationReport Report;
  Report.Predicted = Rec.PredictedThroughput;
  PipelineSimResult Result = Sim.run(/*Mech=*/nullptr, Rec.Extents);
  Report.Actual = Result.Throughput;
  Report.RelError = Report.Actual > 0.0
                        ? std::abs(Report.Predicted - Report.Actual) /
                              Report.Actual
                        : 1.0;
  Report.Ok = Report.RelError <= Bound;
  return Report;
}

ShareRecommendation
dope::recommendShares(const std::vector<ColocationTenantSpec> &Tenants,
                      unsigned Contexts) {
  ShareRecommendation Rec;
  const size_t N = Tenants.size();
  if (N == 0 || Contexts < N)
    return Rec;

  auto Served = [&](size_t I, unsigned Threads) {
    return std::min(ColocationSim::capacity(Tenants[I], Threads),
                    Tenants[I].ArrivalRate);
  };

  Rec.Shares.assign(N, 1);
  unsigned Used = static_cast<unsigned>(N);
  while (Used < Contexts) {
    size_t Best = 0;
    double BestGain = -1.0;
    for (size_t I = 0; I != N; ++I) {
      const double Gain =
          Served(I, Rec.Shares[I] + 1) - Served(I, Rec.Shares[I]);
      if (Gain > BestGain) {
        BestGain = Gain;
        Best = I;
      }
    }
    ++Rec.Shares[Best];
    ++Used;
  }

  std::ostringstream OS;
  for (size_t I = 0; I != N; ++I) {
    Rec.PredictedCompletions += Served(I, Rec.Shares[I]);
    if (I)
      OS << ", ";
    OS << Tenants[I].Tenant.Name << "=" << Rec.Shares[I];
  }
  Rec.Rationale = OS.str();
  return Rec;
}

ValidationReport
dope::validateShares(std::vector<ColocationTenantSpec> Tenants,
                     ColocationSimOptions Opts,
                     const ShareRecommendation &Rec, double Bound) {
  ValidationReport Report;
  Report.Predicted = Rec.PredictedCompletions;
  Opts.Policy = ColocationPolicy::StaticSplit;
  Opts.StaticShares = Rec.Shares;
  ColocationSim Sim(std::move(Tenants), Opts);
  ColocationSimResult Result = Sim.run();
  double Completed = 0.0;
  for (const TenantStats &TS : Result.Tenants)
    Completed += static_cast<double>(TS.Completed);
  Report.Actual = Result.DurationSeconds > 0.0
                      ? Completed / Result.DurationSeconds
                      : 0.0;
  Report.RelError = Report.Actual > 0.0
                        ? std::abs(Report.Predicted - Report.Actual) /
                              Report.Actual
                        : 1.0;
  Report.Ok = Report.RelError <= Bound;
  return Report;
}

//===----------------------------------------------------------------------===//
// JSON renderings
//===----------------------------------------------------------------------===//

JsonValue dope::toJson(const StageProfile &SP) {
  JsonValue V = JsonValue::makeObject();
  V.set("task", SP.Task);
  V.set("instances", SP.Instances);
  V.set("work_seconds", SP.WorkSeconds);
  V.set("mean_exec_seconds", SP.MeanExecSeconds);
  V.set("wait_seconds", SP.WaitSeconds);
  V.set("window_seconds", SP.WindowSeconds);
  V.set("achieved_parallelism", SP.AchievedParallelism);
  V.set("max_concurrent", static_cast<double>(SP.MaxConcurrent));
  return V;
}

JsonValue dope::toJson(const CriticalPathProfile &Profile) {
  JsonValue V = JsonValue::makeObject();
  V.set("schema", "dope-whatif-profile-v1");
  V.set("total_work_seconds", Profile.TotalWorkSeconds);
  V.set("wall_seconds", Profile.WallSeconds);
  V.set("span_seconds", Profile.SpanSeconds);
  V.set("achieved_parallelism", Profile.AchievedParallelism);
  V.set("inherent_parallelism", Profile.InherentParallelism);
  JsonValue Critical = JsonValue::makeArray();
  for (const std::string &Task : Profile.CriticalTasks)
    Critical.push(Task);
  V.set("critical_tasks", std::move(Critical));
  JsonValue Stages = JsonValue::makeArray();
  for (const StageProfile &SP : Profile.Stages)
    Stages.push(toJson(SP));
  V.set("stages", std::move(Stages));
  return V;
}

JsonValue dope::toJson(const Recommendation &Rec) {
  JsonValue V = JsonValue::makeObject();
  JsonValue Extents = JsonValue::makeArray();
  for (unsigned E : Rec.Extents)
    Extents.push(static_cast<double>(E));
  V.set("extents", std::move(Extents));
  V.set("predicted_throughput", Rec.PredictedThroughput);
  V.set("baseline_throughput", Rec.BaselineThroughput);
  V.set("predicted_speedup", Rec.PredictedSpeedup);
  V.set("rationale", Rec.Rationale);
  return V;
}

JsonValue dope::toJson(const std::vector<Recommendation> &Recs) {
  JsonValue V = JsonValue::makeObject();
  V.set("schema", "dope-whatif-recommend-v1");
  JsonValue List = JsonValue::makeArray();
  for (const Recommendation &Rec : Recs)
    List.push(toJson(Rec));
  V.set("recommendations", std::move(List));
  return V;
}

JsonValue dope::toJson(const ValidationReport &Report) {
  JsonValue V = JsonValue::makeObject();
  V.set("predicted", Report.Predicted);
  V.set("actual", Report.Actual);
  V.set("rel_error", Report.RelError);
  V.set("ok", Report.Ok);
  return V;
}

JsonValue dope::toJson(const ShareRecommendation &Rec) {
  JsonValue V = JsonValue::makeObject();
  V.set("schema", "dope-whatif-shares-v1");
  JsonValue Shares = JsonValue::makeArray();
  for (unsigned S : Rec.Shares)
    Shares.push(static_cast<double>(S));
  V.set("shares", std::move(Shares));
  V.set("predicted_completions", Rec.PredictedCompletions);
  V.set("rationale", Rec.Rationale);
  return V;
}

//===- tests/PipelineViewTest.cpp - Pipeline view tests ---------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/PipelineView.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

PipelineGraph ferretLikeGraph() {
  return makePipelineGraph({{"load", false},
                            {"segment", true},
                            {"extract", true},
                            {"rank", true},
                            {"out", false}},
                           {{"load", false},
                            {"query", true},
                            {"out", false}});
}

RegionConfig configWithExtents(const PipelineGraph &G,
                               std::vector<unsigned> Extents,
                               int Alt = 0) {
  TaskConfig Driver;
  Driver.Extent = 1;
  Driver.AltIndex = Alt;
  for (unsigned E : Extents) {
    TaskConfig TC;
    TC.Extent = E;
    Driver.Inner.push_back(TC);
  }
  RegionConfig Config;
  Config.Tasks.push_back(Driver);
  (void)G;
  return Config;
}

TEST(PipelineView, ResolvesDriverShape) {
  PipelineGraph G = ferretLikeGraph();
  RegionConfig Config = configWithExtents(G, {1, 6, 6, 6, 1});
  RegionSnapshot Snap = makePipelineSnapshot(
      G, Config,
      {{0.1, 0, 5}, {0.8, 2, 5}, {8.0, 30, 5}, {2.0, 1, 5}, {0.1, 0, 5}});
  std::optional<PipelineView> View =
      PipelineView::resolve(*G.Root, Snap, Config);
  ASSERT_TRUE(View.has_value());
  ASSERT_EQ(View->size(), 5u);
  EXPECT_TRUE(View->fullyMeasured());
  EXPECT_EQ(View->sequentialCount(), 2u);
  EXPECT_EQ(View->stages()[2].Extent, 6u);
  EXPECT_DOUBLE_EQ(View->stages()[2].ExecTime, 8.0);
}

TEST(PipelineView, BottleneckAndThroughput) {
  PipelineGraph G = ferretLikeGraph();
  RegionConfig Config = configWithExtents(G, {1, 6, 6, 6, 1});
  RegionSnapshot Snap = makePipelineSnapshot(
      G, Config,
      {{0.1, 0, 5}, {0.8, 2, 5}, {8.0, 30, 5}, {2.0, 1, 5}, {0.1, 0, 5}});
  PipelineView View = *PipelineView::resolve(*G.Root, Snap, Config);
  EXPECT_EQ(View.bottleneckStage(), 2u); // 6/8 = 0.75 is the minimum
  EXPECT_NEAR(View.systemThroughput(), 0.75, 1e-9);
}

TEST(PipelineView, UnmeasuredStageBlocksFullyMeasured) {
  PipelineGraph G = ferretLikeGraph();
  RegionConfig Config = configWithExtents(G, {1, 1, 1, 1, 1});
  RegionSnapshot Snap = makePipelineSnapshot(
      G, Config,
      {{0.1, 0, 5}, {0.8, 2, 5}, {0.0, 0, 0}, {2.0, 1, 5}, {0.1, 0, 5}});
  PipelineView View = *PipelineView::resolve(*G.Root, Snap, Config);
  EXPECT_FALSE(View.fullyMeasured());
}

TEST(PipelineView, AlternativesDiscovery) {
  PipelineGraph G = ferretLikeGraph();
  RegionConfig Config = configWithExtents(G, {1, 6, 6, 6, 1});
  RegionSnapshot Snap = makePipelineSnapshot(
      G, Config,
      {{0.1, 0, 5}, {0.8, 2, 5}, {8.0, 30, 5}, {2.0, 1, 5}, {0.1, 0, 5}});
  PipelineView View = *PipelineView::resolve(*G.Root, Snap, Config);
  EXPECT_TRUE(View.hasAlternatives());
  EXPECT_EQ(View.alternativeCount(), 2u);
  EXPECT_EQ(View.activeAlternative(), 0);
  EXPECT_EQ(View.smallestAlternative(), 1);
}

TEST(PipelineView, MakeConfigPinsSequentialStages) {
  PipelineGraph G = ferretLikeGraph();
  RegionConfig Config = configWithExtents(G, {1, 1, 1, 1, 1});
  RegionSnapshot Snap = makePipelineSnapshot(
      G, Config,
      {{0.1, 0, 5}, {0.8, 2, 5}, {8.0, 30, 5}, {2.0, 1, 5}, {0.1, 0, 5}});
  PipelineView View = *PipelineView::resolve(*G.Root, Snap, Config);
  RegionConfig Out = View.makeConfig({9, 9, 9, 9, 9});
  const TaskConfig &Driver = Out.Tasks.front();
  EXPECT_EQ(Driver.Inner[0].Extent, 1u); // sequential
  EXPECT_EQ(Driver.Inner[1].Extent, 9u);
  EXPECT_EQ(Driver.Inner[4].Extent, 1u);
  std::string Error;
  EXPECT_TRUE(validateConfig(*G.Root, Out, &Error)) << Error;
}

TEST(PipelineView, MakeAlternativeConfigSwitchesAndDistributes) {
  PipelineGraph G = ferretLikeGraph();
  RegionConfig Config = configWithExtents(G, {1, 6, 6, 6, 1});
  RegionSnapshot Snap = makePipelineSnapshot(
      G, Config,
      {{0.1, 0, 5}, {0.8, 2, 5}, {8.0, 30, 5}, {2.0, 1, 5}, {0.1, 0, 5}});
  PipelineView View = *PipelineView::resolve(*G.Root, Snap, Config);
  RegionConfig Fused = View.makeAlternativeConfig(1, 24);
  const TaskConfig &Driver = Fused.Tasks.front();
  EXPECT_EQ(Driver.AltIndex, 1);
  ASSERT_EQ(Driver.Inner.size(), 3u);
  EXPECT_EQ(Driver.Inner[0].Extent, 1u);
  EXPECT_EQ(Driver.Inner[1].Extent, 22u); // 24 - 2 sequential stages
  EXPECT_EQ(Driver.Inner[2].Extent, 1u);
  std::string Error;
  EXPECT_TRUE(validateConfig(*G.Root, Fused, &Error)) << Error;
}

TEST(PipelineView, DirectPipelineShape) {
  // A root region holding the stages directly (no driver task).
  TaskGraph Graph;
  TaskFn Dummy = dummyFn();
  Task *A = Graph.createTask("a", Dummy, {}, Graph.seqDescriptor());
  Task *B = Graph.createTask("b", Dummy, {}, Graph.parDescriptor());
  ParDescriptor *Root = Graph.createRegion({A, B});

  RegionConfig Config;
  Config.Tasks.resize(2);
  Config.Tasks[1].Extent = 4;
  RegionSnapshot Snap;
  Snap.Tasks.resize(2);
  Snap.Tasks[0].ExecTime = 0.5;
  Snap.Tasks[0].Invocations = 3;
  Snap.Tasks[1].ExecTime = 1.0;
  Snap.Tasks[1].Invocations = 3;

  std::optional<PipelineView> View =
      PipelineView::resolve(*Root, Snap, Config);
  ASSERT_TRUE(View.has_value());
  EXPECT_EQ(View->size(), 2u);
  EXPECT_FALSE(View->hasAlternatives());
  EXPECT_EQ(View->activeAlternative(), -1);
  EXPECT_TRUE(View->fullyMeasured());

  RegionConfig Out = View->makeConfig({5, 5});
  EXPECT_EQ(Out.Tasks[0].Extent, 1u);
  EXPECT_EQ(Out.Tasks[1].Extent, 5u);
}

TEST(PipelineView, LeafSingleTaskIsNotAPipeline) {
  TaskGraph Graph;
  Task *Only =
      Graph.createTask("only", dummyFn(), {}, Graph.parDescriptor());
  ParDescriptor *Root = Graph.createRegion({Only});
  RegionConfig Config;
  Config.Tasks.resize(1);
  RegionSnapshot Snap;
  Snap.Tasks.resize(1);
  EXPECT_FALSE(PipelineView::resolve(*Root, Snap, Config).has_value());
}

} // namespace

//===- examples/quickstart.cpp - Porting a Pthreads loop to DoPE -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest complete DoPE program, following the porting steps of
/// Sec. 3.2 of the paper:
///
///   1. Parallelism description — wrap the loop body in a functor-style
///      TaskFn and describe its structure with a TaskDescriptor.
///   2. Parallelism registration — Dope::create launches the region.
///   3. Application monitoring — Task::begin/end bracket the CPU-heavy
///      part; a LoadCB reports the work-queue occupancy.
///   4. Task execution control — the functor returns EXECUTING,
///      SUSPENDED (when the run-time wants to reconfigure), or FINISHED.
///
/// A Fig. 10-style proportional mechanism adapts the degree of
/// parallelism while the loop runs.
///
//===----------------------------------------------------------------------===//

#include "apps/NativeKernels.h"
#include "core/Dope.h"
#include "mechanisms/Proportional.h"
#include "queue/WorkQueue.h"

#include <atomic>
#include <cstdio>
#include <memory>

using namespace dope;

int main() {
  // The work: 400 items, each a deterministic CPU-bound kernel.
  WorkQueue<uint64_t> Queue;
  for (uint64_t I = 0; I != 400; ++I)
    Queue.push(I);
  Queue.close(); // end of input: consumers drain and finish

  std::atomic<uint64_t> Digest{0};

  // Step 1: parallelism description. The loop is a DOALL over queue
  // items; DoPE decides how many threads actually execute it.
  TaskGraph Graph;
  TaskFn Body = [&](TaskRuntime &RT) {
    if (RT.begin() == TaskStatus::Suspended)
      return TaskStatus::Suspended; // quiesce for reconfiguration
    std::optional<uint64_t> Item = Queue.waitAndPop();
    if (!Item)
      return TaskStatus::Finished; // loop exit branch
    Digest.fetch_add(hashWork(*Item, 50000), std::memory_order_relaxed);
    if (RT.end() == TaskStatus::Suspended)
      return TaskStatus::Suspended;
    return TaskStatus::Executing;
  };
  LoadFn Load = [&] { return static_cast<double>(Queue.size()); };
  Task *Work = Graph.createTask("quickstart", Body, Load,
                                Graph.parDescriptor());
  ParDescriptor *Root = Graph.createRegion({Work});

  // Step 2: registration. The administrator's goal here is plain
  // throughput on 4 threads; the mechanism assigns DoP proportional to
  // measured execution time (paper Fig. 10).
  DopeOptions Opts;
  Opts.MaxThreads = 4;
  Opts.Mech = std::make_unique<ProportionalMechanism>();
  std::unique_ptr<Dope> Executive = Dope::create(Root, std::move(Opts));

  // Steps 3-4 happen inside the functor; wait for completion
  // (DoPE::destroy semantics).
  Executive->wait();

  std::printf("quickstart: processed 400 items, digest %016llx\n",
              static_cast<unsigned long long>(Digest.load()));
  std::printf("  smoothed exec time per item: %.6f s\n",
              Executive->getExecTime(Work));
  std::printf("  reconfigurations applied:    %llu\n",
              static_cast<unsigned long long>(
                  Executive->reconfigurationCount()));
  std::printf("  final configuration:         %s\n",
              toString(*Root, Executive->currentConfig()).c_str());
  return 0;
}

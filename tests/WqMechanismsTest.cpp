//===- tests/WqMechanismsTest.cpp - WQT-H and WQ-Linear tests ---------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/WqLinear.h"
#include "mechanisms/WqtH.h"

#include "mechanisms/ServerNest.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

MechanismContext makeCtx(unsigned Threads = 24) {
  MechanismContext Ctx;
  Ctx.MaxThreads = Threads;
  return Ctx;
}

RegionConfig decide(Mechanism &M, const ServerNestGraph &G,
                    double Occupancy, const RegionConfig &Current) {
  RegionSnapshot Snap = makeServerSnapshot(G, Occupancy);
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, Snap, Current, makeCtx());
  return Next ? *Next : Current;
}

TEST(WqtH, StartsInSeqState) {
  ServerNestGraph G = makeServerNestGraph();
  WqtHMechanism M({/*QueueThreshold=*/4.0, 3, 3, 8, 0});
  EXPECT_FALSE(M.inParState());
  RegionConfig C = decide(M, G, 10.0, defaultConfig(*G.Root));
  EXPECT_EQ(serverInnerExtent(C), 1u);
  EXPECT_EQ(serverOuterExtent(C), 24u);
}

TEST(WqtH, TransitionsToParAfterNoffQuietDecisions) {
  ServerNestGraph G = makeServerNestGraph();
  WqtHMechanism M({4.0, /*NOff=*/3, /*NOn=*/3, 8, 0});
  RegionConfig C = defaultConfig(*G.Root);
  // Three below-threshold observations are not enough (> Noff required).
  for (int I = 0; I != 3; ++I)
    C = decide(M, G, 1.0, C);
  EXPECT_FALSE(M.inParState());
  C = decide(M, G, 1.0, C);
  EXPECT_TRUE(M.inParState());
  EXPECT_EQ(serverInnerExtent(C), 8u);
  EXPECT_EQ(serverOuterExtent(C), 3u); // 24 / 8
}

TEST(WqtH, HysteresisRidesOutBlips) {
  ServerNestGraph G = makeServerNestGraph();
  WqtHMechanism M({4.0, 3, 3, 8, 0});
  RegionConfig C = defaultConfig(*G.Root);
  for (int I = 0; I != 4; ++I)
    C = decide(M, G, 1.0, C);
  ASSERT_TRUE(M.inParState());
  // Two heavy observations (not > Non) then light again: stays PAR.
  C = decide(M, G, 9.0, C);
  C = decide(M, G, 9.0, C);
  EXPECT_TRUE(M.inParState());
  C = decide(M, G, 1.0, C);
  EXPECT_TRUE(M.inParState());
  // Sustained heavy load flips to SEQ.
  for (int I = 0; I != 4; ++I)
    C = decide(M, G, 9.0, C);
  EXPECT_FALSE(M.inParState());
  EXPECT_EQ(serverInnerExtent(C), 1u);
}

TEST(WqtH, ResetReturnsToSeq) {
  ServerNestGraph G = makeServerNestGraph();
  WqtHMechanism M({4.0, 1, 1, 8, 0});
  RegionConfig C = defaultConfig(*G.Root);
  C = decide(M, G, 0.0, C);
  C = decide(M, G, 0.0, C);
  ASSERT_TRUE(M.inParState());
  M.reset();
  EXPECT_FALSE(M.inParState());
}

TEST(WqtH, IgnoresNonServerShapes) {
  PipelineGraph G = makePipelineGraph({{"a", true}, {"b", true}});
  const ParDescriptor *Stages = G.Driver->descriptor()->alternative(0);
  WqtHMechanism M({4.0, 3, 3, 8, 0});
  RegionConfig Config;
  Config.Tasks.resize(2);
  RegionSnapshot Snap;
  Snap.Tasks.resize(2);
  EXPECT_FALSE(M.reconfigure(*Stages, Snap, Config, makeCtx()).has_value());
}

TEST(WqLinear, SlopeMatchesEquationThree) {
  WqLinearMechanism M({/*MMin=*/1, /*MMax=*/8, /*QMax=*/14.0, 0, 0});
  EXPECT_DOUBLE_EQ(M.slope(), 0.5); // (8 - 1) / 14
}

TEST(WqLinear, ExtentFollowsEquationTwo) {
  WqLinearMechanism M({1, 8, 14.0, 0, 0});
  EXPECT_EQ(M.extentForOccupancy(0.0), 8u);
  EXPECT_EQ(M.extentForOccupancy(14.0), 1u);
  EXPECT_EQ(M.extentForOccupancy(7.0), 5u);   // 8 - 3.5 = 4.5 -> 5
  EXPECT_EQ(M.extentForOccupancy(100.0), 1u); // clamped at Mmin
}

TEST(WqLinear, ProducesMatchingServerConfigs) {
  ServerNestGraph G = makeServerNestGraph();
  WqLinearMechanism M({1, 8, 14.0, 0, 0});
  RegionConfig C = defaultConfig(*G.Root);

  C = decide(M, G, 0.0, C); // empty queue: full latency mode
  EXPECT_EQ(serverInnerExtent(C), 8u);
  EXPECT_EQ(serverOuterExtent(C), 3u);

  C = decide(M, G, 20.0, C); // saturated queue: throughput mode
  EXPECT_EQ(serverInnerExtent(C), 1u);
  EXPECT_EQ(serverOuterExtent(C), 24u);

  C = decide(M, G, 6.0, C); // 8 - 0.5*6 = 5
  EXPECT_EQ(serverInnerExtent(C), 5u);
  EXPECT_EQ(serverOuterExtent(C), 4u); // floor(24 / 5)
}

TEST(WqLinear, HysteresisBandSuppressesSmallSteps) {
  ServerNestGraph G = makeServerNestGraph();
  WqLinearParams P{1, 8, 14.0, /*HysteresisBand=*/1, 0};
  WqLinearMechanism M(P);
  RegionConfig C = defaultConfig(*G.Root);
  C = decide(M, G, 0.0, C); // extent 8
  ASSERT_EQ(serverInnerExtent(C), 8u);
  // Occupancy 2 -> raw extent 7: within the band, stays 8.
  C = decide(M, G, 2.0, C);
  EXPECT_EQ(serverInnerExtent(C), 8u);
  // Occupancy 8 -> raw extent 4: outside the band, moves.
  C = decide(M, G, 8.0, C);
  EXPECT_EQ(serverInnerExtent(C), 4u);
}

TEST(WqLinear, ResetForgetsLastExtent) {
  ServerNestGraph G = makeServerNestGraph();
  WqLinearMechanism M({1, 8, 14.0, 2, 0});
  RegionConfig C = defaultConfig(*G.Root);
  C = decide(M, G, 0.0, C);
  M.reset();
  C = decide(M, G, 7.0, C);
  EXPECT_EQ(serverInnerExtent(C), 5u);
}

TEST(WqLinear, RespectsMminFloor) {
  ServerNestGraph G = makeServerNestGraph();
  WqLinearMechanism M({/*MMin=*/4, /*MMax=*/8, /*QMax=*/8.0, 0, 0});
  RegionConfig C = defaultConfig(*G.Root);
  C = decide(M, G, 100.0, C);
  EXPECT_EQ(serverInnerExtent(C), 4u);
}

} // namespace

// HP004 fixture: the impurity sits two frames below the DOPE_HOT root.
// The hot body itself is pure — HP001 stays silent — but the call chain
// step -> settle -> awaitResult reaches a blocking wait, which only the
// interprocedural HP004 traversal can see.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <future>

struct Pipeline {
  std::future<int> Pending;

  int awaitResult() {
    Pending.wait();
    return 1;
  }

  int settle() { return awaitResult(); }

  DOPE_HOT int step() { return settle(); }
};

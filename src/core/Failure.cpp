//===- core/Failure.cpp - Failure domains and retry policies ---------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Failure.h"

using namespace dope;

std::string dope::toString(const TaskFailure &Failure) {
  return "task '" + Failure.TaskName + "' replica " +
         std::to_string(Failure.Replica) + " failed after " +
         std::to_string(Failure.Attempts) +
         (Failure.Attempts == 1 ? " attempt: " : " attempts: ") +
         Failure.Message;
}

//===- queue/ChaseLevDeque.h - Lock-free work-stealing deque --*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Chase-Lev work-stealing deque [Chase & Lev, SPAA 2005] with the
/// C11-style memory orders of Lê, Pop, Cohen & Zappa Nardelli (PPoPP
/// 2013). One *owner* thread pushes and pops at the bottom; any number of
/// *thief* threads CAS-claim elements at the top. The owner's fast path
/// (push/pop on a non-contended deque) is lock-free and allocation-free —
/// the hot-path purity contract the `dope_lint` HP checks enforce on every
/// DOPE_HOT body.
///
/// Memory-order argument (DESIGN.md §16 carries the prose version):
///
///   * push stores the element into the ring with a relaxed store, then
///     publishes it with a release fence before the relaxed store of
///     Bottom. A thief that observes the new Bottom through its seq_cst
///     fence therefore also observes the element.
///   * pop decrements Bottom, then issues a seq_cst fence before reading
///     Top. The fence pairs with the thief's seq_cst fence: owner and
///     thief cannot both miss each other's claim on the last element, so
///     the final element is arbitrated by a single seq_cst CAS on Top.
///   * steal reads Top (acquire), fences seq_cst, reads Bottom (acquire),
///     and claims the element with a seq_cst CAS on Top. A failed CAS
///     means another thief (or the owner racing for the last element) won;
///     the caller sees Abort and may retry or move to another victim.
///
/// Growth: when the ring is full the owner allocates a ring of twice the
/// capacity and copies the live window (a cold path, out of the DOPE_HOT
/// fast path). Retired rings are kept alive until the deque is destroyed:
/// a thief may still be reading a cell of an old ring after the owner
/// swapped in the new one, and parking the old buffer until destruction is
/// this reproduction's stand-in for hazard pointers — bounded, because the
/// total retired footprint is at most twice the largest ring.
///
/// Elements must be trivially copyable and at most 8 bytes so the ring
/// cells are genuinely lock-free std::atomic<T>; schedulers pack wider
/// payloads (e.g. [lo, hi) ranges) into a uint64_t.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_QUEUE_CHASELEVDEQUE_H
#define DOPE_QUEUE_CHASELEVDEQUE_H

#include "support/Compiler.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

// ThreadSanitizer does not model std::atomic_thread_fence, so the
// fence-based recipe above reports false races under TSan even though the
// algorithm is correct. Under TSan the relaxed operations that the fences
// order are upgraded to seq_cst so the synchronization is visible to the
// race detector; native builds keep the cheap orders.
#if defined(__SANITIZE_THREAD__)
#define DOPE_CHASELEV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DOPE_CHASELEV_TSAN 1
#endif
#endif
#ifndef DOPE_CHASELEV_TSAN
#define DOPE_CHASELEV_TSAN 0
#endif

namespace dope {

namespace detail {
/// Relaxed in native builds, seq_cst under TSan (see above).
inline constexpr std::memory_order ChaseLevRelaxed =
    DOPE_CHASELEV_TSAN ? std::memory_order_seq_cst
                       : std::memory_order_relaxed;
} // namespace detail

/// Outcome of a steal attempt.
enum class StealOutcome {
  /// An element was claimed and written to the out parameter.
  Success,
  /// The deque was observed empty.
  Empty,
  /// Lost a race with the owner or another thief; retrying may succeed.
  Abort,
};

/// Lock-free single-owner multi-thief deque.
template <typename T> class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "deque cells are std::atomic<T>: T must be trivially "
                "copyable");
  static_assert(sizeof(T) <= sizeof(uint64_t),
                "pack wider payloads into a uint64_t so the cells stay "
                "lock-free");

public:
  /// \p InitialCapacity is rounded up to a power of two, minimum 2.
  explicit ChaseLevDeque(size_t InitialCapacity = 64) {
    size_t Cap = 2;
    while (Cap < InitialCapacity)
      Cap *= 2;
    Rings.push_back(std::make_unique<Ring>(Cap));
    // dope-lint: mo-proof(design-16-chaselev) — pre-publication store
    Buffer.store(Rings.back().get(), detail::ChaseLevRelaxed);
  }

  ChaseLevDeque(const ChaseLevDeque &) = delete;
  ChaseLevDeque &operator=(const ChaseLevDeque &) = delete;

  /// Owner only: pushes \p Item at the bottom. The direct body is
  /// allocation-free; a full ring diverts to the cold grow() path.
  DOPE_HOT void push(T Item) {
    const int64_t B = Bottom.load(detail::ChaseLevRelaxed);
    const int64_t Tp = Top.load(std::memory_order_acquire);
    Ring *R = Buffer.load(detail::ChaseLevRelaxed);
    if (B - Tp > static_cast<int64_t>(R->Capacity) - 1)
      R = grow(B, Tp);
    R->put(B, Item);
    std::atomic_thread_fence(std::memory_order_release);
    Bottom.store(B + 1, detail::ChaseLevRelaxed);
  }

  /// Owner only: pops the most recently pushed element (LIFO). Returns
  /// false when the deque is empty.
  DOPE_HOT bool pop(T &Out) {
    const int64_t B = Bottom.load(detail::ChaseLevRelaxed) - 1;
    Ring *R = Buffer.load(detail::ChaseLevRelaxed);
    Bottom.store(B, detail::ChaseLevRelaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t Tp = Top.load(detail::ChaseLevRelaxed);
    if (Tp > B) {
      // Already empty: undo the reservation.
      Bottom.store(B + 1, detail::ChaseLevRelaxed);
      return false;
    }
    Out = R->get(B);
    if (Tp != B)
      return true; // more than one element left: no race possible
    // Last element: race thieves for it through Top.
    // dope-lint: mo-proof(design-16-chaselev) — failure path only retries
    const bool Won = Top.compare_exchange_strong(
        Tp, Tp + 1, std::memory_order_seq_cst, detail::ChaseLevRelaxed);
    Bottom.store(B + 1, detail::ChaseLevRelaxed);
    return Won;
  }

  /// Any thread: attempts to steal the oldest element (FIFO end).
  DOPE_HOT StealOutcome steal(T &Out) {
    int64_t Tp = Top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const int64_t B = Bottom.load(std::memory_order_acquire);
    if (Tp >= B)
      return StealOutcome::Empty;
    Ring *R = Buffer.load(std::memory_order_acquire);
    Out = R->get(Tp);
    // dope-lint: mo-proof(design-16-chaselev) — failure path only aborts
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                     detail::ChaseLevRelaxed))
      return StealOutcome::Abort;
    return StealOutcome::Success;
  }

  /// Snapshot of the element count; exact only when quiesced. Never
  /// negative.
  DOPE_HOT size_t size() const {
    const int64_t B = Bottom.load(detail::ChaseLevRelaxed);   // dope-lint: mo-proof(design-16-chaselev)
    const int64_t Tp = Top.load(detail::ChaseLevRelaxed);     // dope-lint: mo-proof(design-16-chaselev)
    return B > Tp ? static_cast<size_t>(B - Tp) : 0;
  }

  DOPE_HOT bool empty() const { return size() == 0; }

  /// Current ring capacity (test hook for the growth path).
  size_t capacity() const {
    return Buffer.load(detail::ChaseLevRelaxed)->Capacity; // dope-lint: mo-proof(design-16-chaselev)
  }

private:
  /// A power-of-two ring of atomic cells. get/put index modulo capacity.
  struct Ring {
    explicit Ring(size_t Capacity)
        : Capacity(Capacity), Mask(static_cast<int64_t>(Capacity) - 1),
          Cells(std::make_unique<std::atomic<T>[]>(Capacity)) {}

    T get(int64_t Index) const {
      return Cells[static_cast<size_t>(Index & Mask)].load(
          detail::ChaseLevRelaxed);
    }
    void put(int64_t Index, T Item) {
      Cells[static_cast<size_t>(Index & Mask)].store(
          Item, detail::ChaseLevRelaxed);
    }

    const size_t Capacity;
    const int64_t Mask;
    std::unique_ptr<std::atomic<T>[]> Cells;
  };

  /// Cold path: doubles the ring, copying the live window [Top, Bottom).
  /// Owner only. The retired ring stays alive (see file comment).
  DOPE_COLD Ring *grow(int64_t B, int64_t Tp) {
    Ring *Old = Buffer.load(detail::ChaseLevRelaxed); // dope-lint: mo-proof(design-16-chaselev)
    Rings.push_back(std::make_unique<Ring>(Old->Capacity * 2));
    Ring *New = Rings.back().get();
    for (int64_t I = Tp; I != B; ++I)
      New->put(I, Old->get(I));
    Buffer.store(New, std::memory_order_release);
    return New;
  }

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::atomic<Ring *> Buffer{nullptr};
  /// All rings ever allocated, newest last; owner-only mutation (inside
  /// grow), destroyed with the deque.
  std::vector<std::unique_ptr<Ring>> Rings;
};

} // namespace dope

#endif // DOPE_QUEUE_CHASELEVDEQUE_H

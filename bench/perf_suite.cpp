//===- bench/perf_suite.cpp - Platform performance regression suite --------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the performance of the reproduction platform *itself* (not
/// the simulated applications): how fast the event core dispatches, how
/// many simulated items per wall second each simulator sustains, what
/// tracing costs, and how long the end-to-end figure harnesses take.
/// Results are written as JSON (BENCH_perf.json at the repository root
/// by default) so CI can diff runs against a committed baseline and fail
/// on regressions.
///
///   * event core: a churn workload (self-rescheduling events with
///     pseudo-random delays, periodic cancel+reschedule of far-future
///     horizon events, rare overflow-horizon events) run through both
///     the timing-wheel EventQueue and the pre-wheel heap
///     ReferenceEventQueue; reports events/sec for each and the speedup.
///   * simulators: wall-clock items/sec of PipelineSim (ferret batch),
///     NestServerSim (x264 under WQT-H), and ColocationSim (arbiter).
///   * task runtime: spawn/acquire throughput of the work-stealing
///     deques vs the central mutex queue on an identical recursive
///     splitting tree at 8 threads (see src/queue/StealScheduler.h).
///   * tracing: the same NestServerSim run with and without a TraceSink
///     plus JSONL export; reports the overhead fraction.
///   * end to end: wall time of fig2_transcode and fig11_response_time,
///     located next to this binary.
///
/// Regression policy (--baseline): throughput-direction metrics fail
/// below baseline * (1 - tolerance); time-direction metrics fail above
/// baseline * (1 + tolerance). Default tolerance 0.25. Metrics absent
/// from the baseline are skipped, so the suite can grow.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "analysis/CriticalPath.h"
#include "analysis/Scenarios.h"
#include "analysis/TaskDag.h"
#include "analysis/WhatIf.h"
#include "apps/NestApps.h"
#include "apps/PipelineApps.h"
#include "core/WarmStart.h"
#include "mechanisms/Fdp.h"
#include "mechanisms/ServerNest.h"
#include "mechanisms/WqtH.h"
#include "queue/StealScheduler.h"
#include "queue/WorkQueue.h"
#include "sim/ChaosInvariants.h"
#include "sim/ColocationSim.h"
#include "sim/EventQueue.h"
#include "sim/NestServerSim.h"
#include "sim/PipelineSim.h"
#include "sim/ReferenceEventQueue.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace dope;
using namespace dope::bench;

namespace {

using SteadyClock = std::chrono::steady_clock;

double secondsSince(SteadyClock::time_point Start) {
  return std::chrono::duration<double>(SteadyClock::now() - Start).count();
}

//===----------------------------------------------------------------------===//
// Event-core churn benchmark
//===----------------------------------------------------------------------===//

/// A deterministic event-queue stress workload, templated over the queue
/// implementation so the wheel and the reference heap run byte-identical
/// schedules. A fixed set of actors self-reschedule with xorshift-driven
/// delays spanning wheel levels 0-1 (0.5 ms .. 0.5 s); every 64th firing
/// cancels and re-arms a +60 s horizon event (levels 2-3, the cancel
/// path); every 1024th firing cancels and re-arms a +20000 s event
/// (beyond the 2^24-tick wheel horizon, the overflow path).
template <typename QueueT> class ChurnBench {
public:
  explicit ChurnBench(uint64_t TargetFirings)
      : Target(TargetFirings), HorizonIds(Actors, 0), FarIds(Actors, 0) {}

  /// Runs the workload to completion; returns total dispatched events.
  uint64_t run() {
    for (unsigned A = 0; A != Actors; ++A) {
      HorizonIds[A] = Q.scheduleAfter(60.0, [] {});
      const unsigned Actor = A;
      Q.scheduleAfter(nextDelay(), [this, Actor] { fire(Actor); });
    }
    return Q.runUntil(1e18);
  }

private:
  void fire(unsigned Actor) {
    ++Fired;
    if ((Fired & 63) == 0) {
      Q.cancel(HorizonIds[Actor]);
      HorizonIds[Actor] = Q.scheduleAfter(60.0, [] {});
    }
    if ((Fired & 1023) == 0) {
      Q.cancel(FarIds[Actor]);
      FarIds[Actor] = Q.scheduleAfter(20000.0, [] {});
    }
    if (Fired < Target)
      Q.scheduleAfter(nextDelay(), [this, Actor] { fire(Actor); });
  }

  double nextDelay() {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return 0.0005 * static_cast<double>(1 + (Rng % 1000));
  }

  /// Sized so the steady-state pending set (~2 events per actor) matches
  /// a heavily loaded simulator, where dispatch cost actually matters.
  static constexpr unsigned Actors = 4096;

  QueueT Q;
  uint64_t Target;
  uint64_t Fired = 0;
  uint64_t Rng = 0x9e3779b97f4a7c15ull;
  std::vector<uint64_t> HorizonIds;
  std::vector<uint64_t> FarIds;
};

/// Best-of-\p Reps dispatch rate: repetition damps scheduler and cache
/// noise, and the best run is the one closest to the machine's actual
/// capability (interference only ever slows a run down).
template <typename QueueT>
double measureChurnEventsPerSec(uint64_t TargetFirings, unsigned Reps,
                                uint64_t &DispatchedOut) {
  double Best = 0.0;
  for (unsigned R = 0; R != Reps; ++R) {
    ChurnBench<QueueT> Bench(TargetFirings);
    const auto Start = SteadyClock::now();
    DispatchedOut = Bench.run();
    const double Sec = secondsSince(Start);
    if (Sec > 0.0)
      Best = std::max(Best, static_cast<double>(DispatchedOut) / Sec);
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Simulator throughput (wall-clock items per second)
//===----------------------------------------------------------------------===//

double pipelineItemsPerSec(uint64_t Items, unsigned Contexts, uint64_t Seed) {
  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions SimOpts;
  SimOpts.Contexts = Contexts;
  SimOpts.Seed = Seed;
  SimOpts.NumItems = Items;
  PipelineSim Sim(App, SimOpts);
  const auto Start = SteadyClock::now();
  PipelineSimResult R = Sim.run(nullptr, {});
  const double Sec = secondsSince(Start);
  return Sec > 0.0 ? static_cast<double>(R.ItemsCompleted) / Sec : 0.0;
}

/// One x264 NestServerSim run under WQT-H; \p Sink optionally receives
/// the structured trace. Returns wall seconds; transactions out-param.
double nestRunSeconds(uint64_t Transactions, unsigned Contexts, uint64_t Seed,
                      Tracer *Sink) {
  NestAppBundle App = makeX264App();
  NestSimOptions SimOpts;
  SimOpts.Contexts = Contexts;
  SimOpts.LoadFactor = 0.7;
  SimOpts.NumTransactions = Transactions;
  SimOpts.Seed = Seed;
  SimOpts.TraceSink = Sink;
  NestServerSim Sim(App.Model, SimOpts);
  WqtHMechanism WqtH(App.WqtH);
  const auto Start = SteadyClock::now();
  (void)Sim.run(&WqtH, Contexts, 1);
  return secondsSince(Start);
}

double colocationItemsPerSec(double Duration, unsigned Contexts,
                             uint64_t Seed) {
  ColocationTenantSpec Front;
  Front.Tenant.Name = "frontend";
  Front.Tenant.Goal = TenantGoal::ResponseTime;
  Front.Tenant.Weight = 2.0;
  Front.Tenant.MinThreads = 2;
  Front.Tenant.SloSeconds = 0.5;
  Front.Kind = ColocationTenantSpec::AppKind::NestServer;
  Front.Nest.Name = "frontend";
  Front.Nest.SeqServiceSeconds = 0.05;
  Front.Nest.Curve = SpeedupCurve(0.1, 0.2);
  Front.ArrivalRate = 40.0;

  ColocationTenantSpec Batch;
  Batch.Tenant.Name = "batch";
  Batch.Tenant.Goal = TenantGoal::Throughput;
  Batch.Tenant.Weight = 1.0;
  Batch.Kind = ColocationTenantSpec::AppKind::Pipeline;
  Batch.Pipeline.Name = "batch";
  Batch.Pipeline.Stages = {{"decode", true, 0.02, 0.15},
                           {"work", true, 0.1, 0.15},
                           {"sink", true, 0.03, 0.15}};
  Batch.ArrivalRate = 200.0;

  ColocationSimOptions Opts;
  Opts.Contexts = Contexts;
  Opts.Seed = Seed;
  Opts.DurationSeconds = Duration;
  Opts.StepSeconds = 0.05;
  Opts.WarmupSeconds = 4.0;
  Opts.Policy = ColocationPolicy::Arbiter;

  ColocationSim Sim({Front, Batch}, Opts);
  const auto Start = SteadyClock::now();
  ColocationSimResult R = Sim.run();
  const double Sec = secondsSince(Start);
  uint64_t Completed = 0;
  for (const TenantStats &T : R.Tenants)
    Completed += T.Completed;
  return Sec > 0.0 ? static_cast<double>(Completed) / Sec : 0.0;
}

/// Shard-scaling probe: one many-tenant colocation run at \p Shards,
/// returning simulated events per wall second (the work-proportional
/// SimulatedEvents counter, invariant across shard counts — so the
/// ratio between shard counts is pure engine scaling, not workload
/// drift). bench/ext_scale runs the full sweep with determinism
/// cross-checks; this probe feeds the gated perf metric.
double shardScaleEventsPerSec(unsigned Tenants, double Duration,
                              unsigned Shards, uint64_t Seed) {
  std::vector<ColocationTenantSpec> Specs;
  Specs.reserve(Tenants);
  for (unsigned I = 0; I != Tenants; ++I) {
    ColocationTenantSpec T;
    if (I % 3 == 0) {
      T.Tenant.Name = "svc" + std::to_string(I);
      T.Tenant.Goal = TenantGoal::ResponseTime;
      T.Tenant.Weight = 2.0;
      T.Tenant.MinThreads = 1;
      T.Tenant.SloSeconds = 0.5;
      T.Kind = ColocationTenantSpec::AppKind::NestServer;
      T.Nest.Name = T.Tenant.Name;
      T.Nest.SeqServiceSeconds = 0.05;
      T.Nest.Curve = SpeedupCurve(0.1, 0.2);
      T.ArrivalRate = 15.0 + (I % 7);
    } else {
      T.Tenant.Name = "job" + std::to_string(I);
      T.Tenant.Goal = TenantGoal::Throughput;
      T.Tenant.Weight = 1.0;
      T.Kind = ColocationTenantSpec::AppKind::Pipeline;
      T.Pipeline.Name = T.Tenant.Name;
      T.Pipeline.Stages = {{"decode", true, 0.02, 0.15},
                           {"work", true, 0.1, 0.15},
                           {"sink", true, 0.03, 0.15}};
      T.ArrivalRate = 25.0 + 3.0 * (I % 11);
    }
    Specs.push_back(std::move(T));
  }

  ColocationSimOptions Opts;
  Opts.Contexts = 2 * Tenants;
  Opts.Seed = Seed;
  Opts.DurationSeconds = Duration;
  Opts.StepSeconds = 0.05;
  Opts.WarmupSeconds = 4.0;
  Opts.Shards = Shards;
  Opts.Policy = ColocationPolicy::Arbiter;
  Opts.Arbiter.EpochSeconds = 2.0;
  Opts.Arbiter.LeaseTtlSeconds = 5.0;

  // Best of three runs: the individual runs are short enough that one
  // badly timed preemption can swing the 8-over-1 ratio, and the best
  // observed rate is the standard noise-robust estimator for a
  // deterministic workload.
  double Best = 0.0;
  for (unsigned Rep = 0; Rep != 3; ++Rep) {
    ColocationSim Sim(Specs, Opts);
    const auto Start = SteadyClock::now();
    const ColocationSimResult R = Sim.run();
    const double Sec = secondsSince(Start);
    if (Sec > 0.0)
      Best = std::max(Best, static_cast<double>(R.SimulatedEvents) / Sec);
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Task-runtime scheduling throughput (steal deques vs central queue)
//===----------------------------------------------------------------------===//

/// The recursive task runtime's scheduling fabric measured in isolation:
/// a packed [Lo, Hi) range splits in half until unit width, then
/// retires, so the task count is fixed by the extent alone and both
/// schedulers do identical logical work. Tasks carry no payload, making
/// tasks/second a pure scheduling-overhead number — the quantity the
/// per-worker steal deques exist to shrink relative to pushing every
/// spawn through the central mutex WorkQueue.

uint64_t packTreeRange(uint64_t Lo, uint64_t Hi) { return (Hi << 32) | Lo; }

/// Splits or retires one task. Returns the change in outstanding-task
/// count: +1 for a split (one consumed, two produced), -1 for a leaf.
template <typename SpawnFn>
int runTreeTask(uint64_t Item, SpawnFn &&Spawn) {
  const uint64_t Lo = Item & 0xffffffffull;
  const uint64_t Hi = Item >> 32;
  if (Hi - Lo <= 1)
    return -1;
  const uint64_t Mid = Lo + (Hi - Lo) / 2;
  Spawn(packTreeRange(Lo, Mid));
  Spawn(packTreeRange(Mid, Hi));
  return 1;
}

/// Drives \p Threads workers over the splitting tree; \p Acquire and
/// \p Spawn abstract the scheduler under test. Returns tasks/second.
template <typename AcquireFn, typename SpawnFn>
double treeTasksPerSec(unsigned Threads, uint64_t Leaves, AcquireFn Acquire,
                       SpawnFn Spawn) {
  std::atomic<uint64_t> Outstanding{1};
  std::atomic<uint64_t> Executed{0};
  auto Work = [&](unsigned W) {
    uint64_t Local = 0;
    uint64_t Item = 0;
    while (Outstanding.load(std::memory_order_acquire) != 0) {
      if (!Acquire(W, Item)) {
        std::this_thread::yield();
        continue;
      }
      const int Delta = runTreeTask(Item, [&](uint64_t Child) {
        Spawn(W, Child);
      });
      ++Local;
      // The acquired task stays counted until here, so Outstanding only
      // reaches zero after the last leaf retires.
      if (Delta < 0)
        Outstanding.fetch_sub(1, std::memory_order_acq_rel);
      else
        Outstanding.fetch_add(1, std::memory_order_relaxed);
    }
    Executed.fetch_add(Local, std::memory_order_relaxed);
  };
  Spawn(0, packTreeRange(0, Leaves));
  const auto Start = SteadyClock::now();
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned W = 1; W < Threads; ++W)
    Pool.emplace_back(Work, W);
  Work(0);
  for (std::thread &T : Pool)
    T.join();
  const double Sec = secondsSince(Start);
  return Sec > 0.0 ? static_cast<double>(Executed.load()) / Sec : 0.0;
}

double stealTreeTasksPerSec(unsigned Threads, uint64_t Leaves,
                            uint64_t Seed) {
  StealScheduler<uint64_t> Sched(Threads, Seed);
  return treeTasksPerSec(
      Threads, Leaves,
      [&](unsigned W, uint64_t &Out) { return Sched.tryAcquire(W, Out); },
      [&](unsigned W, uint64_t Item) { Sched.spawn(W, Item); });
}

double centralTreeTasksPerSec(unsigned Threads, uint64_t Leaves) {
  WorkQueue<uint64_t> Q;
  return treeTasksPerSec(
      Threads, Leaves,
      [&](unsigned, uint64_t &Out) {
        if (std::optional<uint64_t> Item = Q.tryPop()) {
          Out = *Item;
          return true;
        }
        return false;
      },
      [&](unsigned, uint64_t Item) { Q.push(Item); });
}

//===----------------------------------------------------------------------===//
// Lease-protocol recovery metrics
//===----------------------------------------------------------------------===//

/// The chaos platform of bench/ext_chaos reduced to two gated numbers.
/// Both are simulated-time quantities, so they are exactly reproducible
/// and gate robustness regressions rather than machine speed:
///   * TimeToRecoverSeconds — simulated seconds for a snapshot-restarted
///     arbiter to re-converge to the uninterrupted run's allocation
///     (lower is better; a regression means warm restart got slower).
///   * AttainmentRetainedFraction — fraction of fault-free weighted SLO
///     attainment the honest tenants keep while one byzantine reporter
///     and one envelope violator share the platform (higher is better;
///     a regression means containment got leakier).
struct RecoveryNumbers {
  double TimeToRecoverSeconds = -1.0;
  double AttainmentRetainedFraction = -1.0;
};

/// The warm-start loop end to end in deterministic virtual time: trace
/// the what-if scenario, derive the hint, and run cold vs hinted FDP on
/// one long item stream. Returns cold/hinted completion-time ratio
/// (> 1 means the hint pays); -1 when the analysis yields nothing.
double warmStartSpeedup(uint64_t NumItems) {
  const WhatIfPipelineScenario Scenario = whatifPipelineScenario();
  auto Traced = runWhatifPipelineScenario(Scenario);
  const WhatIfModel Model = WhatIfModel::fromProfile(
      computeCriticalPath(TaskDag::build(std::move(Traced.second))),
      Scenario.Opts.Contexts, Scenario.App.OversubPenalty,
      Scenario.App.ThreadOverheadPenalty);
  const std::vector<Recommendation> Recs =
      recommendExtents(Model, Scenario.Opts.Contexts, 1);
  if (Recs.empty())
    return -1.0;
  const WarmStartHint Hint = makeWarmStartHint("FDP", Recs.front());

  WhatIfPipelineScenario Long = Scenario;
  Long.Opts.NumItems = NumItems;
  FdpMechanism Cold;
  PipelineSim ColdSim(Long.App, Long.Opts);
  const double ColdSec = ColdSim.run(&Cold, {}).TotalSeconds;
  FdpMechanism Hinted;
  Hinted.seedWarmStart(Hint);
  PipelineSim HintedSim(Long.App, Long.Opts);
  const double HintedSec = HintedSim.run(&Hinted, {}).TotalSeconds;
  return HintedSec > 0.0 ? ColdSec / HintedSec : -1.0;
}

RecoveryNumbers recoveryMetrics(double Duration, unsigned Contexts,
                                uint64_t Seed) {
  constexpr double EpochSeconds = 2.0;
  constexpr double LeaseTtl = 5.0;

  auto makeTenants = [] {
    ColocationTenantSpec Front;
    Front.Tenant.Name = "frontend";
    Front.Tenant.Goal = TenantGoal::ResponseTime;
    Front.Tenant.Weight = 2.0;
    Front.Tenant.MinThreads = 4;
    Front.Tenant.SloSeconds = 0.5;
    Front.Kind = ColocationTenantSpec::AppKind::NestServer;
    Front.Nest.Name = "frontend";
    Front.Nest.SeqServiceSeconds = 0.05;
    Front.Nest.Curve = SpeedupCurve(0.1, 0.2);
    Front.ArrivalRate = 30.0;

    auto batch = [](const std::string &Name, double Rate) {
      ColocationTenantSpec T;
      T.Tenant.Name = Name;
      T.Tenant.Goal = TenantGoal::Throughput;
      T.Tenant.Weight = 1.0;
      T.Kind = ColocationTenantSpec::AppKind::Pipeline;
      T.Pipeline.Name = Name;
      T.Pipeline.Stages = {{"decode", true, 0.02, 0.15},
                           {"work", true, 0.1, 0.15},
                           {"sink", true, 0.03, 0.15}};
      T.ArrivalRate = Rate;
      return T;
    };
    return std::vector<ColocationTenantSpec>{Front, batch("batch", 120.0),
                                             batch("miner", 80.0),
                                             batch("indexer", 60.0)};
  };

  auto runOnce = [&](std::vector<ColocationTenantSpec> Tenants,
                     const ArbiterOutage &Outage, double Warmup = 4.0,
                     double RunSeconds = 0.0) {
    ColocationSimOptions Opts;
    Opts.Contexts = Contexts;
    Opts.Seed = Seed;
    Opts.DurationSeconds = RunSeconds > 0.0 ? RunSeconds : Duration;
    Opts.StepSeconds = 0.05;
    Opts.WarmupSeconds = Warmup;
    Opts.Policy = ColocationPolicy::Arbiter;
    Opts.Arbiter.EpochSeconds = EpochSeconds;
    Opts.Arbiter.LeaseTtlSeconds = LeaseTtl;
    Opts.Outage = Outage;
    ColocationSim Sim(std::move(Tenants), Opts);
    return Sim.run();
  };
  auto onEpoch = [&](double T) {
    return std::max(EpochSeconds,
                    std::round(T / EpochSeconds) * EpochSeconds);
  };

  RecoveryNumbers Numbers;
  const ColocationSimResult Baseline = runOnce(makeTenants(), {});

  // Snapshot restart: kill mid-run, restore, measure re-convergence to
  // within 5% of the platform against the uninterrupted timeline.
  ArbiterOutage Outage;
  Outage.KillSeconds = onEpoch(0.45 * Duration);
  Outage.RestartSeconds = onEpoch(0.55 * Duration);
  Outage.Mode = ArbiterOutage::RestartMode::Snapshot;
  const ColocationSimResult Interrupted = runOnce(makeTenants(), Outage);
  const unsigned Tolerance =
      std::max(1u, static_cast<unsigned>(std::ceil(0.05 * Contexts)));
  const RecoveryMetrics R = allocationRecovery(
      Baseline, Interrupted, Outage.RestartSeconds, Tolerance);
  // Rounds x epoch rather than the raw offset: recovery at the restart
  // epoch itself would read 0.0, which the ratio gate cannot compare.
  if (R.recovered())
    Numbers.TimeToRecoverSeconds = R.RoundsToRecover * EpochSeconds;

  // Containment: byzantine miner + envelope-violating indexer from
  // FaultStart on. The honest tenants' post-fault attainment is
  // normalized against the same schedule's own pre-fault window — not
  // against a separate fault-free run, whose perturbed allocations made
  // the old ratio exceed 1.0 — and clamped: "retained" is a fraction.
  const double FaultStart = onEpoch(0.125 * Duration);
  auto chaosTenants = [&] {
    std::vector<ColocationTenantSpec> Chaos = makeTenants();
    Chaos[2].Misbehavior.ByzantineFromSeconds = FaultStart;
    Chaos[2].Misbehavior.ReportedRateFactor = 3.0;
    Chaos[2].Misbehavior.NonMonotoneClock = true;
    Chaos[3].Misbehavior.EnvelopeViolationThreads = 2;
    return Chaos;
  };
  const std::vector<std::string> Honest = {"frontend", "batch"};
  // Pre-fault window [warmup, FaultStart): the same spec truncated just
  // before the faults activate — identical trajectory, clean stats.
  const ColocationSimResult PreWindow =
      runOnce(chaosTenants(), {}, 4.0, FaultStart);
  // Post-fault window [FaultStart, Duration): warmup masks everything
  // before the faults, so the stats cover only life under containment.
  const ColocationSimResult PostWindow =
      runOnce(chaosTenants(), {}, FaultStart);
  Numbers.AttainmentRetainedFraction =
      attainmentRetained(weightedAttainmentOf(PreWindow, Honest),
                         weightedAttainmentOf(PostWindow, Honest));
  return Numbers;
}

//===----------------------------------------------------------------------===//
// End-to-end harness timing
//===----------------------------------------------------------------------===//

std::string binaryDir(const char *Argv0) {
  const std::string Path(Argv0 ? Argv0 : "");
  const size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? std::string(".")
                                    : Path.substr(0, Slash);
}

/// Runs a sibling harness with stdout/stderr discarded; returns wall
/// seconds, or a negative value when the binary is missing or fails.
double harnessSeconds(const std::string &Dir, const std::string &Name,
                      const std::string &Args) {
  const std::string Cmd =
      Dir + "/" + Name + " " + Args + " > /dev/null 2>&1";
  const auto Start = SteadyClock::now();
  const int Status = std::system(Cmd.c_str());
  const double Sec = secondsSince(Start);
  if (Status != 0) {
    std::fprintf(stderr, "warning: %s exited with status %d\n", Name.c_str(),
                 Status);
    return -1.0;
  }
  return Sec;
}

//===----------------------------------------------------------------------===//
// Baseline comparison
//===----------------------------------------------------------------------===//

/// Dotted path lookup ("event_core.wheel_events_per_sec").
const JsonValue *lookupPath(const JsonValue &Root, const std::string &Path) {
  const JsonValue *V = &Root;
  size_t Begin = 0;
  while (Begin <= Path.size()) {
    const size_t Dot = Path.find('.', Begin);
    const std::string Key =
        Path.substr(Begin, Dot == std::string::npos ? Dot : Dot - Begin);
    V = V->get(Key);
    if (!V)
      return nullptr;
    if (Dot == std::string::npos)
      return V;
    Begin = Dot + 1;
  }
  return nullptr;
}

struct GatedMetric {
  const char *Path;
  /// True when larger is better (throughput); false for wall times.
  bool HigherIsBetter;
};

constexpr GatedMetric GatedMetrics[] = {
    {"event_core.wheel_events_per_sec", true},
    {"sims.pipeline_items_per_sec", true},
    {"sims.nest_transactions_per_sec", true},
    {"sims.colocation_items_per_sec", true},
    // Simulated-time robustness metrics (see recoveryMetrics): gated
    // directionally like everything else, but deterministic, so any
    // drift is a protocol change rather than machine noise.
    {"recovery.time_to_recover_seconds", false},
    {"recovery.attainment_retained_fraction", true},
    // Simulated-time warm-start ablation: cold/hinted completion ratio
    // of the what-if scenario. Deterministic; a drop means the
    // trace->recommend->hint->seed loop stopped paying.
    {"whatif.warm_start_speedup", true},
    // Sharded-engine throughput at the widest sweep point, and the
    // 8-over-1 speedup. The speedup is gateable now that the thread
    // team auto-sizes to the host (ShardedSimOptions::Threads = 0): an
    // 8-shard run multiplexes onto however many cores exist instead of
    // thrashing eight blocked threads through the barrier, so the ratio
    // must not fall below ~1.0 on any host.
    {"shard_scaling.events_per_sec_8", true},
    {"shard_scaling.speedup_8_over_1", true},
    // Recursive task runtime: spawn/acquire throughput through the
    // work-stealing deques, and its advantage over routing every spawn
    // through the central mutex queue.
    {"task_runtime.steal_tasks_per_sec", true},
    {"task_runtime.steal_speedup_over_central", true},
    {"end_to_end.fig2_transcode_seconds", false},
    {"end_to_end.fig11_response_time_seconds", false},
};

/// Compares \p Current against \p Baseline; returns false when any gated
/// metric regressed past \p Tolerance. Metrics missing from either side
/// (e.g. skipped end-to-end runs) are reported and skipped.
bool checkAgainstBaseline(const JsonValue &Current, const JsonValue &Baseline,
                          double Tolerance) {
  bool Ok = true;
  for (const GatedMetric &M : GatedMetrics) {
    const JsonValue *Cur = lookupPath(Current, M.Path);
    const JsonValue *Base = lookupPath(Baseline, M.Path);
    if (!Cur || !Cur->isNumber() || !Base || !Base->isNumber()) {
      std::printf("[perf skip] %s: missing from current or baseline\n",
                  M.Path);
      continue;
    }
    const double C = Cur->asDouble();
    const double B = Base->asDouble();
    if (B <= 0.0 || C < 0.0) {
      std::printf("[perf skip] %s: non-positive baseline or failed run\n",
                  M.Path);
      continue;
    }
    const double Ratio = C / B;
    const bool Regressed = M.HigherIsBetter ? Ratio < 1.0 - Tolerance
                                            : Ratio > 1.0 + Tolerance;
    std::printf("[perf %s] %s: %.4g vs baseline %.4g (%.2fx)\n",
                Regressed ? "FAIL" : "OK  ", M.Path, C, B, Ratio);
    Ok &= !Regressed;
  }
  return Ok;
}

bool writeJsonFile(const JsonValue &V, const std::string &Path) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  if (!OS) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  OS << V.dump() << "\n";
  return OS.good();
}

std::optional<JsonValue> readJsonFile(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  std::string Error;
  std::optional<JsonValue> V = JsonValue::parse(Buf.str(), &Error);
  if (!V)
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
  return V;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options(
      "Platform performance suite: event-core dispatch rate, simulator "
      "items/sec, tracing overhead, and end-to-end harness wall times; "
      "writes BENCH_perf.json and optionally gates against a baseline");
  addCommonOptions(Options);
  Options.addString("output", DOPE_SOURCE_DIR "/BENCH_perf.json",
                    "where to write the results JSON");
  Options.addString("baseline", "",
                    "baseline JSON to gate against (empty = no gating)");
  Options.addFlag("write-baseline",
                  "also write results to the --baseline path");
  Options.addDouble("tolerance", 0.25,
                    "allowed fractional regression per gated metric");
  Options.addFlag("skip-e2e",
                  "skip the end-to-end figure harness timings");
  parseOrExit(Options, Argc, Argv);

  const bool Csv = Options.getFlag("csv");
  const bool Quick = Options.getFlag("quick");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  const uint64_t Seed = static_cast<uint64_t>(Options.getInt("seed"));

  const uint64_t ChurnTarget = Quick ? 200000 : 2000000;
  const uint64_t PipelineItems = Quick ? 800 : 4000;
  const uint64_t NestTransactions = Quick ? 400 : 2000;
  const double ColocationDuration = Quick ? 30.0 : 120.0;

  JsonValue Out = JsonValue::makeObject();
  Out.set("schema", JsonValue("dope-perf-suite-v1"));
  Out.set("quick", JsonValue(Quick));

  // Event core: wheel vs reference heap on the same churn schedule.
  const unsigned ChurnReps = Quick ? 2 : 3;
  uint64_t WheelDispatched = 0, HeapDispatched = 0;
  const double WheelRate = measureChurnEventsPerSec<EventQueue>(
      ChurnTarget, ChurnReps, WheelDispatched);
  const double HeapRate = measureChurnEventsPerSec<ReferenceEventQueue>(
      ChurnTarget, ChurnReps, HeapDispatched);
  if (WheelDispatched != HeapDispatched)
    std::fprintf(stderr,
                 "warning: dispatch counts diverged (wheel %llu, heap %llu)\n",
                 static_cast<unsigned long long>(WheelDispatched),
                 static_cast<unsigned long long>(HeapDispatched));
  JsonValue EventCore = JsonValue::makeObject();
  EventCore.set("dispatches", JsonValue(WheelDispatched));
  EventCore.set("wheel_events_per_sec", JsonValue(WheelRate));
  EventCore.set("heap_events_per_sec", JsonValue(HeapRate));
  EventCore.set("speedup",
                JsonValue(HeapRate > 0.0 ? WheelRate / HeapRate : 0.0));
  Out.set("event_core", std::move(EventCore));

  // Simulator throughput.
  const double PipelineRate = pipelineItemsPerSec(PipelineItems, Contexts, Seed);
  const double NestUntracedSec =
      nestRunSeconds(NestTransactions, Contexts, Seed, nullptr);
  const double NestRate = NestUntracedSec > 0.0
                              ? static_cast<double>(NestTransactions) /
                                    NestUntracedSec
                              : 0.0;
  const double ColocationRate =
      colocationItemsPerSec(ColocationDuration, Contexts, Seed);
  JsonValue Sims = JsonValue::makeObject();
  Sims.set("pipeline_items_per_sec", JsonValue(PipelineRate));
  Sims.set("nest_transactions_per_sec", JsonValue(NestRate));
  Sims.set("colocation_items_per_sec", JsonValue(ColocationRate));
  Out.set("sims", std::move(Sims));

  // Lease-protocol recovery (deterministic simulated-time metrics).
  const double RecoveryDuration = Quick ? 80.0 : 160.0;
  const RecoveryNumbers Rec = recoveryMetrics(RecoveryDuration, Contexts, Seed);
  JsonValue Recovery = JsonValue::makeObject();
  Recovery.set("time_to_recover_seconds", JsonValue(Rec.TimeToRecoverSeconds));
  Recovery.set("attainment_retained_fraction",
               JsonValue(Rec.AttainmentRetainedFraction));
  Out.set("recovery", std::move(Recovery));

  // Warm-start ablation headline (deterministic simulated time): how
  // much sooner a what-if-hinted FDP finishes the scenario stream than
  // a cold one. Gated — a drop means the hint derivation or the seeding
  // path stopped paying.
  const double WarmSpeedup = warmStartSpeedup(Quick ? 2000 : 8000);
  JsonValue WhatIf = JsonValue::makeObject();
  WhatIf.set("warm_start_speedup", JsonValue(WarmSpeedup));
  Out.set("whatif", std::move(WhatIf));

  // Task runtime: the steal-deque scheduling fabric against the central
  // mutex queue on an identical splitting tree. Both the absolute rate
  // and the speedup are gated; the ISSUE's floor (steal >= 1.5x central
  // at 8 threads) is enforced separately below when gating is on.
  const unsigned RuntimeThreads = 8;
  const uint64_t RuntimeLeaves = Quick ? (1ull << 15) : (1ull << 17);
  const double StealRate =
      stealTreeTasksPerSec(RuntimeThreads, RuntimeLeaves, Seed);
  const double CentralRate =
      centralTreeTasksPerSec(RuntimeThreads, RuntimeLeaves);
  const double StealSpeedup =
      CentralRate > 0.0 ? StealRate / CentralRate : 0.0;
  JsonValue TaskRuntime = JsonValue::makeObject();
  TaskRuntime.set("threads", JsonValue(uint64_t(RuntimeThreads)));
  TaskRuntime.set("tasks", JsonValue(2 * RuntimeLeaves - 1));
  TaskRuntime.set("steal_tasks_per_sec", JsonValue(StealRate));
  TaskRuntime.set("central_tasks_per_sec", JsonValue(CentralRate));
  TaskRuntime.set("steal_speedup_over_central", JsonValue(StealSpeedup));
  Out.set("task_runtime", std::move(TaskRuntime));

  // Shard scaling: the same many-tenant colocation model on the sharded
  // engine at 1/2/4/8 shards. Results are bit-identical across shard
  // counts (the shard suite proves that), so events/s ratios are pure
  // engine scaling. Both the 8-shard rate and the 8-over-1 speedup are
  // gated: with the auto-sized thread team the speedup no longer
  // depends on the runner's core count staying above the shard count.
  // 48 tenants even in quick mode: at 24, an 8-shard partition leaves
  // each shard only three tenants of per-step work against the fixed
  // per-step cost every shard pays, which drowns the scaling signal in
  // call overhead on small hosts.
  const unsigned ScaleTenants = 48;
  const double ScaleDuration = 40.0;
  JsonValue ShardScaling = JsonValue::makeObject();
  ShardScaling.set("tenants", JsonValue(uint64_t(ScaleTenants)));
  double ShardRate1 = 0.0, ShardRate8 = 0.0;
  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    const double Rate =
        shardScaleEventsPerSec(ScaleTenants, ScaleDuration, Shards, Seed);
    ShardScaling.set("events_per_sec_" + std::to_string(Shards),
                     JsonValue(Rate));
    if (Shards == 1)
      ShardRate1 = Rate;
    if (Shards == 8)
      ShardRate8 = Rate;
  }
  const double ShardSpeedup = ShardRate1 > 0.0 ? ShardRate8 / ShardRate1 : 0.0;
  ShardScaling.set("speedup_8_over_1", JsonValue(ShardSpeedup));
  Out.set("shard_scaling", std::move(ShardScaling));

  // Tracing overhead: the identical nest run with a sink attached,
  // relative to the untraced run above; draining and JSONL export are
  // timed separately since they happen off the simulated hot path.
  Tracer Sink(1 << 20);
  const double TracedSec =
      nestRunSeconds(NestTransactions, Contexts, Seed, &Sink);
  const auto ExportStart = SteadyClock::now();
  std::vector<TraceRecord> Records = Sink.drain();
  std::ostringstream TraceOut;
  writeTraceJsonl(Records, TraceOut);
  const double ExportSec = secondsSince(ExportStart);
  const double TracingOverhead =
      NestUntracedSec > 0.0 ? (TracedSec - NestUntracedSec) / NestUntracedSec
                            : 0.0;
  JsonValue Tracing = JsonValue::makeObject();
  Tracing.set("untraced_seconds", JsonValue(NestUntracedSec));
  Tracing.set("traced_seconds", JsonValue(TracedSec));
  Tracing.set("overhead_fraction", JsonValue(TracingOverhead));
  Tracing.set("export_seconds", JsonValue(ExportSec));
  Tracing.set("records_exported", JsonValue(uint64_t(Records.size())));
  Tracing.set("jsonl_bytes", JsonValue(uint64_t(TraceOut.str().size())));
  Out.set("tracing", std::move(Tracing));

  // End-to-end harnesses, located next to this binary.
  double Fig2Sec = -1.0, Fig11Sec = -1.0;
  if (!Options.getFlag("skip-e2e")) {
    const std::string Dir = binaryDir(Argv[0]);
    const std::string Common = Quick ? "--quick" : "";
    Fig2Sec = harnessSeconds(Dir, "fig2_transcode", Common);
    Fig11Sec = harnessSeconds(Dir, "fig11_response_time", Common);
    JsonValue E2e = JsonValue::makeObject();
    if (Fig2Sec >= 0.0)
      E2e.set("fig2_transcode_seconds", JsonValue(Fig2Sec));
    if (Fig11Sec >= 0.0)
      E2e.set("fig11_response_time_seconds", JsonValue(Fig11Sec));
    Out.set("end_to_end", std::move(E2e));
  }

  // Human-readable summary.
  Table T({"metric", "value"});
  T.addRow({"event core wheel (events/s)", Table::formatDouble(WheelRate, 0)});
  T.addRow({"event core heap (events/s)", Table::formatDouble(HeapRate, 0)});
  T.addRow({"event core speedup",
            Table::formatDouble(HeapRate > 0.0 ? WheelRate / HeapRate : 0.0,
                                2)});
  T.addRow({"pipeline sim (items/s)", Table::formatDouble(PipelineRate, 0)});
  T.addRow({"nest sim (transactions/s)", Table::formatDouble(NestRate, 0)});
  T.addRow(
      {"colocation sim (items/s)", Table::formatDouble(ColocationRate, 0)});
  T.addRow({"arbiter recovery time (sim s)",
            Table::formatDouble(Rec.TimeToRecoverSeconds, 2)});
  T.addRow({"attainment retained (fraction)",
            Table::formatDouble(Rec.AttainmentRetainedFraction, 3)});
  T.addRow({"warm-start speedup (cold/hinted)",
            Table::formatDouble(WarmSpeedup, 3)});
  T.addRow({"steal runtime (tasks/s)", Table::formatDouble(StealRate, 0)});
  T.addRow(
      {"central runtime (tasks/s)", Table::formatDouble(CentralRate, 0)});
  T.addRow({"steal speedup over central",
            Table::formatDouble(StealSpeedup, 2)});
  T.addRow({"sharded colocation 1 shard (events/s)",
            Table::formatDouble(ShardRate1, 0)});
  T.addRow({"sharded colocation 8 shards (events/s)",
            Table::formatDouble(ShardRate8, 0)});
  T.addRow({"shard speedup 8/1", Table::formatDouble(ShardSpeedup, 2)});
  T.addRow({"tracing run overhead", Table::formatDouble(TracingOverhead, 3)});
  T.addRow({"trace export (s)", Table::formatDouble(ExportSec, 4)});
  if (Fig2Sec >= 0.0)
    T.addRow({"fig2_transcode wall (s)", Table::formatDouble(Fig2Sec, 2)});
  if (Fig11Sec >= 0.0)
    T.addRow(
        {"fig11_response_time wall (s)", Table::formatDouble(Fig11Sec, 2)});
  emitTable("Platform performance suite", T, Csv);

  const std::string OutputPath = Options.getString("output");
  if (!writeJsonFile(Out, OutputPath))
    return 1;
  std::printf("wrote %s\n", OutputPath.c_str());

  const std::string BaselinePath = Options.getString("baseline");
  bool Ok = true;
  if (!BaselinePath.empty()) {
    if (Options.getFlag("write-baseline")) {
      if (!writeJsonFile(Out, BaselinePath))
        return 1;
      std::printf("wrote baseline %s\n", BaselinePath.c_str());
    } else if (std::optional<JsonValue> Baseline =
                   readJsonFile(BaselinePath)) {
      Ok = checkAgainstBaseline(Out, *Baseline,
                                Options.getDouble("tolerance"));
      // Absolute floor, independent of the baseline: the steal deques
      // must beat the central queue by 1.5x at 8 threads (acceptance
      // criterion of the recursive-runtime work).
      const bool FloorOk = StealSpeedup >= 1.5;
      std::printf("[perf %s] task_runtime.steal_speedup_over_central: "
                  "%.2f vs floor 1.50\n",
                  FloorOk ? "OK  " : "FAIL", StealSpeedup);
      Ok &= FloorOk;
    } else {
      std::fprintf(stderr, "error: cannot read baseline %s\n",
                   BaselinePath.c_str());
      return 1;
    }
  }
  return Ok ? 0 : 1;
}

# Empty dependencies file for dope_core.
# This may be replaced when dependencies are built.

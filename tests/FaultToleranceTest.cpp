//===- tests/FaultToleranceTest.cpp - Executive failure domains ------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the executive's failure model: throwing functors become
/// TaskStatus::Failed from Dope::wait (never std::terminate), FiniCBs run
/// exactly once on the failure path, the per-descriptor RetryPolicy
/// retries transient faults, and the quiesce watchdog degrades a stuck
/// region instead of deadlocking it.
///
//===----------------------------------------------------------------------===//

#include "core/Builders.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <stdexcept>

using namespace dope;

namespace {

TEST(FaultTolerance, ThrowingFunctorFailsRunWithExactlyOnceFini) {
  TaskGraph Graph;
  std::atomic<int> FiniCount{0};
  Task *Boom = Graph.createTask(
      "boom",
      [](TaskRuntime &) -> TaskStatus {
        throw std::runtime_error("kaboom");
      },
      LoadFn(), Graph.seqDescriptor(), HookFn(),
      [&] { FiniCount.fetch_add(1); });
  ParDescriptor *Root = Graph.createRegion({Boom});

  DopeOptions Opts;
  Opts.MaxThreads = 2;
  std::unique_ptr<Dope> D = Dope::create(Root, std::move(Opts));
  EXPECT_EQ(D->wait(), TaskStatus::Failed);
  EXPECT_EQ(D->status(), TaskStatus::Failed);

  std::optional<TaskFailure> Cause = D->failure();
  ASSERT_TRUE(Cause.has_value());
  EXPECT_EQ(Cause->TaskName, "boom");
  EXPECT_EQ(Cause->Message, "kaboom");
  EXPECT_EQ(Cause->Attempts, 1u);
  EXPECT_GE(D->failureLog().failures(), 1u);
  EXPECT_EQ(FiniCount.load(), 1);
}

TEST(FaultTolerance, FunctorReportedFailureFailsRun) {
  TaskGraph Graph;
  Task *T = Graph.createTask(
      "reporter", [](TaskRuntime &) { return TaskStatus::Failed; },
      LoadFn(), Graph.seqDescriptor());
  ParDescriptor *Root = Graph.createRegion({T});

  DopeOptions Opts;
  Opts.MaxThreads = 2;
  std::unique_ptr<Dope> D = Dope::create(Root, std::move(Opts));
  EXPECT_EQ(D->wait(), TaskStatus::Failed);
  std::optional<TaskFailure> Cause = D->failure();
  ASSERT_TRUE(Cause.has_value());
  EXPECT_EQ(Cause->TaskName, "reporter");
}

TEST(FaultTolerance, RetryPolicyRecoversTransientFault) {
  TaskGraph Graph;
  std::atomic<int> Calls{0};
  TaskDescriptor *Desc = Graph.seqDescriptor();
  Desc->setRetryPolicy({/*MaxAttempts=*/3, /*BackoffSeconds=*/0.0});
  Task *Flaky = Graph.createTask(
      "flaky",
      [&](TaskRuntime &) -> TaskStatus {
        if (Calls.fetch_add(1) < 2)
          throw std::runtime_error("transient");
        return TaskStatus::Finished;
      },
      LoadFn(), Desc);
  ParDescriptor *Root = Graph.createRegion({Flaky});

  DopeOptions Opts;
  Opts.MaxThreads = 2;
  std::unique_ptr<Dope> D = Dope::create(Root, std::move(Opts));
  EXPECT_EQ(D->wait(), TaskStatus::Finished);
  EXPECT_EQ(Calls.load(), 3);
  EXPECT_EQ(D->failureLog().retries(), 2u);
  EXPECT_EQ(D->failureLog().failures(), 0u);
  EXPECT_FALSE(D->failure().has_value());
}

TEST(FaultTolerance, RetryPolicyExhaustionFailsWithAttemptCount) {
  TaskGraph Graph;
  std::atomic<int> Calls{0};
  TaskDescriptor *Desc = Graph.seqDescriptor();
  Desc->setRetryPolicy({/*MaxAttempts=*/2, /*BackoffSeconds=*/0.0});
  Task *Doomed = Graph.createTask(
      "doomed",
      [&](TaskRuntime &) -> TaskStatus {
        Calls.fetch_add(1);
        throw std::runtime_error("permanent");
      },
      LoadFn(), Desc);
  ParDescriptor *Root = Graph.createRegion({Doomed});

  DopeOptions Opts;
  Opts.MaxThreads = 2;
  std::unique_ptr<Dope> D = Dope::create(Root, std::move(Opts));
  EXPECT_EQ(D->wait(), TaskStatus::Failed);
  EXPECT_EQ(Calls.load(), 2);
  EXPECT_EQ(D->failureLog().retries(), 1u);
  std::optional<TaskFailure> Cause = D->failure();
  ASSERT_TRUE(Cause.has_value());
  EXPECT_EQ(Cause->Attempts, 2u);
  EXPECT_EQ(Cause->Message, "permanent");
}

TEST(FaultTolerance, PipelineStageFailurePropagatesAndDrains) {
  // A throwing middle stage must fail the whole run: the executive
  // requests a global suspend, the source's FiniCB closes its queue, the
  // survivors drain to closure, and Dope::wait reports FAILED with the
  // stage as the cause — no deadlock, no terminate.
  TaskGraph Graph;
  std::atomic<int> Next{0};
  std::atomic<int> Consumed{0};
  constexpr int Items = 200;

  PipelineBuilder B(Graph);
  B.queueCapacity(8);
  B.source<int>("gen", [&]() -> std::optional<int> {
    const int I = Next.fetch_add(1);
    if (I >= Items)
      return std::nullopt;
    return I;
  });
  B.stage<int, int>("explode", [](int X) -> int {
    if (X == 50)
      throw std::runtime_error("stage blew up");
    return X;
  });
  B.sink<int>("count", [&](int) { Consumed.fetch_add(1); });
  ParDescriptor *Pipe = B.build();

  DopeOptions Opts;
  Opts.MaxThreads = 4;
  std::unique_ptr<Dope> D = Dope::create(Pipe, std::move(Opts));
  EXPECT_EQ(D->wait(), TaskStatus::Failed);
  std::optional<TaskFailure> Cause = D->failure();
  ASSERT_TRUE(Cause.has_value());
  EXPECT_EQ(Cause->TaskName, "explode");
  EXPECT_EQ(Cause->Message, "stage blew up");
  EXPECT_LT(Consumed.load(), Items);
}

TEST(FaultTolerance, WatchdogDegradesStuckQuiesceInsteadOfDeadlocking) {
  // A stage replica wedges on an external resource and never observes the
  // drain. Without a watchdog, Dope::wait blocks forever; with one, the
  // epoch is abandoned: FiniCBs are forced (closing the downstream
  // queues so the sink drains out), an incident is recorded, and the
  // wedged thread is deducted from the live-context budget.
  std::mutex GateMutex;
  std::condition_variable GateCv;
  bool GateOpen = false;

  TaskGraph Graph;
  std::atomic<int> Next{0};
  constexpr int Items = 4;

  PipelineBuilder B(Graph);
  B.queueCapacity(8);
  B.source<int>("gen", [&]() -> std::optional<int> {
    const int I = Next.fetch_add(1);
    if (I >= Items)
      return std::nullopt;
    return I;
  });
  B.stage<int, int>("wedge", [&](int X) -> int {
    std::unique_lock<std::mutex> Lock(GateMutex);
    GateCv.wait(Lock, [&] { return GateOpen; });
    return X;
  });
  B.sink<int>("drop", [](int) {});
  ParDescriptor *Pipe = B.build();

  DopeOptions Opts;
  Opts.MaxThreads = 4;
  Opts.QuiesceDeadlineSeconds = 0.25;
  std::unique_ptr<Dope> D = Dope::create(Pipe, std::move(Opts));

  ASSERT_TRUE(D->waitFor(30.0)) << "watchdog failed to unwedge the run";
  EXPECT_EQ(D->status(), TaskStatus::Finished);
  EXPECT_GE(D->failureLog().incidents(), 1u);
  EXPECT_LT(D->liveThreads(), D->maxThreads());

  // Release the wedged replica before destroying the executive — the
  // thread-pool destructor joins all workers, including abandoned ones.
  {
    std::lock_guard<std::mutex> Lock(GateMutex);
    GateOpen = true;
  }
  GateCv.notify_all();
  D.reset();
}

} // namespace

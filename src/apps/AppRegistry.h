//===- apps/AppRegistry.h - Table 4 application inventory ------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application inventory of Table 4 in the paper: the six
/// applications enhanced with DoPE, the porting effort (lines of code
/// added/modified/deleted, fused-task code), the number of exposed loop
/// nesting levels, and DoPmin, the minimum inner extent at which a
/// transaction's execution time improves.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_APPS_APPREGISTRY_H
#define DOPE_APPS_APPREGISTRY_H

#include <string>
#include <vector>

namespace dope {

/// One Table 4 row.
struct AppInfo {
  std::string Name;
  std::string Description;
  unsigned LocAdded = 0;
  unsigned LocModified = 0;
  unsigned LocDeleted = 0;
  /// Lines of code in tasks created by fusing other tasks (0 = none).
  unsigned LocFused = 0;
  /// Total application size in lines of code.
  unsigned LocTotal = 0;
  /// Loop nesting levels exposed for the study.
  unsigned NestingLevels = 1;
  /// Minimum inner DoP extent with per-transaction speedup (0 = n/a).
  unsigned InnerDopMin = 0;
};

/// All six applications, in Table 4 order.
const std::vector<AppInfo> &appRegistry();

/// Looks up an application by name; nullptr when unknown.
const AppInfo *findApp(const std::string &Name);

} // namespace dope

#endif // DOPE_APPS_APPREGISTRY_H

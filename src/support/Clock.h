//===- support/Clock.h - Monotonic time helpers ---------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place in the repository allowed to read a wall clock.
///
/// DoPE's mechanisms must be pure functions of their monitored features,
/// and the replay/golden-trace suite (DESIGN.md §9) depends on it: every
/// other translation unit obtains time through these helpers (or through
/// a simulator's virtual clock), never through std::chrono clocks
/// directly. The `dope_lint` determinism check (DL001, DESIGN.md §12)
/// enforces the convention — this file and core/Clock.h are its only
/// whitelisted homes for raw clock reads.
///
/// (The paper's implementation uses per-thread clock_gettime timers;
/// steady-clock seconds serve the same role here.)
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_CLOCK_H
#define DOPE_SUPPORT_CLOCK_H

#include <chrono>
#include <thread>

namespace dope {

/// Seconds since an arbitrary fixed epoch, monotonic.
inline double monotonicSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Origin = Clock::now();
  return std::chrono::duration<double>(Clock::now() - Origin).count();
}

/// Converts a seconds count into the std::chrono duration the timed-wait
/// APIs (condition_variable::wait_for and friends) expect, so callers
/// need no raw std::chrono spelling of their own.
inline std::chrono::duration<double> secondsDuration(double Seconds) {
  return std::chrono::duration<double>(Seconds);
}

/// Sleeps the calling thread for the given number of seconds.
inline void sleepSeconds(double Seconds) {
  if (Seconds <= 0)
    return;
  std::this_thread::sleep_for(secondsDuration(Seconds));
}

} // namespace dope

#endif // DOPE_SUPPORT_CLOCK_H

// Clean fixture for the memory-order audit: every relaxed access and
// split-order CAS carries a `dope-lint: mo-proof(<anchor>)` marker
// pointing at the DESIGN.md section that argues its correctness, so
// MO001/MO002 stay silent and the tool exits 0.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <atomic>

struct Seq {
  std::atomic<unsigned> Head{0};

  void publish() { Head.store(1, std::memory_order_release); }

  unsigned snapshot() const {
    return Head.load(std::memory_order_relaxed); // dope-lint: mo-proof(design-16-spsc)
  }

  bool advance(unsigned &Expected) {
    // dope-lint: mo-proof(design-16-chaselev)
    return Head.compare_exchange_strong(Expected, Expected + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }
};

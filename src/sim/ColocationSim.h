//===- sim/ColocationSim.h - Multi-tenant platform simulator ---*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Co-scheduling simulator: several DoPE-style tenants (pipeline batch
/// jobs and nested-parallel servers) share one platform's hardware
/// contexts under a pluggable division policy:
///
///  - Arbiter: the platform arbiter re-divides threads each epoch from
///    observed per-tenant telemetry (the tentpole under test).
///  - StaticSplit: a fixed partition (the "provisioned silos" baseline).
///  - Oversubscribed: every tenant spawns as if it owned the machine
///    and the OS time-slices — the paper's Pthreads-OS baseline lifted
///    to multi-tenancy.
///
/// Unlike PipelineSim/NestServerSim (event-driven, single tenant), this
/// is a fixed-step fluid simulation: each tenant is reduced to a
/// capacity curve capacity(k) derived from its app model, and real
/// per-item FIFO queues preserve genuine wait-time distributions so p95
/// response and SLO attainment are meaningful. Deterministic under a
/// seed: arrivals are the only randomness.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_COLOCATIONSIM_H
#define DOPE_SIM_COLOCATIONSIM_H

#include "arbiter/Arbiter.h"
#include "metrics/TenantStats.h"
#include "sim/NestServerSim.h"
#include "sim/PipelineSim.h"
#include "support/Trace.h"
#include "workload/Arrivals.h"

#include <cstdint>
#include <vector>

namespace dope {

enum class ColocationPolicy {
  Arbiter,
  StaticSplit,
  Oversubscribed,
};

const char *toString(ColocationPolicy Policy);

/// One tenant of the shared platform: an arbitration contract plus an
/// application model the simulator reduces to capacity/latency curves.
struct ColocationTenantSpec {
  TenantSpec Tenant;

  enum class AppKind { Pipeline, NestServer };
  AppKind Kind = AppKind::Pipeline;

  /// Kind == Pipeline: capacity(k) via greedy stage replication.
  PipelineAppModel Pipeline;

  /// Kind == NestServer: capacity(k) via the best inner extent.
  NestAppModel Nest;

  /// Base offered load, items/second.
  double ArrivalRate = 1.0;

  /// Load-factor schedule modulating ArrivalRate (empty = constant).
  LoadTrace ArrivalSchedule;

  /// Arrivals finding this many queued items are shed; 0 disables.
  size_t AdmissionLimit = 0;
};

struct ColocationSimOptions {
  unsigned Contexts = 24;
  uint64_t Seed = 42;
  double DurationSeconds = 300.0;

  /// Fluid-step quantum.
  double StepSeconds = 0.05;

  /// Statistics ignore completions before this time.
  double WarmupSeconds = 0.0;

  ColocationPolicy Policy = ColocationPolicy::Arbiter;

  /// Arbiter policy configuration (Trace is wired by the sim;
  /// TotalThreads is overridden with Contexts).
  ArbiterOptions Arbiter;

  /// Capacity lost by a tenant while it quiesces into a changed lease.
  double ReconfigPauseSeconds = 0.1;

  /// StaticSplit: per-tenant thread shares; empty = equal split.
  std::vector<unsigned> StaticShares;

  /// Oversubscribed: contention penalty per unit of oversubscription.
  double OversubPenalty = 0.15;

  /// Optional trace sink (lease decisions, per-epoch counters). The sim
  /// stamps records with virtual time.
  Tracer *TraceSink = nullptr;
};

struct ColocationSimResult {
  std::vector<TenantStats> Tenants;
  FairnessSummary Fairness;
  uint64_t LeaseChanges = 0;
  double DurationSeconds = 0.0;
};

class ColocationSim {
public:
  ColocationSim(std::vector<ColocationTenantSpec> Tenants,
                ColocationSimOptions Options);

  ColocationSimResult run();

  /// Sustainable completions/second of \p Spec's app given \p Threads —
  /// exposed for tests and for sizing scenarios.
  static double capacity(const ColocationTenantSpec &Spec, unsigned Threads);

  /// Intrinsic (no-queueing) per-item latency at \p Threads.
  static double serviceLatency(const ColocationTenantSpec &Spec,
                               unsigned Threads);

private:
  std::vector<ColocationTenantSpec> Specs;
  ColocationSimOptions Opts;
};

} // namespace dope

#endif // DOPE_SIM_COLOCATIONSIM_H

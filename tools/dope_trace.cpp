//===- tools/dope_trace.cpp - Trace inspection and golden regen ------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line companion of the tracing subsystem:
///
///   dope_trace dump <trace.jsonl> [--kind <k>[,<k>...]] [--chrome <out>]
///       Prints a trace as a readable table, or converts it to Chrome
///       trace_event JSON (load in chrome://tracing or Perfetto).
///       --kind keeps only the named record kinds (the names stats
///       prints, e.g. --kind begin,end for task instances).
///
///   dope_trace stats <trace.jsonl>
///       Record counts per kind, time span, per-thread breakdown.
///
///   dope_trace diff <expected.decisions.jsonl> <actual.decisions.jsonl>
///       Compares two replay decision sequences; exit 1 and a report
///       naming the first divergent decision when they differ.
///
///   dope_trace replay --stream <file> --mechanism <name> [--out <file>]
///       Replays a recorded feature stream through a canonical mechanism
///       and writes the decision sequence (stdout by default).
///
///   dope_trace regen --dir <dir>
///       Regenerates the golden conformance suite: the committed feature
///       streams, the expected decision sequences of all seven
///       mechanisms (including the lease-step cases replaying arbiter
///       revocations through a mechanism), and the lease grant/revoke
///       trace of the canonical arbiter colocation scenario. Run after
///       an intentional mechanism or arbiter change, then review the
///       diffs like any other code change.
///
//===----------------------------------------------------------------------===//

#include "arbiter/Scenario.h"
#include "core/Replay.h"
#include "mechanisms/Factory.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace dope;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  dope_trace dump <trace.jsonl> [--kind <k>[,<k>...]] "
      "[--chrome <out.json>]\n"
      "  dope_trace stats <trace.jsonl>\n"
      "  dope_trace diff <expected.jsonl> <actual.jsonl>\n"
      "  dope_trace replay --stream <file> --mechanism <name> "
      "[--out <file>]\n"
      "  dope_trace regen --dir <dir>\n");
  return 2;
}

/// Traces come from crashed runs as often as clean ones, so loading is
/// lenient: malformed lines (torn tails, interleaved writes, unknown
/// kinds from newer builds) are skipped with a count instead of failing
/// the whole file. Callers exit 3 when anything was skipped so scripts
/// notice the gap while humans still get the intact records.
std::optional<std::vector<TraceRecord>> loadTrace(const std::string &Path,
                                                  TraceReadStats &Stats) {
  std::ifstream IS(Path);
  if (!IS) {
    std::fprintf(stderr, "dope_trace: cannot open '%s'\n", Path.c_str());
    return std::nullopt;
  }
  std::vector<TraceRecord> Records = readTraceJsonlLenient(IS, &Stats);
  if (Stats.Skipped != 0)
    std::fprintf(stderr,
                 "dope_trace: %s: skipped %llu malformed line(s), first at "
                 "line %llu (%s); kept %llu\n",
                 Path.c_str(), static_cast<unsigned long long>(Stats.Skipped),
                 static_cast<unsigned long long>(Stats.FirstSkippedLine),
                 Stats.FirstError.c_str(),
                 static_cast<unsigned long long>(Stats.Parsed));
  return Records;
}

/// Exit code for commands that read a trace: corruption is reported but
/// not fatal — 0 clean, 3 when records were skipped.
int traceExit(const TraceReadStats &Stats) {
  return Stats.Skipped != 0 ? 3 : 0;
}

//===----------------------------------------------------------------------===//
// dump / stats
//===----------------------------------------------------------------------===//

int cmdDump(const std::vector<std::string> &Args) {
  if (Args.empty())
    return usage();
  std::string ChromeOut, KindList;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--chrome" && I + 1 < Args.size())
      ChromeOut = Args[++I];
    else if (Args[I] == "--kind" && I + 1 < Args.size())
      KindList = Args[++I];
    else
      return usage();
  }

  TraceReadStats Stats;
  std::optional<std::vector<TraceRecord>> Records = loadTrace(Args[0], Stats);
  if (!Records)
    return 1;

  if (!KindList.empty()) {
    std::vector<TraceKind> Kinds;
    std::stringstream KS(KindList);
    std::string Token;
    while (std::getline(KS, Token, ',')) {
      std::optional<TraceKind> Kind = traceKindFromString(Token);
      if (!Kind) {
        std::fprintf(stderr, "dope_trace: unknown record kind '%s'\n",
                     Token.c_str());
        return 1;
      }
      Kinds.push_back(*Kind);
    }
    std::vector<TraceRecord> Kept;
    for (TraceRecord &R : *Records)
      for (TraceKind K : Kinds)
        if (R.Kind == K) {
          Kept.push_back(std::move(R));
          break;
        }
    *Records = std::move(Kept);
  }

  if (!ChromeOut.empty()) {
    std::ofstream OS(ChromeOut);
    if (!OS) {
      std::fprintf(stderr, "dope_trace: cannot open '%s'\n",
                   ChromeOut.c_str());
      return 1;
    }
    writeChromeTrace(*Records, OS);
    std::printf("wrote %zu events to %s\n", Records->size(),
                ChromeOut.c_str());
    return traceExit(Stats);
  }

  std::printf("%12s  %-12s %3s  %-24s %10s %10s  %s\n", "time", "kind",
              "tid", "name", "a", "b", "detail");
  for (const TraceRecord &R : *Records)
    std::printf("%12.6f  %-12s %3u  %-24s %10.4g %10.4g  %s\n", R.Time,
                toString(R.Kind), R.Tid, R.Name.c_str(), R.A, R.B,
                R.Detail.c_str());
  return traceExit(Stats);
}

int cmdStats(const std::vector<std::string> &Args) {
  if (Args.empty())
    return usage();
  TraceReadStats Stats;
  std::optional<std::vector<TraceRecord>> Records = loadTrace(Args[0], Stats);
  if (!Records)
    return 1;
  if (Records->empty()) {
    std::printf("empty trace\n");
    return traceExit(Stats);
  }

  std::map<std::string, uint64_t> ByKind;
  std::map<uint32_t, uint64_t> ByTid;
  double MinT = Records->front().Time, MaxT = MinT;
  for (const TraceRecord &R : *Records) {
    ++ByKind[toString(R.Kind)];
    ++ByTid[R.Tid];
    MinT = std::min(MinT, R.Time);
    MaxT = std::max(MaxT, R.Time);
  }
  std::printf("%zu records over %.6f s [%.6f, %.6f]\n", Records->size(),
              MaxT - MinT, MinT, MaxT);
  std::printf("\nby kind:\n");
  for (const auto &[Kind, Count] : ByKind)
    std::printf("  %-12s %8llu\n", Kind.c_str(),
                static_cast<unsigned long long>(Count));
  std::printf("\nby thread:\n");
  for (const auto &[Tid, Count] : ByTid)
    std::printf("  tid %3u      %8llu\n", Tid,
                static_cast<unsigned long long>(Count));
  return traceExit(Stats);
}

//===----------------------------------------------------------------------===//
// diff
//===----------------------------------------------------------------------===//

std::optional<std::vector<ReplayDecision>>
loadDecisions(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS) {
    std::fprintf(stderr, "dope_trace: cannot open '%s'\n", Path.c_str());
    return std::nullopt;
  }
  std::string Error;
  bool TornTail = false;
  std::optional<std::vector<ReplayDecision>> Decisions =
      readDecisions(IS, &Error, &TornTail);
  if (!Decisions)
    std::fprintf(stderr, "dope_trace: %s: %s\n", Path.c_str(),
                 Error.c_str());
  else if (TornTail)
    std::fprintf(stderr,
                 "dope_trace: %s: torn final line dropped (writer died "
                 "mid-record); comparing the intact prefix\n",
                 Path.c_str());
  return Decisions;
}

int cmdDiff(const std::vector<std::string> &Args) {
  if (Args.size() != 2)
    return usage();
  std::optional<std::vector<ReplayDecision>> Expected =
      loadDecisions(Args[0]);
  std::optional<std::vector<ReplayDecision>> Actual = loadDecisions(Args[1]);
  if (!Expected || !Actual)
    return 1;
  if (std::optional<std::string> Report = diffDecisions(*Expected, *Actual)) {
    std::printf("%s\n", Report->c_str());
    return 1;
  }
  std::printf("decision sequences match (%zu decisions)\n", Expected->size());
  return 0;
}

//===----------------------------------------------------------------------===//
// Golden stream definitions
//===----------------------------------------------------------------------===//

// The canonical streams of the conformance suite. These are authored, not
// captured: each one scripts the observations that push its mechanisms
// through their interesting state transitions. Regenerate the committed
// files with `dope_trace regen --dir tests/golden` (or the trace-regen
// CMake target) after changing a definition or a mechanism.

/// Server-nest work-queue occupancy swinging light -> heavy -> light
/// (paper Sec. 2 / Fig. 2): drives WQT-H through both hysteresis toggles
/// and WQ-Linear down and back up the occupancy line.
FeatureStream makeNestLoadSwing() {
  FeatureStream S;
  S.Name = "nest-load-swing";
  S.Kind = FeatureStream::GraphKind::ServerNest;
  S.MaxThreads = 16;
  S.Stages = {{"server", true}};
  const double Occupancy[] = {2,  2,  2,  2, 2, 2, 12, 12, 12, 12,
                              12, 12, 5,  5, 1, 1, 1,  1,  1,  1};
  for (size_t I = 0; I != std::size(Occupancy); ++I) {
    ReplayStep Step;
    Step.Time = 0.25 * static_cast<double>(I + 1);
    Step.ExecTime = {1.0, 0.5};
    Step.Load = {Occupancy[I], Occupancy[I]};
    S.Steps.push_back(std::move(Step));
  }
  return S;
}

/// Two-stage pipeline with a 20x stage imbalance that later evens out,
/// plus a fused alternative: TBF fuses once the warm-up expires; TB
/// rebalances instead when the service times shift.
FeatureStream makePipelineImbalance() {
  FeatureStream S;
  S.Name = "pipeline-imbalance";
  S.Kind = FeatureStream::GraphKind::Pipeline;
  S.MaxThreads = 8;
  S.Stages = {{"decode", true}, {"encode", true}};
  S.FusedStages = {{"codec", true}};
  for (size_t I = 0; I != 13; ++I) {
    ReplayStep Step;
    Step.Time = 0.5 * static_cast<double>(I + 1);
    Step.ExecTime = I < 6 ? std::vector<double>{0.05, 1.0}
                          : std::vector<double>{0.5, 0.5};
    Step.Load = {1.0, 4.0};
    Step.FusedExecTime = {0.6};
    Step.FusedLoad = {2.0};
    S.Steps.push_back(std::move(Step));
  }
  return S;
}

/// Three-stage pipeline with constant service times: FDP's hill climb is
/// closed-loop through the extents themselves (capacity = extent / exec),
/// so the full search-accept-reject-converge staircase replays.
FeatureStream makePipelineSteady() {
  FeatureStream S;
  S.Name = "pipeline-steady";
  S.Kind = FeatureStream::GraphKind::Pipeline;
  S.MaxThreads = 8;
  S.Stages = {{"extract", true}, {"classify", true}, {"render", true}};
  for (size_t I = 0; I != 16; ++I) {
    ReplayStep Step;
    Step.Time = 0.5 * static_cast<double>(I + 1);
    Step.ExecTime = {0.2, 0.4, 0.3};
    Step.Load = {2.0, 3.0, 2.0};
    S.Steps.push_back(std::move(Step));
  }
  return S;
}

/// Per-stage load bursts moving through a three-stage pipeline: SEDA's
/// uncoordinated watermark controllers grow and shrink one thread at a
/// time, stage by stage.
FeatureStream makePipelineBursts() {
  FeatureStream S;
  S.Name = "pipeline-bursts";
  S.Kind = FeatureStream::GraphKind::Pipeline;
  S.MaxThreads = 12;
  S.Stages = {{"input", true}, {"filter", true}, {"output", true}};
  const std::vector<std::vector<double>> Loads = {
      {10, 0.5, 0.5}, {10, 0.5, 0.5}, {10, 0.5, 0.5}, {10, 0.5, 0.5},
      {0.5, 9, 0.5},  {0.5, 9, 0.5},  {0.5, 9, 0.5},  {0.5, 9, 0.5},
      {0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}, {0.5, 0.5, 0.5},
      {0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}};
  for (size_t I = 0; I != Loads.size(); ++I) {
    ReplayStep Step;
    Step.Time = 0.5 * static_cast<double>(I + 1);
    Step.ExecTime = {0.1, 0.1, 0.1};
    Step.Load = Loads[I];
    S.Steps.push_back(std::move(Step));
  }
  return S;
}

/// A power ramp crossing the budget (paper Fig. 14): TPC ramps the
/// bottleneck, overshoots the 100 W cap, backs off to the best feasible
/// configuration, explores its same-total neighbourhood, and settles.
FeatureStream makePipelinePowerRamp() {
  FeatureStream S;
  S.Name = "pipeline-power-ramp";
  S.Kind = FeatureStream::GraphKind::Pipeline;
  S.MaxThreads = 8;
  S.PowerBudgetWatts = 100.0;
  S.Stages = {{"mix", true}, {"sink", true}};
  const double Power[] = {50, 55, 70, 85, 105, 85, 90, 75, 85, 85, 85, 85};
  for (size_t I = 0; I != std::size(Power); ++I) {
    ReplayStep Step;
    Step.Time = 1.0 * static_cast<double>(I + 1);
    Step.Features = {{"SystemPower", Power[I]}};
    Step.ExecTime = {0.3, 0.5};
    Step.Load = {2.0, 3.0};
    S.Steps.push_back(std::move(Step));
  }
  return S;
}

/// A steady three-stage pipeline whose thread envelope steps down and
/// back up mid-stream — the arbiter revoking and then re-granting part
/// of the tenant's lease. TB must fold its balanced configuration under
/// the shrunken ceiling, then re-expand when the lease returns.
FeatureStream makePipelineLeaseSteps() {
  FeatureStream S;
  S.Name = "pipeline-lease-steps";
  S.Kind = FeatureStream::GraphKind::Pipeline;
  S.MaxThreads = 12;
  S.Stages = {{"split", true}, {"compress", true}, {"pack", true}};
  for (size_t I = 0; I != 18; ++I) {
    ReplayStep Step;
    Step.Time = 0.5 * static_cast<double>(I + 1);
    if (I == 6)
      Step.ThreadEnvelope = 5; // lease revoked: 12 -> 5
    else if (I == 12)
      Step.ThreadEnvelope = 10; // partial re-grant: 5 -> 10
    Step.ExecTime = {0.1, 0.4, 0.15};
    Step.Load = {2.0, 4.0, 2.0};
    S.Steps.push_back(std::move(Step));
  }
  return S;
}

/// A saturated server nest under the same treatment: WQT-H holds high
/// DoP while the queue is deep, gets squeezed to a 4-thread lease, and
/// recovers when the envelope re-opens.
FeatureStream makeNestLeaseSteps() {
  FeatureStream S;
  S.Name = "nest-lease-steps";
  S.Kind = FeatureStream::GraphKind::ServerNest;
  S.MaxThreads = 16;
  S.Stages = {{"server", true}};
  for (size_t I = 0; I != 20; ++I) {
    ReplayStep Step;
    Step.Time = 0.25 * static_cast<double>(I + 1);
    if (I == 8)
      Step.ThreadEnvelope = 4; // lease revoked: 16 -> 4
    else if (I == 14)
      Step.ThreadEnvelope = 16; // full lease restored
    Step.ExecTime = {1.0, 0.5};
    Step.Load = {10.0, 10.0};
    S.Steps.push_back(std::move(Step));
  }
  return S;
}

/// A work-stealing tree region walked through both grain faults: a
/// thrash phase (steal storm over tiny tasks) that the walker coarsens
/// out of, a plateau, then a drifted/starved phase (too few outstanding
/// tasks to feed the workers) it refines out of before re-converging.
FeatureStream makeTreeGrainWalk() {
  FeatureStream S;
  S.Name = "tree-grain-walk";
  S.Kind = FeatureStream::GraphKind::TaskTree;
  S.MaxThreads = 8;
  S.DefaultGrain = 64;
  S.Stages = {{"descend", true}};
  struct Obs {
    double StealRate;
    double MeanTask;
    double Load;
  };
  const Obs Phases[] = {
      // Thrash: grain doubles 64 -> 128 -> 256 -> 512 (extent also
      // snaps from the seed 1 to the 8-thread budget on the first
      // consult).
      {4000, 40e-6, 500},
      {4000, 40e-6, 500},
      {4000, 40e-6, 500},
      // In band: the walker converges and holds the plateau.
      {60, 350e-6, 64},
      {60, 350e-6, 64},
      // Task cost drifts past ReexploreDrift while the region starves
      // (load below 2x extent): the walk re-opens and the grain halves
      // 512 -> 256 -> 128.
      {40, 900e-6, 9},
      {40, 900e-6, 9},
      // Back in band at the finer grain: second plateau.
      {70, 450e-6, 80},
      {70, 450e-6, 80},
      {70, 450e-6, 80},
  };
  for (size_t I = 0; I != std::size(Phases); ++I) {
    ReplayStep Step;
    Step.Time = 0.5 * static_cast<double>(I + 1);
    Step.Features = {{"StealRate", Phases[I].StealRate},
                     {"MeanTaskSeconds", Phases[I].MeanTask}};
    Step.ExecTime = {Phases[I].MeanTask};
    Step.Load = {Phases[I].Load};
    S.Steps.push_back(std::move(Step));
  }
  return S;
}

/// The same tree region, healthy throughout, under a mid-stream lease
/// revocation and re-grant: the grain walker's plateau must re-open on
/// every budget move so the extent follows the envelope down to 3 and
/// back up to 8 while the grain stays put.
FeatureStream makeTreeGrainLeaseSteps() {
  FeatureStream S;
  S.Name = "tree-grain-lease-steps";
  S.Kind = FeatureStream::GraphKind::TaskTree;
  S.MaxThreads = 8;
  S.DefaultGrain = 128;
  S.Stages = {{"descend", true}};
  for (size_t I = 0; I != 9; ++I) {
    ReplayStep Step;
    Step.Time = 0.5 * static_cast<double>(I + 1);
    if (I == 3)
      Step.ThreadEnvelope = 3; // lease revoked: 8 -> 3
    else if (I == 6)
      Step.ThreadEnvelope = 8; // full lease restored
    Step.Features = {{"StealRate", 80.0}, {"MeanTaskSeconds", 500e-6}};
    Step.ExecTime = {500e-6};
    Step.Load = {100};
    S.Steps.push_back(std::move(Step));
  }
  return S;
}

std::optional<FeatureStream> makeStreamByName(const std::string &Name) {
  if (Name == "nest-load-swing")
    return makeNestLoadSwing();
  if (Name == "pipeline-imbalance")
    return makePipelineImbalance();
  if (Name == "pipeline-steady")
    return makePipelineSteady();
  if (Name == "pipeline-bursts")
    return makePipelineBursts();
  if (Name == "pipeline-power-ramp")
    return makePipelinePowerRamp();
  if (Name == "pipeline-lease-steps")
    return makePipelineLeaseSteps();
  if (Name == "nest-lease-steps")
    return makeNestLeaseSteps();
  if (Name == "tree-grain-walk")
    return makeTreeGrainWalk();
  if (Name == "tree-grain-lease-steps")
    return makeTreeGrainLeaseSteps();
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// replay / regen
//===----------------------------------------------------------------------===//

int cmdReplay(const std::vector<std::string> &Args) {
  std::string StreamPath, MechanismName, OutPath;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I] == "--stream" && I + 1 < Args.size())
      StreamPath = Args[++I];
    else if (Args[I] == "--mechanism" && I + 1 < Args.size())
      MechanismName = Args[++I];
    else if (Args[I] == "--out" && I + 1 < Args.size())
      OutPath = Args[++I];
    else
      return usage();
  }
  if (StreamPath.empty() || MechanismName.empty())
    return usage();

  std::ifstream IS(StreamPath);
  if (!IS) {
    std::fprintf(stderr, "dope_trace: cannot open '%s'\n",
                 StreamPath.c_str());
    return 1;
  }
  std::string Error;
  bool TornTail = false;
  std::optional<FeatureStream> Stream =
      readFeatureStream(IS, &Error, &TornTail);
  if (!Stream) {
    std::fprintf(stderr, "dope_trace: %s: %s\n", StreamPath.c_str(),
                 Error.c_str());
    return 1;
  }
  if (TornTail)
    std::fprintf(stderr,
                 "dope_trace: %s: torn final line dropped (writer died "
                 "mid-record); replaying the intact prefix\n",
                 StreamPath.c_str());
  std::unique_ptr<Mechanism> Mech = createMechanismByName(MechanismName);
  if (!Mech) {
    std::fprintf(stderr, "dope_trace: unknown mechanism '%s'\n",
                 MechanismName.c_str());
    return 1;
  }

  ReplayMechanismHarness Harness(std::move(*Stream));
  const ReplayResult Result = Harness.run(*Mech);
  if (Result.InvalidProposals)
    std::fprintf(stderr,
                 "dope_trace: warning: %u structurally invalid proposals\n",
                 Result.InvalidProposals);

  if (OutPath.empty()) {
    std::ostringstream OS;
    writeDecisions(Result.Decisions, OS);
    std::fputs(OS.str().c_str(), stdout);
    return 0;
  }
  std::ofstream OS(OutPath);
  if (!OS) {
    std::fprintf(stderr, "dope_trace: cannot open '%s'\n", OutPath.c_str());
    return 1;
  }
  writeDecisions(Result.Decisions, OS);
  std::printf("%s: %zu decisions -> %s\n", MechanismName.c_str(),
              Result.Decisions.size(), OutPath.c_str());
  return 0;
}

int cmdRegen(const std::vector<std::string> &Args) {
  std::string Dir;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I] == "--dir" && I + 1 < Args.size())
      Dir = Args[++I];
    else
      return usage();
  }
  if (Dir.empty())
    return usage();

  // Streams first (each exactly once, some serve several mechanisms).
  std::vector<std::string> StreamNames;
  for (const ConformanceCase &Case : conformanceCases()) {
    bool Seen = false;
    for (const std::string &Name : StreamNames)
      Seen |= Name == Case.StreamName;
    if (!Seen)
      StreamNames.push_back(Case.StreamName);
  }
  for (const std::string &Name : StreamNames) {
    std::optional<FeatureStream> Stream = makeStreamByName(Name);
    if (!Stream) {
      std::fprintf(stderr, "dope_trace: no definition for stream '%s'\n",
                   Name.c_str());
      return 1;
    }
    const std::string Path = Dir + "/" + Name + ".stream.jsonl";
    std::ofstream OS(Path);
    if (!OS) {
      std::fprintf(stderr, "dope_trace: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    writeFeatureStream(*Stream, OS);
    std::printf("stream   %-22s %4zu steps -> %s\n", Name.c_str(),
                Stream->Steps.size(), Path.c_str());
  }

  // Then the expected decision sequence of every mechanism.
  for (const ConformanceCase &Case : conformanceCases()) {
    std::optional<FeatureStream> Stream = makeStreamByName(Case.StreamName);
    std::unique_ptr<Mechanism> Mech =
        createMechanismByName(Case.MechanismName);
    if (!Stream || !Mech) {
      std::fprintf(stderr, "dope_trace: bad conformance case %s/%s\n",
                   Case.MechanismName, Case.StreamName);
      return 1;
    }
    ReplayMechanismHarness Harness(std::move(*Stream));
    const ReplayResult Result = Harness.run(*Mech);
    if (Result.InvalidProposals) {
      std::fprintf(stderr,
                   "dope_trace: %s proposed %u invalid configs on %s — "
                   "refusing to bless them as golden\n",
                   Case.MechanismName, Result.InvalidProposals,
                   Case.StreamName);
      return 1;
    }
    const std::string Path =
        Dir + "/" + std::string(Case.decisionsFile()) + ".decisions.jsonl";
    std::ofstream OS(Path);
    if (!OS) {
      std::fprintf(stderr, "dope_trace: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    writeDecisions(Result.Decisions, OS);
    std::printf("decision %-22s %4zu decisions (on %s) -> %s\n",
                Case.decisionsFile(), Result.Decisions.size(),
                Case.StreamName, Path.c_str());
  }

  // Finally the arbiter's own golden: the lease grant/revoke sequence of
  // the canonical colocation scenario, byte-identical under replay
  // (ArbiterConformanceTest re-runs the scenario and diffs).
  {
    Tracer Trace;
    const ArbiterScenario Scenario = makeCanonicalColocationScenario();
    runArbiterScenario(Scenario, &Trace);
    std::vector<TraceRecord> Leases;
    for (TraceRecord &R : Trace.drain())
      if (R.Kind == TraceKind::LeaseGrant || R.Kind == TraceKind::LeaseRevoke)
        Leases.push_back(std::move(R));
    const std::string Path = Dir + "/" + Scenario.Name + ".leases.jsonl";
    std::ofstream OS(Path);
    if (!OS) {
      std::fprintf(stderr, "dope_trace: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    writeTraceJsonl(Leases, OS);
    std::printf("leases   %-22s %4zu records -> %s\n", Scenario.Name.c_str(),
                Leases.size(), Path.c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  const std::string Command = Argv[1];
  std::vector<std::string> Args(Argv + 2, Argv + Argc);
  if (Command == "dump")
    return cmdDump(Args);
  if (Command == "stats")
    return cmdStats(Args);
  if (Command == "diff")
    return cmdDiff(Args);
  if (Command == "replay")
    return cmdReplay(Args);
  if (Command == "regen")
    return cmdRegen(Args);
  return usage();
}

//===- bench/ext_warmstart.cpp - Warm-start convergence ablation -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The warm-start ablation: does seeding a mechanism with the what-if
/// profiler's recommendation actually buy faster convergence, and at
/// what steady-state cost? Three measurements on the canonical what-if
/// pipeline scenario, all in deterministic virtual time:
///
///   1. Cold vs hinted FDP on one long item stream: completion time,
///      time to reach 90% of steady throughput, and the steady
///      throughput itself. The hint must converge faster at a steady
///      state no worse.
///
///   2. Warm restart: the same mechanism object re-run (run() resets
///      it). The hint survives reset by design — the second hinted run
///      must be as fast as the first, not degraded to cold.
///
///   3. Determinism: two identical hinted runs are bit-identical in
///      items, virtual time, and final extents.
///
///   4. Load step: the input mix shifts (compression turns 4x heavier,
///      moving the bottleneck off rank), invalidating the old optimum.
///      A worker restarted after the step either adapts from scratch or
///      is seeded with a hint the profiler computed from a short trace
///      of the stepped workload — the full offline loop again, at the
///      new operating point.
///
/// Exit status gates all three, so this doubles as a regression test
/// (bench.ext_warmstart). The headline ratio cold/hinted completion
/// time is the perf-suite metric whatif.warm_start_speedup.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "analysis/CriticalPath.h"
#include "analysis/Scenarios.h"
#include "analysis/TaskDag.h"
#include "analysis/WhatIf.h"
#include "core/WarmStart.h"
#include "mechanisms/Fdp.h"
#include "sim/PipelineSim.h"

#include <cstdio>

using namespace dope;
using namespace dope::bench;

namespace {

/// First virtual time the windowed throughput reaches 90% of the run's
/// steady state (mean over the final quarter).
double timeToConverge(const PipelineSimResult &R) {
  const TimeSeries &S = R.ThroughputSeries;
  if (S.empty())
    return R.TotalSeconds;
  const double Steady =
      S.meanOver(0.75 * R.TotalSeconds, R.TotalSeconds + 1.0);
  for (const TimeSeries::Point &P : S.points())
    if (P.Value >= 0.9 * Steady)
      return P.Time;
  return R.TotalSeconds;
}

double steadyThroughput(const PipelineSimResult &R) {
  return R.ThroughputSeries.meanOver(0.75 * R.TotalSeconds,
                                     R.TotalSeconds + 1.0);
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options("Warm-start ablation: cold vs what-if-hinted "
                       "mechanism convergence");
  addCommonOptions(Options);
  parseOrExit(Options, Argc, Argv);
  const bool Csv = Options.getFlag("csv");
  const bool Quick = Options.getFlag("quick");

  // The offline loop, exactly as dope_whatif runs it: trace the scenario
  // baseline, reconstruct the DAG, profile, recommend, derive the hint.
  const WhatIfPipelineScenario Scenario = whatifPipelineScenario();
  const auto [Baseline, Records] = runWhatifPipelineScenario(Scenario);
  const WhatIfModel Model = WhatIfModel::fromProfile(
      computeCriticalPath(TaskDag::build(Records)), Scenario.Opts.Contexts,
      Scenario.App.OversubPenalty, Scenario.App.ThreadOverheadPenalty);
  const std::vector<Recommendation> Recs =
      recommendExtents(Model, Scenario.Opts.Contexts, 1);
  if (Recs.empty()) {
    std::fprintf(stderr, "no recommendation from the scenario trace\n");
    return 1;
  }
  const WarmStartHint Hint = makeWarmStartHint("FDP", Recs.front());

  WhatIfPipelineScenario Long = Scenario;
  Long.Opts.NumItems = Quick ? 2000 : 8000;
  auto RunWith = [&](Mechanism *Mech) {
    PipelineSim Sim(Long.App, Long.Opts);
    return Sim.run(Mech, {});
  };

  // --- 1: cold vs hinted -------------------------------------------------
  FdpMechanism Cold;
  const PipelineSimResult ColdR = RunWith(&Cold);
  FdpMechanism Hinted;
  Hinted.seedWarmStart(Hint);
  const PipelineSimResult HintedR = RunWith(&Hinted);

  const double ColdConv = timeToConverge(ColdR);
  const double HintedConv = timeToConverge(HintedR);
  const double Speedup =
      HintedR.TotalSeconds > 0.0 ? ColdR.TotalSeconds / HintedR.TotalSeconds
                                 : 0.0;

  // --- 2: warm restart (same objects, run() resets them) -----------------
  const PipelineSimResult ColdR2 = RunWith(&Cold);
  const PipelineSimResult HintedR2 = RunWith(&Hinted);

  // --- 3: determinism ----------------------------------------------------
  FdpMechanism HintedTwin;
  HintedTwin.seedWarmStart(Hint);
  const PipelineSimResult TwinR = RunWith(&HintedTwin);

  // --- 4: load step ------------------------------------------------------
  WhatIfPipelineScenario Stepped = Scenario;
  Stepped.App.Stages[2].ServiceSeconds *= 4.0;
  const auto [SteppedBase, SteppedRecords] =
      runWhatifPipelineScenario(Stepped);
  (void)SteppedBase;
  const WhatIfModel SteppedModel = WhatIfModel::fromProfile(
      computeCriticalPath(TaskDag::build(SteppedRecords)),
      Stepped.Opts.Contexts, Stepped.App.OversubPenalty,
      Stepped.App.ThreadOverheadPenalty);
  const std::vector<Recommendation> SteppedRecs =
      recommendExtents(SteppedModel, Stepped.Opts.Contexts, 1);
  if (SteppedRecs.empty()) {
    std::fprintf(stderr, "no recommendation from the stepped trace\n");
    return 1;
  }
  const WarmStartHint SteppedHint =
      makeWarmStartHint("FDP", SteppedRecs.front());

  WhatIfPipelineScenario SteppedLong = Stepped;
  SteppedLong.Opts.NumItems = Long.Opts.NumItems;
  auto RunStepped = [&](Mechanism *Mech) {
    PipelineSim Sim(SteppedLong.App, SteppedLong.Opts);
    return Sim.run(Mech, {});
  };
  FdpMechanism StepCold;
  const PipelineSimResult StepColdR = RunStepped(&StepCold);
  FdpMechanism StepHinted;
  StepHinted.seedWarmStart(SteppedHint);
  const PipelineSimResult StepHintedR = RunStepped(&StepHinted);
  const double StepColdConv = timeToConverge(StepColdR);
  const double StepHintedConv = timeToConverge(StepHintedR);

  Table T({"measurement", "cold", "hinted"});
  T.addRow({"completion (sim s)", Table::formatDouble(ColdR.TotalSeconds, 2),
            Table::formatDouble(HintedR.TotalSeconds, 2)});
  T.addRow({"time to 90% steady (sim s)", Table::formatDouble(ColdConv, 2),
            Table::formatDouble(HintedConv, 2)});
  T.addRow({"steady throughput (items/s)",
            Table::formatDouble(steadyThroughput(ColdR), 2),
            Table::formatDouble(steadyThroughput(HintedR), 2)});
  T.addRow({"restarted completion (sim s)",
            Table::formatDouble(ColdR2.TotalSeconds, 2),
            Table::formatDouble(HintedR2.TotalSeconds, 2)});
  T.addRow({"completion speedup (cold/hinted)", "",
            Table::formatDouble(Speedup, 3)});
  T.addRow({"post-step completion (sim s)",
            Table::formatDouble(StepColdR.TotalSeconds, 2),
            Table::formatDouble(StepHintedR.TotalSeconds, 2)});
  T.addRow({"post-step time to 90% steady (sim s)",
            Table::formatDouble(StepColdConv, 2),
            Table::formatDouble(StepHintedConv, 2)});
  emitTable("Warm-start ablation (FDP, what-if pipeline scenario)", T, Csv);

  bool Ok = true;
  auto Check = [&](bool Cond, const char *What) {
    std::printf("[%s] %s\n", Cond ? "ok  " : "FAIL", What);
    Ok &= Cond;
  };
  Check(HintedR.TotalSeconds < ColdR.TotalSeconds,
        "hinted run completes the stream sooner than cold");
  Check(HintedConv < ColdConv,
        "hinted run reaches 90% of steady throughput sooner");
  Check(steadyThroughput(HintedR) >= 0.95 * steadyThroughput(ColdR),
        "hinted steady state is no worse than cold (within 5%)");
  Check(HintedR2.TotalSeconds < ColdR2.TotalSeconds,
        "hint survives restart: re-run stays faster than re-run cold");
  Check(HintedR2.TotalSeconds <= 1.05 * HintedR.TotalSeconds,
        "restarted hinted run does not degrade toward cold");
  Check(TwinR.ItemsCompleted == HintedR.ItemsCompleted &&
            TwinR.TotalSeconds == HintedR.TotalSeconds &&
            TwinR.FinalExtents == HintedR.FinalExtents,
        "hinted runs are deterministic under the seed");
  Check(SteppedRecs.front().Extents != Recs.front().Extents,
        "load step moves the recommended optimum");
  Check(StepHintedR.TotalSeconds < StepColdR.TotalSeconds,
        "after the load step, the re-profiled hint completes sooner");
  Check(steadyThroughput(StepHintedR) >= 0.95 * steadyThroughput(StepColdR),
        "post-step hinted steady state is no worse than cold (within 5%)");
  return Ok ? 0 : 1;
}

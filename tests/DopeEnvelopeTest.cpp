//===- tests/DopeEnvelopeTest.cpp - Runtime thread-envelope tests ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The thread envelope is the arbiter-facing half of the executive: a
// lease can shrink or grow the budget mid-run, after create() froze
// DopeOptions::MaxThreads. Shrinks must be realized through the
// suspend/quiesce path (no task killed), grows must let the next
// decision widen the configuration again.
//
//===----------------------------------------------------------------------===//

#include "core/Dope.h"

#include "core/Config.h"
#include "queue/WorkQueue.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace dope;

namespace {

/// DOALL worker over an open queue the test feeds: lets the run stay
/// live while envelopes change, then drain to completion.
struct OpenLoopApp {
  TaskGraph Graph;
  WorkQueue<int> Queue;
  std::atomic<uint64_t> Count{0};
  ParDescriptor *Root = nullptr;
  Task *Work = nullptr;

  OpenLoopApp() {
    TaskFn Fn = [this](TaskRuntime &RT) {
      if (RT.begin() == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      // Poll rather than block: a replica parked in waitAndPop() on an
      // empty queue can never observe a suspend request, and the master
      // replica doing so would wedge the whole epoch.
      std::optional<int> Item = Queue.tryPop();
      if (!Item) {
        if (Queue.closed())
          return TaskStatus::Finished;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return RT.end();
      }
      Count.fetch_add(1);
      if (RT.end() == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      return TaskStatus::Executing;
    };
    LoadFn Load = [this] { return static_cast<double>(Queue.size()); };
    Work = Graph.createTask("worker", Fn, Load, Graph.parDescriptor());
    Root = Graph.createRegion({Work});
  }
};

/// Polls until \p Pred holds or ~5 s pass.
template <typename PredT> bool eventually(PredT Pred) {
  for (int I = 0; I != 500; ++I) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Pred();
}

TEST(DopeEnvelope, DefaultsToMaxThreadsAndClamps) {
  OpenLoopApp App;
  DopeOptions Opts;
  Opts.MaxThreads = 4;
  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));
  EXPECT_EQ(D->threadEnvelope(), 4u);
  EXPECT_EQ(D->liveThreads(), 4u);

  D->setThreadEnvelope(99); // clamped to the administrator cap
  EXPECT_EQ(D->threadEnvelope(), 4u);
  D->setThreadEnvelope(0); // clamped to the minimum of one thread
  EXPECT_EQ(D->threadEnvelope(), 1u);

  App.Queue.close();
  D->wait();
}

TEST(DopeEnvelope, ShrinkDegradesRunningConfigViaQuiesce) {
  OpenLoopApp App;
  for (int I = 0; I != 64; ++I)
    App.Queue.push(I);

  DopeOptions Opts;
  Opts.MaxThreads = 4;
  RegionConfig Wide;
  TaskConfig TC;
  TC.Extent = 4;
  Wide.Tasks.push_back(TC);
  Opts.InitialConfig = Wide;
  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));
  ASSERT_TRUE(eventually([&] { return App.Count.load() > 0; }));
  EXPECT_EQ(totalThreads(*App.Root, D->currentConfig()), 4u);

  // Lease shrinks below the running footprint: the epoch must steer out
  // through suspend/quiesce and re-enter degraded — without losing work.
  D->setThreadEnvelope(2);
  EXPECT_EQ(D->liveThreads(), 2u);
  ASSERT_TRUE(eventually([&] {
    return totalThreads(*App.Root, D->currentConfig()) <= 2u;
  })) << "running config never degraded to the shrunken envelope";

  // The degraded region keeps making progress.
  const uint64_t Before = App.Count.load();
  for (int I = 0; I != 64; ++I)
    App.Queue.push(I);
  ASSERT_TRUE(eventually([&] { return App.Count.load() > Before; }));

  App.Queue.close();
  EXPECT_EQ(D->wait(), TaskStatus::Finished);
  EXPECT_EQ(App.Count.load(), 128u);
}

TEST(DopeEnvelope, GrowRaisesLiveThreadsAgain) {
  OpenLoopApp App;
  DopeOptions Opts;
  Opts.MaxThreads = 6;
  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));

  D->setThreadEnvelope(2);
  EXPECT_EQ(D->liveThreads(), 2u);
  D->setThreadEnvelope(5);
  EXPECT_EQ(D->threadEnvelope(), 5u);
  EXPECT_EQ(D->liveThreads(), 5u);

  App.Queue.close();
  EXPECT_EQ(D->wait(), TaskStatus::Finished);
}

TEST(DopeEnvelope, EnvelopeChangesAreTraced) {
  Tracer Trace(1 << 12);
  OpenLoopApp App;
  DopeOptions Opts;
  Opts.MaxThreads = 4;
  Opts.Trace = &Trace;
  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));

  D->setThreadEnvelope(2); // revoke
  D->setThreadEnvelope(2); // no-op: must not trace
  D->setThreadEnvelope(4); // grant

  App.Queue.close();
  D->wait();
  D.reset();

  size_t Revokes = 0, Grants = 0;
  for (const TraceRecord &R : Trace.drain()) {
    if (R.Name != "envelope")
      continue;
    if (R.Kind == TraceKind::LeaseRevoke) {
      ++Revokes;
      EXPECT_EQ(R.A, 2.0);
      EXPECT_EQ(R.B, 4.0);
    } else if (R.Kind == TraceKind::LeaseGrant) {
      ++Grants;
      EXPECT_EQ(R.A, 4.0);
      EXPECT_EQ(R.B, 2.0);
    }
  }
  EXPECT_EQ(Revokes, 1u);
  EXPECT_EQ(Grants, 1u);
}

TEST(DopeEnvelope, TtlExpiryShrinksToTheFloorAndRenewRearms) {
  Tracer Trace(1 << 12);
  OpenLoopApp App;
  DopeOptions Opts;
  Opts.MaxThreads = 4;
  Opts.Trace = &Trace;
  Opts.EnvelopeTtlSeconds = 0.15;
  Opts.EnvelopeExpireFloor = 1;
  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));
  EXPECT_EQ(D->threadEnvelope(), 4u);

  // Renewals keep the lease alive past several TTL windows.
  for (int I = 0; I != 5; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    D->renewThreadEnvelope();
  }
  EXPECT_EQ(D->threadEnvelope(), 4u);

  // Stop renewing: the controller must expire the lease on its own and
  // gracefully shrink to the floor.
  ASSERT_TRUE(eventually([&] { return D->threadEnvelope() == 1u; }))
      << "envelope never expired without heartbeats";

  App.Queue.close();
  D->wait();
  D.reset();

  size_t Expiries = 0;
  for (const TraceRecord &R : Trace.drain()) {
    if (R.Kind != TraceKind::LeaseExpire)
      continue;
    ++Expiries;
    EXPECT_EQ(R.Name, "envelope");
    EXPECT_EQ(R.Detail, "ttl");
    EXPECT_EQ(R.A, 1.0); // new envelope: the floor
    EXPECT_EQ(R.B, 4.0); // what lapsed
  }
  EXPECT_EQ(Expiries, 1u) << "expiry must fire exactly once per lapse";
}

} // namespace

//===- tests/ExecutiveStressTest.cpp - Randomized executive stress -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized robustness tests of the native executive: random pipeline
/// shapes, random configuration churn, and random workload sizes, all
/// checked against exact item-conservation invariants. Seeds are fixed
/// per test instantiation so failures reproduce.
///
//===----------------------------------------------------------------------===//

#include "core/Builders.h"

#include "support/Random.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <thread>

using namespace dope;

namespace {

/// Returns a random valid configuration for a builder pipeline whose
/// middle stages are all parallel.
RegionConfig randomConfig(const ParDescriptor &Pipe, Rng &R,
                          unsigned MaxThreads) {
  RegionConfig Config = defaultConfig(Pipe);
  unsigned Budget = MaxThreads;
  for (TaskConfig &TC : Config.Tasks)
    Budget -= 1; // every task keeps one thread
  for (size_t I = 0; I != Config.Tasks.size(); ++I) {
    if (Pipe.tasks()[I]->kind() != TaskKind::Parallel || Budget == 0)
      continue;
    const unsigned Extra =
        static_cast<unsigned>(R.uniformInt(Budget + 1));
    Config.Tasks[I].Extent = 1 + Extra;
    Budget -= Extra;
  }
  return Config;
}

/// Mechanism that jumps to a fresh random configuration every decision.
class RandomWalkMechanism : public Mechanism {
public:
  RandomWalkMechanism(const ParDescriptor &Pipe, uint64_t Seed,
                      unsigned MaxThreads)
      : Pipe(Pipe), Gen(Seed), MaxThreads(MaxThreads) {}
  std::string name() const override { return "RandomWalk"; }
  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &, const RegionSnapshot &,
              const RegionConfig &, const MechanismContext &) override {
    return randomConfig(Pipe, Gen, MaxThreads);
  }

private:
  const ParDescriptor &Pipe;
  Rng Gen;
  unsigned MaxThreads;
};

class ExecutiveStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutiveStress, RandomPipelineUnderRandomChurnConservesItems) {
  const uint64_t Seed = testing_helpers::loggedSeed(GetParam());
  Rng R(Seed);
  const int Items = 500 + static_cast<int>(R.uniformInt(1500));
  const unsigned MiddleStages = 1 + static_cast<unsigned>(R.uniformInt(3));
  const unsigned SourceSpin = 500 + static_cast<unsigned>(R.uniformInt(2000));
  const unsigned StageSpin = 500 + static_cast<unsigned>(R.uniformInt(2000));

  TaskGraph Graph;
  std::atomic<int> Next{0};
  std::atomic<long long> Sum{0};

  PipelineBuilder B(Graph);
  B.queueCapacity(1 + R.uniformInt(64));
  B.source<int>("gen", [&, SourceSpin]() -> std::optional<int> {
    const int I = Next.load();
    if (I >= Items)
      return std::nullopt;
    for (volatile unsigned Spin = 0; Spin < SourceSpin; ++Spin) {
    }
    Next.store(I + 1);
    return I;
  });
  for (unsigned S = 0; S != MiddleStages; ++S)
    B.stage<int, int>("work" + std::to_string(S), [StageSpin](int X) {
      for (volatile unsigned Spin = 0; Spin < StageSpin; ++Spin) {
      }
      return X;
    });
  B.sink<int>("add", [&](int X) { Sum.fetch_add(X); });
  ParDescriptor *Pipe = B.build();

  const unsigned MaxThreads =
      static_cast<unsigned>(Pipe->size()) + 1 +
      static_cast<unsigned>(R.uniformInt(4));

  DopeOptions Opts;
  Opts.MaxThreads = MaxThreads;
  Opts.MonitorIntervalSeconds = 0.001;
  Opts.MinReconfigIntervalSeconds = 0.001;
  Opts.Mech =
      std::make_unique<RandomWalkMechanism>(*Pipe, Seed ^ 1, MaxThreads);
  std::unique_ptr<Dope> D = Dope::create(Pipe, std::move(Opts));
  D->wait();

  EXPECT_EQ(Sum.load(),
            static_cast<long long>(Items - 1) * Items / 2)
      << "seed " << Seed << " items " << Items << " stages "
      << MiddleStages << " threads " << MaxThreads;
}

TEST_P(ExecutiveStress, FaultInjectedPipelineConservesItems) {
  // The fault-injecting variant: stage functors deterministically throw
  // and stall at scheduled invocations while a random-walk mechanism
  // churns the configuration. With a retry policy on every stage the
  // run must still complete with exact item conservation (faults are
  // injected *before* an item is popped, so a retried invocation never
  // loses work), no deadlock (the test's TIMEOUT is the watchdog), and
  // balanced Init/Fini hooks (every epoch's FiniCB ran exactly once).
  const uint64_t Seed = testing_helpers::loggedSeed(GetParam());
  Rng R(Seed);
  const int Items = 300 + static_cast<int>(R.uniformInt(700));
  const unsigned MiddleStages = 1 + static_cast<unsigned>(R.uniformInt(3));
  const uint64_t ThrowEvery = 23 + R.uniformInt(40);
  const uint64_t StallEvery = 31 + R.uniformInt(40);

  TaskGraph Graph;
  std::atomic<int> Next{0};
  std::atomic<long long> Sum{0};
  struct HookCounts {
    std::atomic<int> Inits{0};
    std::atomic<int> Finis{0};
  };
  std::deque<HookCounts> Hooks;
  struct StageState {
    std::atomic<uint64_t> Invocations{0};
  };
  std::deque<StageState> States;
  std::vector<Task *> Tasks;

  using IntQueue = BoundedQueue<int>;
  auto SourceOut = std::make_shared<IntQueue>(16);
  {
    HookCounts &H = Hooks.emplace_back();
    TaskFn Fn = [&, SourceOut](TaskRuntime &RT) {
      if (RT.begin() == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      const int I = Next.load();
      if (I >= Items)
        return TaskStatus::Finished;
      Next.store(I + 1);
      SourceOut->push(I);
      (void)RT.end();
      return TaskStatus::Executing;
    };
    Tasks.push_back(Graph.createTask(
        "gen", std::move(Fn), LoadFn(), Graph.seqDescriptor(),
        [&H, SourceOut] {
          H.Inits.fetch_add(1);
          SourceOut->reopen();
        },
        [&H, SourceOut] {
          H.Finis.fetch_add(1);
          SourceOut->close();
        }));
  }

  std::shared_ptr<IntQueue> Upstream = SourceOut;
  for (unsigned S = 0; S != MiddleStages; ++S) {
    auto InQ = Upstream;
    auto OutQ = std::make_shared<IntQueue>(16);
    HookCounts &H = Hooks.emplace_back();
    StageState &State = States.emplace_back();
    TaskFn Fn = [&State, InQ, OutQ, ThrowEvery,
                 StallEvery](TaskRuntime &RT) {
      // Faults fire before the pop so a retried invocation never holds
      // (and therefore never loses) an item.
      const uint64_t N = State.Invocations.fetch_add(1);
      if (N % ThrowEvery == ThrowEvery - 1)
        throw std::runtime_error("injected stage fault");
      if (N % StallEvery == StallEvery - 1)
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      std::optional<int> Item = InQ->waitAndPop();
      if (!Item)
        return TaskStatus::Finished;
      (void)RT.begin();
      (void)RT.end();
      OutQ->push(*Item);
      return TaskStatus::Executing;
    };
    LoadFn Load = [InQ] { return static_cast<double>(InQ->size()); };
    TaskDescriptor *Desc = Graph.parDescriptor();
    Desc->setRetryPolicy({/*MaxAttempts=*/1000, /*BackoffSeconds=*/0.0});
    Tasks.push_back(Graph.createTask(
        "work" + std::to_string(S), std::move(Fn), std::move(Load), Desc,
        [&H, OutQ] {
          H.Inits.fetch_add(1);
          OutQ->reopen();
        },
        [&H, OutQ] {
          H.Finis.fetch_add(1);
          OutQ->close();
        }));
    Upstream = OutQ;
  }

  {
    auto InQ = Upstream;
    TaskFn Fn = [&, InQ](TaskRuntime &RT) {
      std::optional<int> Item = InQ->waitAndPop();
      if (!Item)
        return TaskStatus::Finished;
      (void)RT.begin();
      Sum.fetch_add(*Item);
      (void)RT.end();
      return TaskStatus::Executing;
    };
    LoadFn Load = [InQ] { return static_cast<double>(InQ->size()); };
    Tasks.push_back(Graph.createTask("add", std::move(Fn), std::move(Load),
                                     Graph.seqDescriptor()));
  }

  ParDescriptor *Pipe = Graph.createRegion(Tasks);
  const unsigned MaxThreads =
      static_cast<unsigned>(Pipe->size()) + 1 +
      static_cast<unsigned>(R.uniformInt(4));

  DopeOptions Opts;
  Opts.MaxThreads = MaxThreads;
  Opts.MonitorIntervalSeconds = 0.001;
  Opts.MinReconfigIntervalSeconds = 0.001;
  Opts.Mech =
      std::make_unique<RandomWalkMechanism>(*Pipe, Seed ^ 1, MaxThreads);
  std::unique_ptr<Dope> D = Dope::create(Pipe, std::move(Opts));

  EXPECT_EQ(D->wait(), TaskStatus::Finished)
      << "seed " << Seed << ": " << (D->failure() ? toString(*D->failure())
                                                  : std::string("no cause"));
  EXPECT_EQ(Sum.load(), static_cast<long long>(Items - 1) * Items / 2)
      << "seed " << Seed << " items " << Items << " stages " << MiddleStages;
  EXPECT_GT(D->failureLog().retries(), 0u)
      << "fault injection never fired (seed " << Seed << ")";
  EXPECT_EQ(D->failureLog().failures(), 0u);
  for (size_t I = 0; I != Hooks.size(); ++I) {
    EXPECT_EQ(Hooks[I].Inits.load(), Hooks[I].Finis.load())
        << "task " << I << " Init/Fini imbalance (seed " << Seed << ")";
    EXPECT_GE(Hooks[I].Finis.load(), 1) << "task " << I << " never quiesced";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutiveStress,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace

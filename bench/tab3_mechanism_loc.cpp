//===- bench/tab3_mechanism_loc.cpp - Table 3 reproduction -----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 3: lines of code to implement the tested mechanisms.
/// The point of the paper's table is that mechanisms are *small* —
/// encoding an adaptation policy against the DoPE API takes tens to a
/// couple hundred lines — and that simpler policies (WQ-Linear) are an
/// order of magnitude smaller than stateful controllers (TPC).
///
/// This harness counts the logic lines of this repository's mechanism
/// implementations (comment and blank lines excluded) and prints them
/// next to the paper's numbers.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace dope;
using namespace dope::bench;

namespace {

/// Counts logic lines: non-blank lines that are not pure comments.
unsigned countLogicLines(const std::string &Path, bool &Found) {
  std::ifstream In(Path);
  if (!In) {
    Found = false;
    return 0;
  }
  Found = true;
  unsigned Count = 0;
  std::string Line;
  bool InBlockComment = false;
  while (std::getline(In, Line)) {
    // Trim leading whitespace.
    size_t Begin = Line.find_first_not_of(" \t");
    if (Begin == std::string::npos)
      continue;
    const std::string Trimmed = Line.substr(Begin);
    if (InBlockComment) {
      if (Trimmed.find("*/") != std::string::npos)
        InBlockComment = false;
      continue;
    }
    if (Trimmed.rfind("//", 0) == 0)
      continue;
    if (Trimmed.rfind("/*", 0) == 0) {
      if (Trimmed.find("*/") == std::string::npos)
        InBlockComment = true;
      continue;
    }
    ++Count;
  }
  return Count;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options("Table 3: lines of code per mechanism");
  addCommonOptions(Options);
  parseOrExit(Options, Argc, Argv);
  const bool Csv = Options.getFlag("csv");

#ifndef DOPE_SOURCE_DIR
#define DOPE_SOURCE_DIR "."
#endif
  const std::string Base = std::string(DOPE_SOURCE_DIR) + "/src/mechanisms/";

  struct Row {
    std::string Name;
    std::vector<std::string> Files;
    unsigned PaperLoc;
  };
  const std::vector<Row> Rows = {
      {"WQT-H", {"WqtH.cpp"}, 28},
      {"WQ-Linear", {"WqLinear.cpp"}, 9},
      {"TBF", {"Tbf.cpp"}, 89},
      {"FDP", {"Fdp.cpp"}, 94},
      {"SEDA", {"Seda.cpp"}, 30},
      {"TPC", {"Tpc.cpp"}, 154},
  };

  Table T({"mechanism", "paper LoC", "this repo LoC"});
  std::map<std::string, unsigned> Measured;
  bool AllFound = true;
  for (const Row &R : Rows) {
    unsigned Total = 0;
    for (const std::string &File : R.Files) {
      bool Found = false;
      Total += countLogicLines(Base + File, Found);
      AllFound &= Found;
    }
    Measured[R.Name] = Total;
    T.addRow({R.Name, Table::formatInt(R.PaperLoc),
              Table::formatInt(Total)});
  }
  emitTable("Table 3: lines of code to implement tested mechanisms", T,
            Csv);

  if (!AllFound) {
    std::printf("[shape MISS] mechanism sources not found under %s\n",
                Base.c_str());
    return 1;
  }

  bool Ok = true;
  Ok &= checkShape(Measured["WQ-Linear"] < Measured["TPC"] &&
                       Measured["WQT-H"] < Measured["TPC"],
                   "simple policies are much smaller than the stateful "
                   "TPC controller");
  Ok &= checkShape(Measured["TPC"] <= 400,
                   "every mechanism remains a small, local piece of "
                   "policy code (paper max: 154 LoC)");
  return Ok ? 0 : 1;
}

file(REMOVE_RECURSE
  "CMakeFiles/dope_apps.dir/AppRegistry.cpp.o"
  "CMakeFiles/dope_apps.dir/AppRegistry.cpp.o.d"
  "CMakeFiles/dope_apps.dir/NativeKernels.cpp.o"
  "CMakeFiles/dope_apps.dir/NativeKernels.cpp.o.d"
  "CMakeFiles/dope_apps.dir/NestApps.cpp.o"
  "CMakeFiles/dope_apps.dir/NestApps.cpp.o.d"
  "CMakeFiles/dope_apps.dir/PipelineApps.cpp.o"
  "CMakeFiles/dope_apps.dir/PipelineApps.cpp.o.d"
  "libdope_apps.a"
  "libdope_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dope_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- queue/WorkQueue.h - Unbounded MPMC work queue ----------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-producer multi-consumer work queue used between pipeline
/// stages and as the front-of-system request queue. Its occupancy is the
/// load signal consumed by LoadCB callbacks (Sec. 3.2 of the paper: "The
/// callback returns the current occupancy of the work queue").
///
/// Occupancy and the lifetime counters are mirrored into relaxed
/// atomics updated under the mutex, so the executive's LoadCB sampling
/// (size()/empty()) never contends with producers and consumers for the
/// queue lock — monitoring stays off the data path. The mutex guards
/// only push/pop/close.
///
/// The queue supports a close() operation used to propagate the sentinel
/// semantics from the paper's FiniCB protocol: consumers blocked in
/// waitAndPop are released with std::nullopt once the queue is closed and
/// drained.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_QUEUE_WORKQUEUE_H
#define DOPE_QUEUE_WORKQUEUE_H

#include "support/Compiler.h"
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dope {

/// Unbounded blocking MPMC queue with occupancy sampling and close
/// semantics.
template <typename T> class WorkQueue {
public:
  WorkQueue() = default;
  WorkQueue(const WorkQueue &) = delete;
  WorkQueue &operator=(const WorkQueue &) = delete;

  /// Enqueues an item. Returns false (item dropped) if the queue was
  /// already closed.
  bool push(T Item) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Closed)
        return false;
      Items.push_back(std::move(Item));
      Occupancy.store(Items.size(), std::memory_order_relaxed);
      Pushed.fetch_add(1, std::memory_order_relaxed);
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Non-blocking pop; nullopt when empty (even if not closed).
  std::optional<T> tryPop() {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    Occupancy.store(Items.size(), std::memory_order_relaxed);
    Popped.fetch_add(1, std::memory_order_relaxed);
    return Item;
  }

  /// Blocking pop; nullopt only when the queue is closed and drained.
  std::optional<T> waitAndPop() {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotEmpty.wait(Lock, [this] { return !Items.empty() || Closed; });
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    Occupancy.store(Items.size(), std::memory_order_relaxed);
    Popped.fetch_add(1, std::memory_order_relaxed);
    return Item;
  }

  /// Closes the queue: no further pushes are accepted and blocked
  /// consumers are released once the backlog drains.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Closed = true;
      ClosedFlag.store(true, std::memory_order_relaxed);
    }
    NotEmpty.notify_all();
  }

  /// Reopens a closed (and typically drained) queue, e.g. when re-entering
  /// a parallel region after reconfiguration (InitCB path).
  void reopen() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = false;
    ClosedFlag.store(false, std::memory_order_relaxed);
  }

  DOPE_HOT bool closed() const {
    return ClosedFlag.load(std::memory_order_relaxed);
  }

  /// Instantaneous occupancy — the LoadCB signal. Lock-free: reads the
  /// mirrored atomic, never the queue mutex.
  DOPE_HOT size_t size() const {
    return Occupancy.load(std::memory_order_relaxed);
  }

  DOPE_HOT bool empty() const { return size() == 0; }

  /// Lifetime counters, useful for tests and throughput accounting.
  /// Lock-free for the same reason as size().
  DOPE_HOT size_t totalPushed() const {
    return Pushed.load(std::memory_order_relaxed);
  }
  DOPE_HOT size_t totalPopped() const {
    return Popped.load(std::memory_order_relaxed);
  }

private:
  mutable std::mutex Mutex;
  std::condition_variable NotEmpty;
  std::deque<T> Items DOPE_GUARDED_BY(Mutex);
  bool Closed DOPE_GUARDED_BY(Mutex) = false;
  // Mirrors of the mutex-guarded state for lock-free observers.
  std::atomic<size_t> Occupancy{0};
  std::atomic<size_t> Pushed{0};
  std::atomic<size_t> Popped{0};
  std::atomic<bool> ClosedFlag{false};
};

} // namespace dope

#endif // DOPE_QUEUE_WORKQUEUE_H

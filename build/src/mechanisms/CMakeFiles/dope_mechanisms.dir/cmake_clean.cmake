file(REMOVE_RECURSE
  "CMakeFiles/dope_mechanisms.dir/Dpm.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/Dpm.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/Edp.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/Edp.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/Fdp.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/Fdp.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/Goal.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/Goal.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/PipelineView.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/PipelineView.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/Proportional.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/Proportional.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/Seda.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/Seda.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/ServerNest.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/ServerNest.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/StaticMechanism.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/StaticMechanism.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/Tbf.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/Tbf.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/Tpc.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/Tpc.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/WqLinear.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/WqLinear.cpp.o.d"
  "CMakeFiles/dope_mechanisms.dir/WqtH.cpp.o"
  "CMakeFiles/dope_mechanisms.dir/WqtH.cpp.o.d"
  "libdope_mechanisms.a"
  "libdope_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dope_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- support/RingDeque.h - Growable circular FIFO buffer -----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A power-of-two circular buffer with deque-like FIFO semantics. The
/// simulator queues (`PipelineSim`, `NestServerSim`, `ColocationSim`)
/// only ever push at the back and pop at the front; `std::deque` pays
/// for that with chunked heap blocks allocated and freed as the queue
/// oscillates around a block boundary. RingDeque allocates one
/// geometrically grown buffer and then never touches the allocator in
/// steady state, which is what an object pool should look like for
/// items whose lifetime *is* their queue residency.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_RINGDEQUE_H
#define DOPE_SUPPORT_RINGDEQUE_H

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace dope {

template <typename T> class RingDeque {
public:
  RingDeque() = default;

  RingDeque(const RingDeque &Other) { copyFrom(Other); }

  RingDeque(RingDeque &&Other) noexcept
      : Buf(Other.Buf), Cap(Other.Cap), Head(Other.Head), Count(Other.Count) {
    Other.Buf = nullptr;
    Other.Cap = Other.Head = Other.Count = 0;
  }

  RingDeque &operator=(const RingDeque &Other) {
    if (this != &Other) {
      destroy();
      copyFrom(Other);
    }
    return *this;
  }

  RingDeque &operator=(RingDeque &&Other) noexcept {
    if (this != &Other) {
      destroy();
      Buf = Other.Buf;
      Cap = Other.Cap;
      Head = Other.Head;
      Count = Other.Count;
      Other.Buf = nullptr;
      Other.Cap = Other.Head = Other.Count = 0;
    }
    return *this;
  }

  ~RingDeque() { destroy(); }

  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

  T &front() {
    assert(Count && "front of empty RingDeque");
    return Buf[Head];
  }
  const T &front() const {
    assert(Count && "front of empty RingDeque");
    return Buf[Head];
  }

  T &back() {
    assert(Count && "back of empty RingDeque");
    return Buf[wrap(Head + Count - 1)];
  }
  const T &back() const {
    assert(Count && "back of empty RingDeque");
    return Buf[wrap(Head + Count - 1)];
  }

  T &operator[](size_t I) {
    assert(I < Count && "RingDeque index out of range");
    return Buf[wrap(Head + I)];
  }
  const T &operator[](size_t I) const {
    assert(I < Count && "RingDeque index out of range");
    return Buf[wrap(Head + I)];
  }

  void push_back(const T &Value) { emplace_back(Value); }
  void push_back(T &&Value) { emplace_back(std::move(Value)); }

  template <typename... Args> T &emplace_back(Args &&...As) {
    if (Count == Cap)
      grow();
    T *Slot = Buf + wrap(Head + Count);
    ::new (static_cast<void *>(Slot)) T(std::forward<Args>(As)...);
    ++Count;
    return *Slot;
  }

  void pop_front() {
    assert(Count && "pop_front of empty RingDeque");
    Buf[Head].~T();
    Head = wrap(Head + 1);
    --Count;
  }

  void clear() {
    for (size_t I = 0; I != Count; ++I)
      Buf[wrap(Head + I)].~T();
    Head = 0;
    Count = 0;
  }

  /// Minimal forward iterator so range-for works for inspection loops.
  template <typename Ref, typename Container> class IteratorImpl {
  public:
    IteratorImpl(Container *C, size_t I) : C(C), I(I) {}
    Ref operator*() const { return (*C)[I]; }
    IteratorImpl &operator++() {
      ++I;
      return *this;
    }
    bool operator!=(const IteratorImpl &O) const { return I != O.I; }
    bool operator==(const IteratorImpl &O) const { return I == O.I; }

  private:
    Container *C;
    size_t I;
  };

  using iterator = IteratorImpl<T &, RingDeque>;
  using const_iterator = IteratorImpl<const T &, const RingDeque>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, Count); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, Count); }

private:
  size_t wrap(size_t I) const { return I & (Cap - 1); }

  void grow() {
    const size_t NewCap = Cap ? Cap * 2 : 16;
    T *NewBuf = static_cast<T *>(
        ::operator new(NewCap * sizeof(T), std::align_val_t(alignof(T))));
    for (size_t I = 0; I != Count; ++I) {
      T &Src = Buf[wrap(Head + I)];
      ::new (static_cast<void *>(NewBuf + I)) T(std::move(Src));
      Src.~T();
    }
    release(Buf);
    Buf = NewBuf;
    Cap = NewCap;
    Head = 0;
  }

  void copyFrom(const RingDeque &Other) {
    Buf = nullptr;
    Cap = Head = Count = 0;
    if (Other.Count == 0)
      return;
    size_t NewCap = 16;
    while (NewCap < Other.Count)
      NewCap *= 2;
    Buf = static_cast<T *>(
        ::operator new(NewCap * sizeof(T), std::align_val_t(alignof(T))));
    Cap = NewCap;
    for (size_t I = 0; I != Other.Count; ++I) {
      ::new (static_cast<void *>(Buf + I)) T(Other[I]);
      ++Count; // incremental so a throwing copy ctor leaks nothing
    }
  }

  void destroy() {
    clear();
    release(Buf);
    Buf = nullptr;
    Cap = 0;
  }

  static void release(T *P) {
    if (P)
      ::operator delete(P, std::align_val_t(alignof(T)));
  }

  T *Buf = nullptr;
  size_t Cap = 0;
  size_t Head = 0;
  size_t Count = 0;
};

} // namespace dope

#endif // DOPE_SUPPORT_RINGDEQUE_H

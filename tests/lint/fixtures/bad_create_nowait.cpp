// AP002 fixture: Dope::create without wait/waitFor/destroy.
// Never compiled — scanned by dope_lint in the lint test suite.

void leakyHost() {
  auto Executive = Dope::create(Config);
  Executive->run(Graph);
  // missing Executive->wait() / destroy(): tears down a live region.
}

void carefulHost() {
  auto Executive = Dope::create(Config);
  Executive->run(Graph);
  Executive->wait();
}

//===- arbiter/Arbiter.cpp - Platform parallelism arbiter ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "arbiter/Arbiter.h"

#include "support/Logging.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dope;

Arbiter::Arbiter(ArbiterOptions Opts) : Opts(std::move(Opts)) {
  assert(this->Opts.TotalThreads >= 1 && "platform needs at least a thread");
  assert(this->Opts.EpochSeconds > 0.0 && "epoch must be positive");
}

unsigned Arbiter::grantableThreads() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return grantableThreadsLocked();
}

unsigned Arbiter::grantableThreadsLocked() const {
  unsigned Pool = Opts.TotalThreads;
  if (Opts.PowerBudgetWatts > 0.0 && Opts.WattsPerThread > 0.0) {
    const double Avail =
        (Opts.PowerBudgetWatts - Opts.IdlePowerWatts) / Opts.WattsPerThread;
    const unsigned Capped =
        Avail <= 0.0 ? 0u : static_cast<unsigned>(std::floor(Avail));
    Pool = std::min(Pool, Capped);
  }
  // Liveness beats the power cap: every seated tenant keeps its floor
  // even when the budget would starve it (the cap then only squeezes
  // discretionary grants). Expired and evicted tenants hold nothing, so
  // they contribute no floor.
  unsigned Floors = 0;
  for (const TenantState &T : Tenants)
    if (seated(T))
      Floors += std::max(1u, T.Spec.MinThreads);
  return std::max(Pool, Floors);
}

const Arbiter::TenantState &Arbiter::stateOf(TenantId Id) const {
  auto It = std::lower_bound(
      Tenants.begin(), Tenants.end(), Id,
      [](const TenantState &T, TenantId Id) { return T.Id < Id; });
  assert(It != Tenants.end() && It->Id == Id && "unknown tenant id");
  return *It;
}

Arbiter::TenantState &Arbiter::stateOfMut(TenantId Id) {
  return const_cast<TenantState &>(
      static_cast<const Arbiter *>(this)->stateOf(Id));
}

Lease Arbiter::leaseOf(TenantId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const TenantState &T = stateOf(Id);
  return {T.Granted, T.Granted * Opts.WattsPerThread};
}

const TenantSpec &Arbiter::specOf(TenantId Id) const {
  // Specs are immutable after addTenant normalizes them, so handing the
  // reference out after dropping the lock is safe; the lock only
  // protects the lookup against concurrent add/remove.
  std::lock_guard<std::mutex> Lock(Mutex);
  return stateOf(Id).Spec;
}

size_t Arbiter::tenantCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Tenants.size();
}

double Arbiter::lastBidOf(TenantId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return stateOf(Id).LastBid;
}

bool Arbiter::isExpired(TenantId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return stateOf(Id).Expired;
}

bool Arbiter::isEvicted(TenantId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return stateOf(Id).Evicted;
}

double Arbiter::lastHeartbeatOf(TenantId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return stateOf(Id).LastHeartbeat;
}

CompliancePenalty Arbiter::penaltyOf(TenantId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const TenantState &T = stateOf(Id);
  return T.Evicted ? CompliancePenalty::Evict : T.Monitor.penalty();
}

double Arbiter::complianceScoreOf(TenantId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return stateOf(Id).Monitor.score();
}

/// Absolute bid a latency tenant uses to defend held threads: above the
/// normalized marginal bid of any well-scaling tenant (<= ~1 x weight
/// for typical weights) but far below an SLO-urgency bid, so held
/// threads move only toward an emergency.
static constexpr double DefendBid = 2.0;

bool Arbiter::sloBurning(const TenantState &T) const {
  return T.Spec.Goal == TenantGoal::ResponseTime && T.Spec.SloSeconds > 0.0 &&
         T.HasSample && T.LastSample.P95ResponseSeconds > T.Spec.SloSeconds;
}

double Arbiter::bid(const TenantState &T, unsigned Have) const {
  // Base utility: normalized marginal speedup of thread Have+1 when the
  // estimator has a curve; harmonic equal-share bidding otherwise (the
  // 1/(k+1) schedule makes weighted water-filling converge to weighted
  // proportional shares among history-less tenants).
  double Utility;
  const SpeedupCurveFit &Fit = T.Estimator.fit();
  if (T.Estimator.hasHistory() && Fit.BaseRate > 0.0)
    Utility = T.Estimator.marginalRate(Have) / Fit.BaseRate;
  else
    Utility = 1.0 / static_cast<double>(Have + 1);

  // Demand: a tenant predicted to already serve its offered load (or
  // observed fully idle) bids for spare capacity at a deep discount.
  // Threads beyond covered demand have no utility to their holder no
  // matter how well the app would scale — without this, a learned
  // near-linear curve bids ~1 x weight for every thread on the machine.
  // A backlogged tenant needs drain headroom before its demand counts
  // as covered.
  if (T.HasSample) {
    const double Headroom = T.LastSample.QueueDepth >= 1.0 ? 1.5 : 1.0;
    const bool Saturating =
        T.LastSample.OfferedRate > 0.0 && T.Estimator.hasHistory() &&
        Fit.BaseRate > 0.0 &&
        T.Estimator.predictRate(std::max(1u, Have)) >=
            Headroom * T.LastSample.OfferedRate;
    const bool Idle =
        T.LastSample.OfferedRate <= 0.0 && T.LastSample.QueueDepth < 1.0;
    if (Saturating || Idle)
      Utility *= Opts.IdleBidDiscount;
  }

  // A backlogged tenant's held threads are all productive, even where
  // the one-more-thread marginal collapses (real capacity curves
  // quantize into plateaus — e.g. a pipeline whose bottleneck stage
  // needs two more replicas before throughput moves). Floor the bid
  // for held threads at the tenant's average normalized utility so a
  // backlog never reads as "these threads help nobody" and invites
  // another tenant to sweep the pool with an idle-grade bid.
  if (T.HasSample && T.LastSample.QueueDepth >= 1.0 && Have < T.Granted &&
      T.Granted > 0 && T.Estimator.hasHistory() && Fit.BaseRate > 0.0) {
    const double AvgUtil =
        T.LastSample.Throughput / (Fit.BaseRate * T.Granted);
    Utility = std::max(Utility, AvgUtil);
  }

  // SLO pressure for latency tenants: burning SLOs outbid everyone;
  // within-SLO tenants defend what they hold; comfortable ones cede —
  // but gracefully, two threads per epoch, so a quiet tenant drains to
  // its equilibrium instead of free-falling to its floor and paying a
  // multi-epoch recovery cliff when its load returns. The defend bid is
  // absolute (applied after the weight) and sits above any non-urgent
  // marginal bid, so only an SLO emergency elsewhere preempts held
  // threads.
  double Defend = -1.0;
  if (T.Spec.Goal == TenantGoal::ResponseTime && T.Spec.SloSeconds > 0.0 &&
      T.HasSample && T.LastSample.P95ResponseSeconds > 0.0) {
    const double Ratio =
        T.LastSample.P95ResponseSeconds / T.Spec.SloSeconds;
    if (Ratio > 1.0) {
      // A breached SLO is direct evidence of insufficient capacity and
      // overrides a (possibly demand-polluted) curve that claims more
      // threads would not help: bid at least the equal-share schedule,
      // boosted by the violation ratio. But grab with a target, not
      // greed: once the curve predicts capacity covering the offered
      // load with 50% drain headroom, further threads are overshoot
      // that would be ceded back two per epoch while other tenants
      // starve — bid those at the deep discount instead.
      const bool CoversDemand =
          T.Estimator.hasHistory() && Fit.BaseRate > 0.0 &&
          T.LastSample.OfferedRate > 0.0 &&
          T.Estimator.predictRate(std::max(1u, Have)) >=
              1.5 * T.LastSample.OfferedRate;
      if (CoversDemand) {
        Utility *= Opts.IdleBidDiscount;
      } else {
        Utility = std::max(Utility, 1.0 / static_cast<double>(Have + 1));
        Utility *= Opts.SloUrgencyBoost * Ratio;
      }
    } else if (Ratio < Opts.SloComfortFraction &&
               T.LastSample.QueueDepth < 1.0) {
      // bid(T, Have) prices thread number Have + 1, so defending
      // threads 1..Granted-2 means Have + 3 <= Granted. Ceding exactly
      // two per epoch also stays above HysteresisThreads = 1 — a
      // one-thread cede would be suppressed as drift and the tenant
      // would never drain.
      if (Have + 3 <= T.Granted)
        Defend = DefendBid;
      else
        Utility *= 0.25;
    } else if (Have < T.Granted) {
      Defend = DefendBid; // inside the SLO but not comfortable: hold
    }
  }

  Utility *= T.Spec.Weight;
  if (Defend > 0.0)
    Utility = std::max(Utility, Defend);

  // Containment rung 1: a tenant past the discount threshold pays for
  // its record — every bid, including the defend bid, is deflated, so
  // repeated non-compliance loses auctions it would otherwise win.
  if (Opts.Compliance.Enabled &&
      penaltyAtLeast(T.Monitor.penalty(), CompliancePenalty::BidDiscount))
    Utility *= Opts.Compliance.BidDiscount;

  // Tiny weighted floor: the water-fill always places the whole pool
  // (idle threads help nobody), and ties between all-idle tenants still
  // resolve toward weighted shares.
  const double Floor =
      1e-6 * T.Spec.Weight / static_cast<double>(Have + 1);
  return std::max(Utility, Floor);
}

std::vector<unsigned> Arbiter::waterFill() const {
  const unsigned Pool = grantableThreadsLocked();
  std::vector<unsigned> Alloc(Tenants.size(), 0);
  std::vector<unsigned> Cap(Tenants.size(), 0);
  unsigned Placed = 0;
  for (size_t I = 0; I != Tenants.size(); ++I) {
    const TenantState &T = Tenants[I];
    if (!seated(T)) {
      // Expired and evicted tenants hold nothing and bid for nothing.
      Cap[I] = 0;
      continue;
    }
    const TenantSpec &S = T.Spec;
    Cap[I] = S.MaxThreads == 0 ? Opts.TotalThreads
                               : std::min(S.MaxThreads, Opts.TotalThreads);
    // Containment rung 2: a clamped tenant is pinned to its floor — it
    // keeps making progress but cannot expand until its score decays.
    if (Opts.Compliance.Enabled &&
        penaltyAtLeast(T.Monitor.penalty(), CompliancePenalty::LeaseClamp))
      Cap[I] = std::min(Cap[I], std::max(1u, S.MinThreads));
    Alloc[I] = std::min(std::max(1u, S.MinThreads), Cap[I]);
    Placed += Alloc[I];
  }

  // Discretionary threads go one at a time to the highest bidder; ties
  // break toward the lowest tenant id for determinism.
  while (Placed < Pool) {
    size_t Best = Tenants.size();
    double BestBid = -1.0;
    for (size_t I = 0; I != Tenants.size(); ++I) {
      if (Alloc[I] >= Cap[I])
        continue;
      const double B = bid(Tenants[I], Alloc[I]);
      if (B > BestBid) {
        BestBid = B;
        Best = I;
      }
    }
    if (Best == Tenants.size())
      break; // everyone at their cap; leave the rest idle
    ++Alloc[Best];
    ++Placed;
  }
  return Alloc;
}

std::vector<LeaseChange>
Arbiter::apply(const std::vector<unsigned> &Target, double Now,
               const char *Reason) {
  assert(Target.size() == Tenants.size());
  std::vector<LeaseChange> Changes;

  for (size_t I = 0; I != Tenants.size(); ++I) {
    TenantState &T = Tenants[I];
    if (!seated(T)) {
      T.LastBid = 0.0;
      continue;
    }
    T.LastBid = bid(T, Target[I]);
    if (Opts.Trace)
      Opts.Trace->recordAt(Now, TraceKind::TenantUtility, T.Spec.Name,
                           T.LastBid, static_cast<double>(T.Granted));
  }

  // Revocations first so a host applying changes in order never holds
  // more threads than the platform owns.
  for (int Pass = 0; Pass != 2; ++Pass) {
    for (size_t I = 0; I != Tenants.size(); ++I) {
      TenantState &T = Tenants[I];
      const unsigned New = Target[I], Old = T.Granted;
      const bool Shrink = New < Old;
      if (New == Old || (Pass == 0) != Shrink)
        continue;
      if (Opts.Trace)
        Opts.Trace->recordAt(Now,
                             Shrink ? TraceKind::LeaseRevoke
                                    : TraceKind::LeaseGrant,
                             T.Spec.Name, static_cast<double>(New),
                             static_cast<double>(Old), Reason);
      DOPE_LOG_DEBUG("arbiter: %s lease %s %u -> %u (%s)",
                     T.Spec.Name.c_str(), Shrink ? "revoke" : "grant", Old,
                     New, Reason);
      Changes.push_back({T.Spec.Name, Now, Old, New, Reason});
      T.Granted = New;
      T.LastLeaseChange = Now;
    }
  }
  return Changes;
}

TenantId Arbiter::addTenant(TenantSpec Spec, double NowSeconds,
                            std::vector<LeaseChange> *Changes) {
  assert(Spec.Weight > 0.0 && "tenant weight must be positive");
  std::lock_guard<std::mutex> Lock(Mutex);
  TenantState T;
  T.Id = NextId++;
  T.Spec = std::move(Spec);
  if (T.Spec.MinThreads == 0)
    T.Spec.MinThreads = 1;
  T.Monitor = ComplianceMonitor(Opts.Compliance);
  // The lease TTL clock starts at admission: a tenant that joins and
  // never reports is as dead as one that stops reporting.
  T.LastHeartbeat = NowSeconds;
  Tenants.push_back(std::move(T));

  // A join re-splits immediately: the newcomer cannot wait an epoch for
  // its first thread, and sitting tenants shrink to make room.
  std::vector<LeaseChange> Applied =
      apply(waterFill(), NowSeconds, "join");
  LastRebalance = NowSeconds;
  EverRebalanced = true;
  if (Changes)
    Changes->insert(Changes->end(), Applied.begin(), Applied.end());
  return Tenants.back().Id;
}

void Arbiter::removeTenant(TenantId Id, double NowSeconds,
                           std::vector<LeaseChange> *Changes) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = std::lower_bound(
      Tenants.begin(), Tenants.end(), Id,
      [](const TenantState &T, TenantId Id) { return T.Id < Id; });
  assert(It != Tenants.end() && It->Id == Id && "unknown tenant id");
  if (Opts.Trace && It->Granted > 0)
    Opts.Trace->recordAt(NowSeconds, TraceKind::LeaseRevoke, It->Spec.Name,
                         0.0, static_cast<double>(It->Granted), "leave");
  if (Changes)
    Changes->push_back({It->Spec.Name, NowSeconds, It->Granted, 0, "leave"});
  DOPE_LOG_DEBUG("arbiter: tenant %s leaves, returning %u threads",
                 It->Spec.Name.c_str(), It->Granted);
  Tenants.erase(It);
  // The freed threads are re-offered at the next epoch; a leave never
  // interrupts the survivors mid-epoch.
}

void Arbiter::flagViolation(TenantState &T, ComplianceViolation V,
                            double Now) {
  const double Score = T.Monitor.flag(V);
  const CompliancePenalty P = T.Monitor.penalty();
  if (Opts.Trace)
    Opts.Trace->recordAt(Now, TraceKind::ComplianceVerdict, T.Spec.Name,
                         Score, static_cast<double>(P), toString(V));
  DOPE_LOG_DEBUG("arbiter: tenant %s flagged %s (score %.2f, penalty %s)",
                 T.Spec.Name.c_str(), toString(V), Score, toString(P));
}

void Arbiter::reportSample(TenantId Id, const TenantSample &Sample) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = std::lower_bound(
      Tenants.begin(), Tenants.end(), Id,
      [](const TenantState &T, TenantId Id) { return T.Id < Id; });
  assert(It != Tenants.end() && It->Id == Id && "unknown tenant id");
  TenantState &T = *It;
  if (T.Evicted)
    return; // evicted tenants no longer participate in the protocol

  const bool Checks = Opts.Compliance.Enabled;
  const double PrevTime = T.HasSample ? T.LastSample.Time : -1.0;

  // A sample whose clock ran backwards is stale or forged: it renews
  // nothing and teaches nothing. Equal timestamps pass — hosts may
  // batch several reports onto one epoch tick. (First samples always
  // pass — admission set the heartbeat but there is no previous sample
  // time.)
  if (Checks && T.HasSample && Sample.Time < PrevTime) {
    flagViolation(T, ComplianceViolation::NonMonotoneClock, Sample.Time);
    return;
  }

  // Heartbeat: the report itself is the liveness proof. An expired
  // tenant that heartbeats again is revived — re-seated at the next
  // rebalance, which the revival forces past the epoch gate.
  T.LastHeartbeat = std::max(T.LastHeartbeat, Sample.Time);
  if (T.Expired) {
    T.Expired = false;
    ForceRebalance = true;
    ForceReason = "revive";
  }
  const bool Saturated = Sample.QueueDepth >= 1.0;
  if (Opts.Trace)
    Opts.Trace->recordAt(Sample.Time, TraceKind::Heartbeat, T.Spec.Name,
                         static_cast<double>(Sample.GrantedThreads),
                         Sample.Throughput,
                         Saturated ? "saturated" : std::string());

  // Compliance checks that compare the sample against the lease skip
  // windows spanning a lease change: the tenant legitimately held
  // different counts within that window, so its numbers are not
  // evidence of misbehavior.
  const bool LeaseStable = T.HasSample && T.LastLeaseChange <= PrevTime;
  bool FeedEstimator = Saturated;

  if (Checks && LeaseStable &&
      Sample.GrantedThreads >
          std::max(T.Granted, std::max(1u, T.Spec.MinThreads))) {
    // Running above the granted envelope: the throughput was earned
    // with stolen threads — do not let it teach the curve.
    flagViolation(T, ComplianceViolation::EnvelopeExceeded, Sample.Time);
    FeedEstimator = false;
  }

  if (Checks && LeaseStable && FeedEstimator &&
      T.Estimator.distinctExtents() >= Opts.Compliance.MinExtentsForBand) {
    const SpeedupCurveFit &Fit = T.Estimator.fit();
    if (Fit.BaseRate > 0.0) {
      const double Pred =
          T.Estimator.predictRate(std::max(1u, Sample.GrantedThreads));
      const double Band =
          Opts.Compliance.PlausibleRateFactor * Pred + 3.0 * Fit.Rmse;
      if (Sample.Throughput > Band) {
        flagViolation(T, ComplianceViolation::ImplausibleThroughput,
                      Sample.Time);
        FeedEstimator = false;
      }
    }
  }

  T.LastSample = Sample;
  T.HasSample = true;
  // Only saturated windows teach the estimator: an underloaded window's
  // throughput equals the offered load, which says capacity(k) >= rate,
  // not capacity(k) == rate — feeding it as an equality would teach the
  // curve that threads don't help.
  if (FeedEstimator)
    T.Estimator.observe(Sample.GrantedThreads, Sample.Throughput);
}

bool Arbiter::expireAndEvict(double Now, std::vector<LeaseChange> &Changes) {
  bool Force = false;
  for (TenantState &T : Tenants) {
    // A heartbeat claiming to come from the future would fake liveness
    // forever; clamp it to the arbiter's clock and hold it against the
    // tenant. One epoch of tolerance absorbs honest clock skew between
    // the reporting host and the rebalance driver.
    if (Opts.Compliance.Enabled && !T.Evicted &&
        T.LastHeartbeat > Now + Opts.EpochSeconds) {
      T.LastHeartbeat = Now;
      flagViolation(T, ComplianceViolation::FutureClock, Now);
    }

    // Liveness: expire a lease whose holder has not heartbeat within the
    // TTL. The lease is valid while Now < LastHeartbeat + TTL — at
    // exactly the TTL it is already dead (deterministic boundary).
    if (Opts.LeaseTtlSeconds > 0.0 && seated(T) &&
        Now >= T.LastHeartbeat + Opts.LeaseTtlSeconds) {
      T.Expired = true;
      Force = true;
      DOPE_LOG_DEBUG("arbiter: tenant %s lease expired (last heartbeat %.3f)",
                     T.Spec.Name.c_str(), T.LastHeartbeat);
      if (Opts.Trace)
        Opts.Trace->recordAt(Now, TraceKind::LeaseExpire, T.Spec.Name, 0.0,
                             static_cast<double>(T.Granted), "ttl");
      if (T.Granted > 0) {
        Changes.push_back({T.Spec.Name, Now, T.Granted, 0, "expire"});
        T.Granted = 0;
        T.LastLeaseChange = Now;
      }
    }

    // Containment rung 3: eviction latches once the score crosses the
    // terminal threshold — decay never walks a tenant back from it.
    if (Opts.Compliance.Enabled && !T.Evicted &&
        T.Monitor.penalty() == CompliancePenalty::Evict) {
      T.Evicted = true;
      Force = true;
      DOPE_LOG_DEBUG("arbiter: tenant %s evicted (score %.2f)",
                     T.Spec.Name.c_str(), T.Monitor.score());
      if (Opts.Trace) {
        Opts.Trace->recordAt(Now, TraceKind::ComplianceVerdict, T.Spec.Name,
                             T.Monitor.score(),
                             static_cast<double>(CompliancePenalty::Evict),
                             "evicted");
        if (T.Granted > 0)
          Opts.Trace->recordAt(Now, TraceKind::LeaseRevoke, T.Spec.Name, 0.0,
                               static_cast<double>(T.Granted), "evict");
      }
      if (T.Granted > 0) {
        Changes.push_back({T.Spec.Name, Now, T.Granted, 0, "evict"});
        T.Granted = 0;
        T.LastLeaseChange = Now;
      }
    }
  }
  return Force;
}

std::vector<LeaseChange> Arbiter::rebalance(double NowSeconds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Tenants.empty())
    return {};

  // Expiry / eviction pre-pass runs on every call, even inside the
  // epoch: a dead tenant's threads return the moment its TTL lapses,
  // and the freed pool re-splits immediately below.
  std::vector<LeaseChange> Changes;
  bool Force = expireAndEvict(NowSeconds, Changes);
  if (ForceRebalance) {
    Force = true;
    ForceRebalance = false;
  }
  const char *Reason = Force ? ForceReason : "rebalance";
  ForceReason = "rebalance";

  if (!Force && EverRebalanced &&
      NowSeconds < LastRebalance + Opts.EpochSeconds)
    return Changes;

  // Epoch boundary: clean tenants' compliance scores decay toward
  // forgiveness.
  if (Opts.Compliance.Enabled)
    for (TenantState &T : Tenants)
      T.Monitor.epochTick();

  const std::vector<unsigned> Target = waterFill();

  unsigned MaxDelta = 0;
  bool Urgent = false;
  for (size_t I = 0; I != Tenants.size(); ++I) {
    const unsigned Old = Tenants[I].Granted, New = Target[I];
    MaxDelta = std::max(MaxDelta, Old > New ? Old - New : New - Old);
    if (New > Old && seated(Tenants[I]) && sloBurning(Tenants[I]))
      Urgent = true;
  }

  LastRebalance = NowSeconds;
  EverRebalanced = true;

  // Hysteresis: drifting by a thread or two is noise, not signal —
  // unless a latency tenant is past its SLO (even one thread moves now)
  // or an expiry/eviction/revival just changed who is seated.
  if (MaxDelta == 0 || (MaxDelta <= Opts.HysteresisThreads && !Urgent &&
                        !Force)) {
    if (Opts.Trace)
      for (TenantState &T : Tenants) {
        if (!seated(T)) {
          T.LastBid = 0.0;
          continue;
        }
        T.LastBid = bid(T, T.Granted);
        Opts.Trace->recordAt(NowSeconds, TraceKind::TenantUtility,
                             T.Spec.Name, T.LastBid,
                             static_cast<double>(T.Granted));
      }
    return Changes;
  }

  std::vector<LeaseChange> Applied =
      apply(Target, NowSeconds, Urgent ? "slo-urgent" : Reason);
  Changes.insert(Changes.end(), Applied.begin(), Applied.end());
  return Changes;
}

//===----------------------------------------------------------------------===//
// Warm restart: snapshot / restore / trace-journal reconstruction
//===----------------------------------------------------------------------===//

static const char *goalName(TenantGoal G) {
  return G == TenantGoal::ResponseTime ? "response-time" : "throughput";
}

static TenantGoal goalFromName(const std::string &Name) {
  return Name == "response-time" ? TenantGoal::ResponseTime
                                 : TenantGoal::Throughput;
}

static constexpr const char *SnapshotSchema = "dope-arbiter-snapshot-v1";

JsonValue Arbiter::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  JsonValue Root = JsonValue::makeObject();
  Root.set("schema", SnapshotSchema);
  Root.set("nextId", static_cast<double>(NextId));
  Root.set("lastRebalance", LastRebalance);
  Root.set("everRebalanced", EverRebalanced);

  JsonValue Ts = JsonValue::makeArray();
  for (const TenantState &T : Tenants) {
    JsonValue O = JsonValue::makeObject();
    O.set("id", static_cast<double>(T.Id));
    O.set("name", T.Spec.Name);
    O.set("goal", goalName(T.Spec.Goal));
    O.set("weight", T.Spec.Weight);
    O.set("minThreads", static_cast<double>(T.Spec.MinThreads));
    O.set("maxThreads", static_cast<double>(T.Spec.MaxThreads));
    O.set("sloSeconds", T.Spec.SloSeconds);
    O.set("granted", static_cast<double>(T.Granted));
    O.set("lastHeartbeat", T.LastHeartbeat);
    O.set("expired", T.Expired);
    O.set("evicted", T.Evicted);
    O.set("lastLeaseChange", T.LastLeaseChange);
    O.set("lastBid", T.LastBid);
    O.set("complianceScore", T.Monitor.score());
    O.set("violations", static_cast<double>(T.Monitor.violationCount()));
    if (T.HasSample) {
      JsonValue S = JsonValue::makeObject();
      S.set("t", T.LastSample.Time);
      S.set("k", static_cast<double>(T.LastSample.GrantedThreads));
      S.set("x", T.LastSample.Throughput);
      S.set("offered", T.LastSample.OfferedRate);
      S.set("p95", T.LastSample.P95ResponseSeconds);
      S.set("q", T.LastSample.QueueDepth);
      O.set("sample", std::move(S));
    }
    JsonValue Obs = JsonValue::makeArray();
    for (const auto &[Extent, Rate] : T.Estimator.observations()) {
      JsonValue Pair = JsonValue::makeArray();
      Pair.push(static_cast<double>(Extent));
      Pair.push(Rate);
      Obs.push(std::move(Pair));
    }
    O.set("obs", std::move(Obs));
    Ts.push(std::move(O));
  }
  Root.set("tenants", std::move(Ts));
  return Root;
}

bool Arbiter::restore(const JsonValue &Snapshot) {
  if (!Snapshot.isObject() || Snapshot.getString("schema") != SnapshotSchema)
    return false;
  const JsonValue *Ts = Snapshot.get("tenants");
  if (!Ts || !Ts->isArray())
    return false;

  std::vector<TenantState> Restored;
  Restored.reserve(Ts->size());
  for (size_t I = 0; I != Ts->size(); ++I) {
    const JsonValue &O = Ts->at(I);
    if (!O.isObject() || O.getString("name").empty())
      return false;
    TenantState T;
    T.Id = static_cast<TenantId>(O.getNumber("id"));
    if (T.Id == 0)
      return false;
    T.Spec.Name = O.getString("name");
    T.Spec.Goal = goalFromName(O.getString("goal"));
    T.Spec.Weight = O.getNumber("weight", 1.0);
    T.Spec.MinThreads =
        std::max(1u, static_cast<unsigned>(O.getNumber("minThreads", 1)));
    T.Spec.MaxThreads = static_cast<unsigned>(O.getNumber("maxThreads"));
    T.Spec.SloSeconds = O.getNumber("sloSeconds");
    T.Granted = static_cast<unsigned>(O.getNumber("granted"));
    T.LastHeartbeat = O.getNumber("lastHeartbeat");
    T.Expired = O.getBool("expired");
    T.Evicted = O.getBool("evicted");
    T.LastLeaseChange = O.getNumber("lastLeaseChange", -1.0);
    T.LastBid = O.getNumber("lastBid");
    T.Monitor = ComplianceMonitor(Opts.Compliance);
    T.Monitor.restoreScore(
        O.getNumber("complianceScore"),
        static_cast<uint64_t>(O.getNumber("violations")));
    if (const JsonValue *S = O.get("sample"); S && S->isObject()) {
      T.LastSample.Time = S->getNumber("t");
      T.LastSample.GrantedThreads = static_cast<unsigned>(S->getNumber("k"));
      T.LastSample.Throughput = S->getNumber("x");
      T.LastSample.OfferedRate = S->getNumber("offered");
      T.LastSample.P95ResponseSeconds = S->getNumber("p95");
      T.LastSample.QueueDepth = S->getNumber("q");
      T.HasSample = true;
    }
    if (const JsonValue *Obs = O.get("obs"); Obs && Obs->isArray())
      for (size_t J = 0; J != Obs->size(); ++J) {
        const JsonValue &Pair = Obs->at(J);
        if (Pair.isArray() && Pair.size() == 2)
          T.Estimator.setObservation(
              static_cast<unsigned>(Pair.at(0).asDouble()),
              Pair.at(1).asDouble());
      }
    Restored.push_back(std::move(T));
  }

  std::sort(Restored.begin(), Restored.end(),
            [](const TenantState &L, const TenantState &R) {
              return L.Id < R.Id;
            });
  for (size_t I = 1; I < Restored.size(); ++I)
    if (Restored[I].Id == Restored[I - 1].Id)
      return false; // duplicate ids: corrupt snapshot

  std::lock_guard<std::mutex> Lock(Mutex);
  Tenants = std::move(Restored);
  TenantId MaxId = 0;
  for (const TenantState &T : Tenants)
    MaxId = std::max(MaxId, T.Id);
  NextId = std::max(static_cast<TenantId>(Snapshot.getNumber("nextId", 1)),
                    MaxId + 1);
  LastRebalance = Snapshot.getNumber("lastRebalance");
  EverRebalanced = Snapshot.getBool("everRebalanced");
  ForceRebalance = false;
  ForceReason = "rebalance";
  DOPE_LOG_DEBUG("arbiter: restored %zu tenants from snapshot",
                 Tenants.size());
  return true;
}

size_t Arbiter::warmStart(const std::vector<TraceRecord> &Journal) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Find = [&](const std::string &Name) -> TenantState * {
    for (TenantState &T : Tenants)
      if (T.Spec.Name == Name)
        return &T;
    return nullptr;
  };

  size_t Applied = 0;
  for (const TraceRecord &R : Journal) {
    TenantState *T = nullptr;
    switch (R.Kind) {
    case TraceKind::Heartbeat:
      if ((T = Find(R.Name))) {
        T->LastHeartbeat = std::max(T->LastHeartbeat, R.Time);
        // Saturated windows carry (threads held, achieved rate) — the
        // same stream the live estimator learned from.
        if (R.Detail == "saturated")
          T->Estimator.observe(static_cast<unsigned>(R.A), R.B);
        ++Applied;
      }
      break;
    case TraceKind::LeaseGrant:
    case TraceKind::LeaseRevoke:
    case TraceKind::LeaseExpire:
      // Lease records carry (new threads, old threads): replaying them
      // re-aligns Granted with what the tenant actually holds, so the
      // first post-restart rebalance diffs against reality.
      if ((T = Find(R.Name))) {
        T->Granted = static_cast<unsigned>(R.A);
        T->LastLeaseChange = std::max(T->LastLeaseChange, R.Time);
        ++Applied;
      }
      break;
    default:
      break;
    }
  }
  DOPE_LOG_DEBUG("arbiter: warm start applied %zu journal records", Applied);
  return Applied;
}

//===- mechanisms/Goal.h - Administrator performance goals -----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The administrator's face of DoPE (paper Sec. 4): a performance goal is
/// an objective plus resource constraints ("maximize throughput with 24
/// threads, 600 Watts"). For each goal there is a best mechanism that
/// DoPE uses by default (Sec. 7) — "a human need not select a particular
/// mechanism":
///
///   MinResponseTime             -> WQ-Linear
///   MaxThroughput               -> TBF
///   MaxThroughputPowerCapped    -> TPC
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_GOAL_H
#define DOPE_MECHANISMS_GOAL_H

#include "core/Mechanism.h"
#include "mechanisms/WqLinear.h"

#include <memory>
#include <string>

namespace dope {

/// The objective component of a performance goal.
enum class Objective {
  MinResponseTime,
  MaxThroughput,
  MaxThroughputPowerCapped,
};

std::string toString(Objective Obj);

/// A performance goal: objective + constraints.
struct PerformanceGoal {
  Objective Obj = Objective::MaxThroughput;
  /// Constraint: number of hardware threads ("with N threads").
  unsigned MaxThreads = 1;
  /// Constraint: power budget in watts; <= 0 when unconstrained.
  double PowerBudgetWatts = 0.0;
  /// Response-time goals additionally need the application's efficiency
  /// knee and SLA-derived queue bound (ignored by the other objectives).
  WqLinearParams ResponseParams;
};

/// Creates the default mechanism for \p Goal.
std::unique_ptr<Mechanism> makeDefaultMechanism(const PerformanceGoal &Goal);

} // namespace dope

#endif // DOPE_MECHANISMS_GOAL_H

# Empty dependencies file for tab15_throughput.
# This may be replaced when dependencies are built.

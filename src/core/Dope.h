//===- core/Dope.h - The Degree of Parallelism Executive ------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DoPE run-time system (paper Secs. 3-6). The executive
///
///   * executes the registered parallelism description on a thread pool,
///   * monitors application features (per-task execution time between
///     Task::begin/Task::end, LoadCB samples) and platform features
///     (FeatureRegistry),
///   * periodically consults the selected Mechanism, and
///   * realizes configuration changes through the suspend / quiesce /
///     reconfigure protocol: begin/end return SUSPENDED, tasks steer to a
///     consistent state via FiniCBs, the executive re-runs InitCBs and
///     respawns task loops under the new configuration.
///
/// Lifecycle mirrors the paper's API (Table 2):
/// \code
///   DopeOptions Opts;
///   Opts.MaxThreads = 24;
///   Opts.Mech = std::make_unique<WqLinearMechanism>(...);
///   std::unique_ptr<Dope> D = Dope::create(RootRegion, std::move(Opts));
///   Dope::destroy(std::move(D)); // waits for registered tasks to end
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_DOPE_H
#define DOPE_CORE_DOPE_H

#include "core/Config.h"
#include "core/Failure.h"
#include "core/FeatureRegistry.h"
#include "core/Mechanism.h"
#include "core/Monitor.h"
#include "core/Task.h"
#include "core/ThreadPool.h"
#include "core/Types.h"
#include "support/Compiler.h"
#include "support/ThreadAnnotations.h"
#include "support/Trace.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace dope {

class Dope;

/// Shared state of one region epoch (defined in Dope.cpp). Heap-allocated
/// and reference-counted so replicas abandoned by the quiesce watchdog can
/// outlive the runRegion frame that spawned them and still count down
/// safely. Carries a parent pointer so abandoning a root epoch also steers
/// replicas of its nested inner regions out.
struct RegionRunState;

/// Per-replica handle passed to task functors; provides the paper's
/// Task::begin / Task::end / Task::wait methods plus introspection.
class TaskRuntime {
public:
  /// Signals that the CPU-intensive part of the task instance has begun.
  /// Returns SUSPENDED when the executive intends to reconfigure.
  DOPE_HOT TaskStatus begin();

  /// Signals that the CPU-intensive part has ended; records the instance's
  /// execution time. Returns SUSPENDED when reconfiguration is pending.
  DOPE_HOT TaskStatus end();

  /// Executes the task's active inner parallelism alternative to
  /// completion (one inner-loop lifetime), returning the status of the
  /// inner master task: FINISHED on normal completion, SUSPENDED when the
  /// run-time interrupted it for reconfiguration. Returns FINISHED
  /// immediately if the task has no active inner alternative.
  ///
  /// \p InnerContext is handed to every inner task replica through
  /// TaskRuntime::context(), letting shared inner functors address the
  /// per-transaction state (queues, buffers) of the invoking outer
  /// replica — several outer replicas may run inner regions
  /// concurrently.
  TaskStatus wait(void *InnerContext = nullptr);

  /// The context pointer the parent replica passed to wait(); null for
  /// root-region tasks.
  void *context() const { return UserContext; }

  /// True when the executive activated an inner parallelism alternative
  /// for this task; false means the functor should perform the work
  /// inline (the <(N, DOALL), (1, SEQ)> configurations of Sec. 2).
  bool innerActive() const { return Config.AltIndex >= 0; }

  /// The task this runtime serves.
  const Task &task() const { return TheTask; }

  /// This replica's index within the task's extent, in [0, extent()).
  unsigned replicaIndex() const { return Replica; }

  /// The extent the task currently runs at.
  unsigned extent() const { return Config.Extent; }

  /// The grain size the task currently runs at — the split-stop
  /// threshold of a tree region's recursive task (TaskConfig::Grain);
  /// 0 for stage-graph tasks.
  unsigned grain() const { return Config.Grain; }

  /// Monotonic seconds (the executive's clock).
  double nowSeconds() const;

  TaskRuntime(const TaskRuntime &) = delete;
  TaskRuntime &operator=(const TaskRuntime &) = delete;

  /// Flushes any locally accumulated exec-time samples to the shared
  /// TaskMetrics. Called automatically on destruction (replica exit).
  ~TaskRuntime() { flushWindow(); }

private:
  friend class Dope;
  TaskRuntime(Dope &Executive, const Task &TheTask, const TaskConfig &Config,
              unsigned Replica, void *UserContext,
              const RegionRunState *Run = nullptr)
      : Executive(Executive), TheTask(TheTask), Config(Config),
        Replica(Replica), UserContext(UserContext), Run(Run) {}

  void flushWindow();

  /// True when the quiesce watchdog abandoned this replica's epoch (or an
  /// enclosing one): the executive moved on, and begin/end steer the
  /// replica out via SUSPENDED.
  bool abandoned() const;

  Dope &Executive;
  const Task &TheTask;
  const TaskConfig &Config;
  unsigned Replica;
  void *UserContext;
  const RegionRunState *Run;
  double BeginTime = -1.0;

  /// Replica-local exec-time accumulation window. Each replica owns one
  /// (the runtime lives on the replica's stack), so per-instance
  /// monitoring touches no shared cache line; the shared TaskMetrics
  /// mutex is taken only when the window flushes — every
  /// WindowMaxSamples instances, after WindowMaxSeconds, or on replica
  /// exit. Padded so two runtimes can never false-share.
  static constexpr uint32_t WindowMaxSamples = 64;
  static constexpr double WindowMaxSeconds = 0.005;
  struct alignas(64) ExecWindow {
    uint32_t Count = 0;
    double TotalSeconds = 0.0;
    double FirstSampleTime = 0.0;
  };
  ExecWindow Window;
};

/// Options for Dope::create.
struct DopeOptions {
  /// Thread budget (administrator constraint "with N threads").
  unsigned MaxThreads = std::thread::hardware_concurrency();

  /// Power budget in watts; <= 0 disables the constraint.
  double PowerBudgetWatts = 0.0;

  /// The adaptation mechanism. When null the executive runs the initial
  /// configuration statically.
  std::unique_ptr<Mechanism> Mech;

  /// Initial configuration; when empty the canonical default (all extents
  /// 1, first alternatives) is used.
  RegionConfig InitialConfig;

  /// Period of the monitoring / reconfiguration-decision loop.
  double MonitorIntervalSeconds = 0.005;

  /// Lower bound between two reconfigurations, damping thrash.
  double MinReconfigIntervalSeconds = 0.02;

  /// When non-empty, the executive records a structured trace of the run
  /// (feature samples, decisions, queue depths, task begin/end/wait,
  /// failure events) and writes it here at destruction. ".json" gets
  /// Chrome trace_event JSON (chrome://tracing / Perfetto); any other
  /// extension gets the compact JSONL decision log that `dope_trace`
  /// dumps, diffs, and summarizes.
  std::string TraceFile;

  /// External tracer to record into instead of an executive-owned one
  /// (harnesses that aggregate several runs into one trace). The caller
  /// keeps ownership and drains it; TraceFile is still honoured.
  Tracer *Trace = nullptr;

  /// Ring capacity per recording thread of the executive-owned tracer.
  size_t TraceCapacityPerThread = 65536;

  /// Watchdog deadline for quiescing a root-region epoch, in seconds.
  /// Once the epoch starts winding down (master replica 0 stopped —
  /// finished, suspended for reconfiguration, or failed), the remaining
  /// replicas have this long to stop. Replicas still running at the
  /// deadline are *abandoned*: their FiniCBs are forced (exactly once,
  /// closing downstream queues), an incident is recorded per stuck task,
  /// and the stuck threads are deducted from the "LiveContexts" feature so
  /// mechanisms re-plan the region at reduced DoP instead of the executive
  /// deadlocking. Must exceed the pipeline's worst-case drain time.
  /// 0 (the default) disables the watchdog.
  double QuiesceDeadlineSeconds = 0.0;

  /// Thread-envelope lease TTL in seconds; 0 (the default) disables
  /// expiry. When set, the envelope granted by setThreadEnvelope must be
  /// renewed (another setThreadEnvelope or renewThreadEnvelope call)
  /// within this long; an unrenewed envelope is treated as an expired
  /// lease — the arbiter that granted it may be dead or partitioned —
  /// and the executive gracefully shrinks to EnvelopeExpireFloor
  /// through the ordinary quiesce path (traced as LeaseExpire). No task
  /// is killed; a later renewal grows the envelope again.
  double EnvelopeTtlSeconds = 0.0;

  /// Envelope an expired lease shrinks to (clamped to [1, MaxThreads]):
  /// the self-preservation floor the executive assumes it may keep
  /// without a live arbiter.
  unsigned EnvelopeExpireFloor = 1;
};

/// The executive. One instance manages one root parallel region.
class Dope {
public:
  /// Launches the parallel application described by \p Root (paper:
  /// DoPE::create(ParDescriptor *pd)). Execution starts immediately on
  /// background threads.
  static std::unique_ptr<Dope> create(ParDescriptor *Root, DopeOptions Opts);

  /// Finalizes the run-time system: waits for registered tasks to end
  /// (paper: DoPE::destroy). Equivalent to D->wait(); D.reset().
  static void destroy(std::unique_ptr<Dope> D);

  ~Dope();
  Dope(const Dope &) = delete;
  Dope &operator=(const Dope &) = delete;

  /// Blocks until the root region's master task finishes or the run fails
  /// permanently; returns the run's final status (FINISHED or FAILED).
  TaskStatus wait();

  /// Blocks up to \p Seconds for the run to end. Returns true when the run
  /// ended within the deadline (query status() / failure() for the
  /// verdict), false on timeout.
  bool waitFor(double Seconds);

  /// The run's status without blocking: EXECUTING while the application is
  /// live, then FINISHED or FAILED.
  TaskStatus status() const;

  /// True once the root master task has returned FINISHED.
  bool finished() const;

  /// The first permanent task failure of the run, if any (the run's
  /// cause of death when status() == FAILED).
  std::optional<TaskFailure> failure() const { return Log.firstFailure(); }

  /// Counters of the run's failure events: retries, permanent failures,
  /// watchdog incidents.
  const FailureLog &failureLog() const { return Log; }

  /// Requests an orderly early shutdown: the application observes
  /// SUSPENDED, quiesces, and the run ends without respawning.
  void requestStop();

  //===--------------------------------------------------------------------===
  // Mechanism-developer API (paper Fig. 9)
  //===--------------------------------------------------------------------===

  /// Smoothed per-instance execution time of \p T in seconds.
  double getExecTime(const Task *T) const;

  /// Smoothed load on \p T (LoadCB samples).
  double getLoad(const Task *T) const;

  /// Registers a platform feature callback (e.g. "SystemPower").
  void registerCB(const std::string &Feature, FeatureFn Callback,
                  double MinSampleIntervalSeconds = 0.0);

  /// Reads a platform feature; std::nullopt when unregistered.
  std::optional<double> getValue(const std::string &Feature) const;

  //===--------------------------------------------------------------------===
  // Introspection (tests, examples, harnesses)
  //===--------------------------------------------------------------------===

  /// The configuration currently executing.
  RegionConfig currentConfig() const;

  /// Number of completed reconfigurations.
  uint64_t reconfigurationCount() const;

  /// Builds a monitored snapshot of the root region.
  RegionSnapshot snapshot() const;

  /// Thread budget the executive honours (the administrator's hard cap).
  unsigned maxThreads() const { return Options.MaxThreads; }

  //===--------------------------------------------------------------------===
  // Thread envelope (platform-arbiter lease)
  //===--------------------------------------------------------------------===

  /// Adjusts the runtime thread envelope — the share of the machine a
  /// platform arbiter currently leases to this executive. Clamped to
  /// [1, MaxThreads]. Shrinking below the active configuration's
  /// footprint triggers the suspend/quiesce protocol: the running epoch
  /// steers out at its next begin/end and the executive re-enters the
  /// region degraded to the new budget — no task is killed. Growing
  /// raises the ceiling mechanisms plan against (effectiveThreads) so
  /// the next decision can widen the configuration again. Thread-safe;
  /// callable at any time during the run.
  void setThreadEnvelope(unsigned Threads);

  /// The envelope currently in force, in [1, MaxThreads]. Equals
  /// MaxThreads unless a lease narrowed it.
  unsigned threadEnvelope() const {
    return Envelope.load(std::memory_order_acquire);
  }

  /// Renews the envelope lease without changing it — a heartbeat from
  /// the granting arbiter. Only meaningful with
  /// DopeOptions::EnvelopeTtlSeconds > 0 (setThreadEnvelope also
  /// renews). Thread-safe.
  void renewThreadEnvelope();

  /// Contexts still usable for planning: the thread envelope minus
  /// threads wedged inside abandoned replicas. Exported as the
  /// "LiveContexts" feature, so mechanisms sizing configurations with
  /// MechanismContext::effectiveThreads honour leases and core loss
  /// through one ceiling.
  unsigned liveThreads() const;

  /// The tracer recording this run, or null when tracing is off.
  Tracer *tracer() const { return Trace; }

private:
  friend class TaskRuntime;

  Dope(ParDescriptor *Root, DopeOptions Opts);

  /// Body of the epoch loop: run region, handle suspensions, apply new
  /// configurations until the master finishes.
  void runMain();

  /// Monitoring/decision loop body.
  void runController();

  /// Runs \p Region under \p Config until its master task finishes,
  /// suspends, or fails; returns the master's final status. \p UserContext
  /// reaches every replica through TaskRuntime::context(). \p IsRoot
  /// enables the quiesce watchdog (root-region epochs only; inner regions
  /// are covered by the root's watchdog through their parent replica).
  /// \p SpawnerName / \p SpawnerReplica identify the parent replica that
  /// opened this region (empty name for the root region); they flow into
  /// every replica's TaskBegin record so offline analysis can
  /// reconstruct the spawn DAG.
  TaskStatus runRegion(const ParDescriptor &Region, const RegionConfig &Config,
                       void *UserContext = nullptr, bool IsRoot = false,
                       const RegionRunState *Parent = nullptr,
                       const std::string &SpawnerName = {},
                       unsigned SpawnerReplica = 0);

  /// One replica's task loop: the executive's exception boundary. A
  /// throwing functor is retried per the task descriptor's RetryPolicy;
  /// exhaustion records the failure and returns FAILED.
  TaskStatus taskLoop(const Task &T, const TaskConfig &Config,
                      unsigned Replica, void *UserContext, RegionRunState &Run);

  /// Executes the active inner region of \p Config on behalf of a parent
  /// replica (Task::wait).
  TaskStatus runInnerRegion(const Task &Parent, unsigned ParentReplica,
                            const TaskConfig &Config, void *UserContext,
                            const RegionRunState *ParentRun);

  /// Records a replica's permanent failure (first one becomes the run's
  /// cause), marks the replica's epoch failed, and requests a global
  /// suspend so the rest of the application winds down.
  void recordReplicaFailure(const Task &T, unsigned Replica,
                            std::string Message, unsigned Attempts,
                            RegionRunState &Run);

  TaskMetrics &metricsFor(const Task &T);
  const TaskMetrics *metricsForIfPresent(const Task &T) const;

  /// Fills a RegionSnapshot subtree for \p Region with the extents of
  /// \p Active (may be null when the region is not currently configured).
  RegionSnapshot snapshotRegion(const ParDescriptor &Region,
                                const std::vector<TaskConfig> *Active) const;

  bool suspendRequested() const {
    return SuspendFlag.load(std::memory_order_acquire);
  }

  ParDescriptor *Root;
  DopeOptions Options;

  // State a replica may touch is declared before Pool: members are
  // destroyed in reverse order, and the pool destructor is the join point
  // for replicas the quiesce watchdog abandoned.
  FeatureRegistry Features;
  FailureLog Log;

  /// Tracing: Trace points at OwnedTrace or DopeOptions::Trace; null
  /// means tracing is off and every trace point is one pointer test.
  std::unique_ptr<Tracer> OwnedTrace;
  Tracer *Trace = nullptr;

  std::atomic<bool> SuspendFlag{false};
  /// Runtime thread envelope in [1, MaxThreads]; see setThreadEnvelope.
  std::atomic<unsigned> Envelope{1};
  /// monotonicSeconds() of the last envelope grant or renewal; the
  /// controller expires the lease when EnvelopeTtlSeconds lapse without
  /// one.
  std::atomic<double> EnvelopeRenewedAt{0.0};
  std::atomic<bool> StopFlag{false};
  std::atomic<bool> FailFlag{false};
  std::atomic<bool> Finished{false};
  std::atomic<uint64_t> ReconfigCount{0};

  /// Threads wedged inside replicas the watchdog abandoned; permanently
  /// deducted from liveThreads() (conservative — not reclaimed even if a
  /// straggler eventually unblocks and exits).
  std::atomic<unsigned> LostThreads{0};

  // Task metrics, indexed by dense task id; created eagerly for the
  // whole graph reachable from Root so the per-instance hot path
  // (TaskRuntime::end) is one bounds-checked array load, not a hash
  // lookup.
  std::vector<std::unique_ptr<TaskMetrics>> Metrics;

  ThreadPool Pool;

  mutable std::mutex ConfigMutex;
  RegionConfig ActiveConfig DOPE_GUARDED_BY(ConfigMutex);
  RegionConfig PendingConfig DOPE_GUARDED_BY(ConfigMutex);
  bool HasPendingConfig DOPE_GUARDED_BY(ConfigMutex) = false;

  double LastReconfigTime = 0.0; // controller thread only

  std::thread MainThread;
  std::thread ControllerThread;

  mutable std::mutex DoneMutex;
  std::condition_variable DoneCond;
};

} // namespace dope

#endif // DOPE_CORE_DOPE_H

//===- core/WarmStart.h - Mechanism warm-start hints -----------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The feedback half of the what-if profiler (tools/dope_whatif,
/// src/analysis/): an offline analysis of a recorded trace predicts the
/// optimal parallelism configuration, and a WarmStartHint carries that
/// prediction back into a live mechanism so it *starts* at the predicted
/// optimum instead of hill-climbing toward it after every restart.
///
/// Hints are advisory by contract: a mechanism seeded with one jumps to
/// the hinted configuration on its next (re)start and then falls back to
/// its normal adaptation loop, so a stale or wrong hint costs at most the
/// usual convergence the mechanism would have paid anyway. A hint that is
/// structurally infeasible (wrong stage arity, over the thread budget) is
/// discarded outright.
///
/// The JSON form ("dope-warmstart-v1") is what dope_whatif emits and what
/// mechanisms/Factory's hint-accepting constructor reads, so the loop
///   trace -> recommend -> hint file -> seeded mechanism
/// round-trips through files an operator can inspect and edit.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_WARMSTART_H
#define DOPE_CORE_WARMSTART_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dope {

/// Schema tag of the JSON form; bump on incompatible changes.
inline constexpr const char *WarmStartSchema = "dope-warmstart-v1";

/// An offline-derived starting configuration for an adaptive mechanism.
struct WarmStartHint {
  /// Mechanism the hint was computed for ("FDP", "WQT-H", ...); empty
  /// means any mechanism may consume it.
  std::string Mechanism;

  /// Provenance, e.g. the trace file the recommendation came from.
  std::string Source;

  /// Throughput the analysis predicts at the hinted configuration
  /// (items/second); informational.
  double PredictedThroughput = 0.0;

  /// Driver alternative to activate (pipelines with a fused variant);
  /// 0 for the plain pipeline, -1 when not applicable.
  int AltIndex = 0;

  /// Hinted DoP extents: per-stage for a pipeline, {outer, inner} for a
  /// server nest.
  std::vector<unsigned> Extents;

  /// Total threads the hinted extents occupy.
  unsigned totalExtent() const {
    unsigned Total = 0;
    for (unsigned E : Extents)
      Total += E;
    return Total;
  }

  /// True when the hint names \p MechanismName or is mechanism-agnostic.
  bool appliesTo(std::string_view MechanismName) const {
    return Mechanism.empty() || Mechanism == MechanismName;
  }
};

/// Serializes \p Hint as a single-line "dope-warmstart-v1" JSON object.
std::string writeWarmStartHint(const WarmStartHint &Hint);

/// Parses the JSON form; std::nullopt (with \p Error filled when
/// non-null) on malformed input or an unknown schema tag.
std::optional<WarmStartHint> readWarmStartHint(std::string_view Text,
                                               std::string *Error = nullptr);

} // namespace dope

#endif // DOPE_CORE_WARMSTART_H

# Empty compiler generated dependencies file for fig13_ferret_search.
# This may be replaced when dependencies are built.

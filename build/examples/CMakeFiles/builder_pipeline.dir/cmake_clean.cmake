file(REMOVE_RECURSE
  "CMakeFiles/builder_pipeline.dir/builder_pipeline.cpp.o"
  "CMakeFiles/builder_pipeline.dir/builder_pipeline.cpp.o.d"
  "builder_pipeline"
  "builder_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/builder_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

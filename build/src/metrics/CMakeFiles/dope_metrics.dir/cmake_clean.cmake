file(REMOVE_RECURSE
  "CMakeFiles/dope_metrics.dir/ResponseStats.cpp.o"
  "CMakeFiles/dope_metrics.dir/ResponseStats.cpp.o.d"
  "CMakeFiles/dope_metrics.dir/TimeSeries.cpp.o"
  "CMakeFiles/dope_metrics.dir/TimeSeries.cpp.o.d"
  "libdope_metrics.a"
  "libdope_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dope_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- bench/tab15_throughput.cpp - Table 15 reproduction ------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Table 15 (labelled "Figure 15: Throughput
/// improvement over static even thread distribution"): normalized batch
/// throughput of ferret and dedup under
///
///   Pthreads-Baseline (static even split),
///   Pthreads-OS       (every parallel task gets all hardware threads;
///                      the OS — here the processor-sharing model — load
///                      balances),
///   SEDA, FDP, DoPE-TB (TBF without fusion), DoPE-TBF.
///
/// Published anchors: ferret Pthreads-OS 2.12x, dedup Pthreads-OS 0.89x,
/// and a 136% geomean improvement (~2.36x) for the DoPEd applications.
/// Expected ordering: TBF best, TB close behind, FDP/SEDA between,
/// OS good for ferret but a wash for dedup.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "apps/PipelineApps.h"
#include "mechanisms/Dpm.h"
#include "mechanisms/Fdp.h"
#include "mechanisms/Seda.h"
#include "mechanisms/StaticMechanism.h"
#include "mechanisms/Tbf.h"
#include "sim/PipelineSim.h"
#include "support/Statistics.h"

#include <cstdio>
#include <map>
#include <vector>

using namespace dope;
using namespace dope::bench;

namespace {

std::vector<unsigned> evenExtents(const PipelineAppModel &App,
                                  unsigned Contexts) {
  unsigned SeqCount = 0;
  unsigned ParCount = 0;
  for (const PipelineStageSpec &S : App.Stages)
    (S.Parallel ? ParCount : SeqCount) += 1;
  const unsigned Budget = Contexts > SeqCount ? Contexts - SeqCount : 0;
  std::vector<unsigned> Extents;
  unsigned Handed = 0;
  unsigned ParSeen = 0;
  for (const PipelineStageSpec &S : App.Stages) {
    if (!S.Parallel) {
      Extents.push_back(1);
      continue;
    }
    ++ParSeen;
    // Distribute Budget as evenly as possible, front-loaded.
    const unsigned Share = (Budget * ParSeen) / ParCount - Handed;
    Extents.push_back(std::max(1u, Share));
    Handed += Share;
  }
  return Extents;
}

std::vector<unsigned> oversubExtents(const PipelineAppModel &App,
                                     unsigned Contexts) {
  std::vector<unsigned> Extents;
  for (const PipelineStageSpec &S : App.Stages)
    Extents.push_back(S.Parallel ? Contexts : 1);
  return Extents;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options(
      "Table 15: batch throughput of ferret and dedup, normalized to the "
      "static even thread distribution");
  addCommonOptions(Options);
  Options.addInt("items", 2500, "items per run");
  parseOrExit(Options, Argc, Argv);

  const bool Csv = Options.getFlag("csv");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  const uint64_t Seed = static_cast<uint64_t>(Options.getInt("seed"));
  uint64_t Items = static_cast<uint64_t>(Options.getInt("items"));
  if (Options.getFlag("quick"))
    Items = 800;

  const std::vector<std::string> Schemes = {
      "Pthreads-Baseline", "Pthreads-OS", "SEDA",     "DPM (ext)",
      "FDP",               "DoPE-TB",     "DoPE-TBF"};

  Table T({"scheme", "ferret", "dedup", "geomean"});
  std::map<std::string, std::map<std::string, double>> Normalized;

  std::map<std::string, double> BaselineTput;
  for (const PipelineAppModel &App : allPipelineApps()) {
    PipelineSimOptions SimOpts;
    SimOpts.Contexts = Contexts;
    SimOpts.Seed = Seed;
    SimOpts.NumItems = Items;
    SimOpts.DecisionIntervalSeconds = 0.5;
    PipelineSim Sim(App, SimOpts);

    const std::vector<unsigned> Even = evenExtents(App, Contexts);
    const double Baseline = Sim.run(nullptr, Even).Throughput;
    BaselineTput[App.Name] = Baseline;
    Normalized["Pthreads-Baseline"][App.Name] = 1.0;

    Normalized["Pthreads-OS"][App.Name] =
        Sim.run(nullptr, oversubExtents(App, Contexts)).Throughput /
        Baseline;

    SedaMechanism Seda;
    Normalized["SEDA"][App.Name] =
        Sim.run(&Seda, Even).Throughput / Baseline;

    DpmMechanism Dpm;
    Normalized["DPM (ext)"][App.Name] =
        Sim.run(&Dpm, Even).Throughput / Baseline;

    FdpMechanism Fdp;
    Normalized["FDP"][App.Name] = Sim.run(&Fdp, Even).Throughput / Baseline;

    TbfMechanism Tb({0.5, /*EnableFusion=*/false});
    Normalized["DoPE-TB"][App.Name] =
        Sim.run(&Tb, Even).Throughput / Baseline;

    TbfMechanism Tbf({0.5, /*EnableFusion=*/true});
    Normalized["DoPE-TBF"][App.Name] =
        Sim.run(&Tbf, Even).Throughput / Baseline;
  }

  for (const std::string &Scheme : Schemes) {
    const double Ferret = Normalized[Scheme]["ferret"];
    const double Dedup = Normalized[Scheme]["dedup"];
    T.addRow({Scheme, Table::formatDouble(Ferret, 2) + "x",
              Table::formatDouble(Dedup, 2) + "x",
              Table::formatDouble(geomean({Ferret, Dedup}), 2) + "x"});
  }
  emitTable("Table 15: throughput normalized to Pthreads-Baseline", T,
            Csv);

  std::printf("baseline throughputs: ferret %.3f items/s, dedup %.3f "
              "items/s\n\n",
              BaselineTput["ferret"], BaselineTput["dedup"]);

  bool Ok = true;
  const double FerretOs = Normalized["Pthreads-OS"]["ferret"];
  const double DedupOs = Normalized["Pthreads-OS"]["dedup"];
  const double TbfGeomean = geomean({Normalized["DoPE-TBF"]["ferret"],
                                     Normalized["DoPE-TBF"]["dedup"]});
  Ok &= checkShape(FerretOs > 1.5 && FerretOs < 3.0,
                   "ferret Pthreads-OS lands near the paper's 2.12x "
                   "(measured " +
                       Table::formatDouble(FerretOs, 2) + "x)");
  Ok &= checkShape(DedupOs > 0.7 && DedupOs < 1.1,
                   "dedup Pthreads-OS is a wash, near the paper's 0.89x "
                   "(measured " +
                       Table::formatDouble(DedupOs, 2) + "x)");
  Ok &= checkShape(TbfGeomean > 1.9,
                   "DoPE-TBF geomean improvement is in the paper's "
                   "~2.36x ballpark (measured " +
                       Table::formatDouble(TbfGeomean, 2) + "x)");
  Ok &= checkShape(Normalized["DoPE-TBF"]["ferret"] >=
                           Normalized["DoPE-TB"]["ferret"] - 0.05 &&
                       Normalized["DoPE-TBF"]["dedup"] >=
                           Normalized["DoPE-TB"]["dedup"] - 0.05,
                   "fusion (TBF) does not lose to TB on either app");
  Ok &= checkShape(Normalized["DoPE-TBF"]["ferret"] >
                           Normalized["SEDA"]["ferret"] &&
                       Normalized["DoPE-TBF"]["dedup"] >
                           Normalized["SEDA"]["dedup"],
                   "DoPE-TBF outperforms SEDA on both apps");
  Ok &= checkShape(Normalized["DoPE-TBF"]["ferret"] >=
                           Normalized["FDP"]["ferret"] - 0.05 &&
                       Normalized["DoPE-TBF"]["dedup"] >=
                           Normalized["FDP"]["dedup"] - 0.05,
                   "DoPE-TBF at least matches FDP on both apps");
  return Ok ? 0 : 1;
}

//===- bench/ext_chaos.cpp - Lease protocol chaos soak ---------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness acceptance for the hardened lease protocol: every party of
/// the arbiter<->tenant contract misbehaves or dies, and the protocol's
/// invariants must hold anyway.
///
/// Three experiments:
///
///   1. Warm restart — the arbiter is killed mid-run and restarted from
///      a snapshot or from the host's protocol journal; its allocation
///      must re-converge to within 5% of the uninterrupted run's in at
///      most 3 rebalance rounds (a cold restart is run for contrast).
///
///   2. Containment — one byzantine reporter and one envelope violator
///      share the platform with two honest tenants; the honest tenants
///      must keep at least 90% of their fault-free weighted attainment.
///
///   3. Chaos soak — randomized schedules (tenant crashes, silent
///      windows, byzantine clocks, envelope violations, heartbeat loss,
///      arbiter kill/restart in every mode) over many seeds, with the
///      ChaosInvariants checker asserting budget, revoke-before-grant
///      and no-zombie-lease after every decision, and every seed run
///      twice to prove determinism. A failing seed is greedily
///      minimized and printed for replay.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "sim/ChaosInvariants.h"
#include "sim/ColocationSim.h"
#include "sim/FaultInjector.h"
#include "support/Random.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace dope;
using namespace dope::bench;

namespace {

constexpr double EpochSeconds = 2.0;
constexpr double LeaseTtl = 5.0;

/// Latency-sensitive nested-parallel frontend, sized to cruise
/// comfortably at its floor so the honest platform settles into a
/// stable fixed point (recovery is measured as distance from it).
ColocationTenantSpec frontendTenant() {
  ColocationTenantSpec T;
  T.Tenant.Name = "frontend";
  T.Tenant.Goal = TenantGoal::ResponseTime;
  T.Tenant.Weight = 2.0;
  T.Tenant.MinThreads = 4;
  T.Tenant.SloSeconds = 0.5;
  T.Kind = ColocationTenantSpec::AppKind::NestServer;
  T.Nest.Name = "frontend";
  T.Nest.SeqServiceSeconds = 0.05;
  T.Nest.Curve = SpeedupCurve(0.1, 0.2);
  T.ArrivalRate = 30.0;
  return T;
}

/// Throughput-hungry batch pipeline; the name parameterizes clones.
ColocationTenantSpec batchTenant(const std::string &Name,
                                 double ArrivalRate) {
  ColocationTenantSpec T;
  T.Tenant.Name = Name;
  T.Tenant.Goal = TenantGoal::Throughput;
  T.Tenant.Weight = 1.0;
  T.Kind = ColocationTenantSpec::AppKind::Pipeline;
  T.Pipeline.Name = Name;
  T.Pipeline.Stages = {{"decode", true, 0.02, 0.15},
                       {"work", true, 0.1, 0.15},
                       {"sink", true, 0.03, 0.15}};
  T.ArrivalRate = ArrivalRate;
  return T;
}

std::vector<ColocationTenantSpec> platformTenants() {
  return {frontendTenant(), batchTenant("batch", 120.0),
          batchTenant("miner", 80.0), batchTenant("indexer", 60.0)};
}

/// Everything one chaos run varies on top of the honest platform.
struct ChaosSchedule {
  ArbiterOutage Outage;
  double HeartbeatDrop = 0.0;
  std::vector<TenantMisbehavior> Tenant;
};

ColocationSimResult runSchedule(const ChaosSchedule &Schedule,
                                unsigned Contexts, uint64_t Seed,
                                double Duration) {
  std::vector<ColocationTenantSpec> Tenants = platformTenants();
  for (size_t I = 0; I != Tenants.size() && I != Schedule.Tenant.size(); ++I)
    Tenants[I].Misbehavior = Schedule.Tenant[I];

  ColocationSimOptions Opts;
  Opts.Contexts = Contexts;
  Opts.Seed = Seed;
  Opts.DurationSeconds = Duration;
  Opts.StepSeconds = 0.05;
  Opts.WarmupSeconds = 4.0;
  Opts.Policy = ColocationPolicy::Arbiter;
  Opts.Arbiter.EpochSeconds = EpochSeconds;
  Opts.Arbiter.LeaseTtlSeconds = LeaseTtl;
  Opts.Outage = Schedule.Outage;

  FaultPlan Plan;
  Plan.HeartbeatDropProbability = Schedule.HeartbeatDrop;
  FaultInjector Faults(Plan, Seed);
  Opts.Faults = Plan.empty() ? nullptr : &Faults;

  ColocationSim Sim(std::move(Tenants), Opts);
  return Sim.run();
}

ChaosSchedule emptySchedule() {
  ChaosSchedule S;
  S.Tenant.resize(platformTenants().size());
  return S;
}

/// Snap a time onto the epoch grid so outage edges land on rebalance
/// boundaries.
double onEpoch(double T) {
  return std::max(EpochSeconds,
                  std::round(T / EpochSeconds) * EpochSeconds);
}

ChaosSchedule randomSchedule(uint64_t Seed, double Duration) {
  Rng R(Seed ^ 0xc4a05c4a05ULL);
  ChaosSchedule S = emptySchedule();
  if (R.uniform() < 0.7) {
    S.Outage.KillSeconds = onEpoch(Duration * (0.25 + 0.35 * R.uniform()));
    S.Outage.RestartSeconds =
        onEpoch(S.Outage.KillSeconds +
                EpochSeconds * (1.0 + 3.0 * R.uniform()));
    switch (R.uniformInt(3)) {
    case 0:
      S.Outage.Mode = ArbiterOutage::RestartMode::Cold;
      break;
    case 1:
      S.Outage.Mode = ArbiterOutage::RestartMode::Snapshot;
      break;
    default:
      S.Outage.Mode = ArbiterOutage::RestartMode::WarmTrace;
      break;
    }
  }
  if (R.uniform() < 0.5)
    S.HeartbeatDrop = 0.15 * R.uniform();
  for (TenantMisbehavior &M : S.Tenant) {
    const double Roll = R.uniform();
    if (Roll < 0.18) {
      M.CrashSeconds = Duration * (0.2 + 0.5 * R.uniform());
    } else if (Roll < 0.36) {
      M.SilentFromSeconds = Duration * (0.2 + 0.3 * R.uniform());
      M.SilentUntilSeconds =
          M.SilentFromSeconds + Duration * (0.1 + 0.2 * R.uniform());
    } else if (Roll < 0.54) {
      M.ByzantineFromSeconds = Duration * (0.1 + 0.4 * R.uniform());
      M.ReportedRateFactor = 2.0 + 4.0 * R.uniform();
      M.NonMonotoneClock = R.uniform() < 0.5;
    } else if (Roll < 0.68) {
      M.EnvelopeViolationThreads = 1 + static_cast<unsigned>(R.uniformInt(3));
    }
  }
  return S;
}

std::string describeSchedule(const ChaosSchedule &S) {
  std::string Out;
  if (S.Outage.enabled()) {
    Out += "outage[kill=" + Table::formatDouble(S.Outage.KillSeconds, 0) +
           " restart=" + Table::formatDouble(S.Outage.RestartSeconds, 0) +
           " mode=" +
           (S.Outage.Mode == ArbiterOutage::RestartMode::Cold ? "cold"
            : S.Outage.Mode == ArbiterOutage::RestartMode::Snapshot
                ? "snapshot"
                : "warm-trace") +
           "] ";
  }
  if (S.HeartbeatDrop > 0.0)
    Out += "hb-drop=" + Table::formatDouble(S.HeartbeatDrop, 3) + " ";
  for (size_t I = 0; I != S.Tenant.size(); ++I) {
    const TenantMisbehavior &M = S.Tenant[I];
    if (!M.any())
      continue;
    Out += "t" + std::to_string(I) + "[";
    if (M.CrashSeconds >= 0.0)
      Out += "crash@" + Table::formatDouble(M.CrashSeconds, 0) + " ";
    if (M.SilentUntilSeconds > M.SilentFromSeconds)
      Out += "silent " + Table::formatDouble(M.SilentFromSeconds, 0) + "-" +
             Table::formatDouble(M.SilentUntilSeconds, 0) + " ";
    if (M.ByzantineFromSeconds >= 0.0)
      Out += std::string("byz@") +
             Table::formatDouble(M.ByzantineFromSeconds, 0) +
             (M.NonMonotoneClock ? " clock" : "") + " ";
    if (M.EnvelopeViolationThreads > 0)
      Out += "viol+" + std::to_string(M.EnvelopeViolationThreads);
    Out += "] ";
  }
  return Out.empty() ? "honest" : Out;
}

bool journalsEqual(const std::vector<TraceRecord> &A,
                   const std::vector<TraceRecord> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Time != B[I].Time || A[I].Kind != B[I].Kind ||
        A[I].Name != B[I].Name || A[I].A != B[I].A || A[I].B != B[I].B ||
        A[I].Detail != B[I].Detail)
      return false;
  return true;
}

struct SeedVerdict {
  bool InvariantsOk = true;
  bool Deterministic = true;
  ChaosInvariantReport Report;
};

SeedVerdict checkSeed(const ChaosSchedule &S, unsigned Contexts,
                      uint64_t Seed, double Duration) {
  SeedVerdict V;
  const ColocationSimResult First = runSchedule(S, Contexts, Seed, Duration);
  ChaosInvariantOptions InvOpts;
  InvOpts.PlatformThreads = Contexts;
  InvOpts.LeaseTtlSeconds = LeaseTtl;
  V.Report = checkChaosInvariants(First.ProtocolJournal, InvOpts);
  V.InvariantsOk = V.Report.ok();
  const ColocationSimResult Again = runSchedule(S, Contexts, Seed, Duration);
  V.Deterministic =
      journalsEqual(First.ProtocolJournal, Again.ProtocolJournal);
  return V;
}

/// Greedy schedule minimization: drop every chaos ingredient that is
/// not needed to reproduce the failure, so the printed repro is small.
ChaosSchedule minimizeSchedule(ChaosSchedule S, unsigned Contexts,
                               uint64_t Seed, double Duration) {
  auto stillFails = [&](const ChaosSchedule &C) {
    const SeedVerdict V = checkSeed(C, Contexts, Seed, Duration);
    return !V.InvariantsOk || !V.Deterministic;
  };
  {
    ChaosSchedule C = S;
    C.Outage = ArbiterOutage();
    if (stillFails(C))
      S = C;
  }
  {
    ChaosSchedule C = S;
    C.HeartbeatDrop = 0.0;
    if (stillFails(C))
      S = C;
  }
  for (size_t I = 0; I != S.Tenant.size(); ++I) {
    if (!S.Tenant[I].any())
      continue;
    ChaosSchedule C = S;
    C.Tenant[I] = TenantMisbehavior();
    if (stillFails(C))
      S = C;
  }
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options(
      "Lease protocol chaos soak: arbiter kill/restart, tenant crashes, "
      "byzantine telemetry and envelope violations under an "
      "invariant-checking harness");
  addCommonOptions(Options);
  Options.addInt("duration", 240, "simulated seconds per run");
  Options.addInt("soak-seeds", 12, "randomized schedules to soak");
  parseOrExit(Options, Argc, Argv);

  const bool Csv = Options.getFlag("csv");
  const bool Quick = Options.getFlag("quick");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  const uint64_t Seed = static_cast<uint64_t>(Options.getInt("seed"));
  double Duration = static_cast<double>(Options.getInt("duration"));
  size_t SoakSeeds = static_cast<size_t>(Options.getInt("soak-seeds"));
  if (Quick) {
    Duration = 80.0;
    SoakSeeds = std::min<size_t>(SoakSeeds, 10);
  }
  SoakSeeds = std::max<size_t>(SoakSeeds, 10);

  std::printf("seed=%llu (override with --seed)\n",
              static_cast<unsigned long long>(Seed));

  bool Ok = true;
  ChaosInvariantOptions InvOpts;
  InvOpts.PlatformThreads = Contexts;
  InvOpts.LeaseTtlSeconds = LeaseTtl;

  // ---- 1. Warm restart ---------------------------------------------------
  const ChaosSchedule Honest = emptySchedule();
  const ColocationSimResult Baseline =
      runSchedule(Honest, Contexts, Seed, Duration);
  const double KillAt = onEpoch(0.45 * Duration);
  const double RestartAt = onEpoch(0.55 * Duration);
  // 5% of the platform, at least one thread.
  const unsigned Tolerance = std::max(
      1u, static_cast<unsigned>(std::ceil(0.05 * Contexts)));

  struct RestartRow {
    const char *Mode;
    ArbiterOutage::RestartMode M;
    RecoveryMetrics R;
  };
  std::vector<RestartRow> Restarts = {
      {"snapshot", ArbiterOutage::RestartMode::Snapshot, {}},
      {"warm-trace", ArbiterOutage::RestartMode::WarmTrace, {}},
      {"cold", ArbiterOutage::RestartMode::Cold, {}},
  };
  for (RestartRow &Row : Restarts) {
    ChaosSchedule S = emptySchedule();
    S.Outage.KillSeconds = KillAt;
    S.Outage.RestartSeconds = RestartAt;
    S.Outage.Mode = Row.M;
    const ColocationSimResult R = runSchedule(S, Contexts, Seed, Duration);
    Row.R = allocationRecovery(Baseline, R, RestartAt, Tolerance);
    const ChaosInvariantReport Inv =
        checkChaosInvariants(R.ProtocolJournal, InvOpts);
    Ok &= checkShape(Inv.ok(), std::string("protocol invariants hold "
                                           "through a ") +
                                   Row.Mode + " restart");
  }

  Table RT({"restart mode", "rounds to recover", "time to recover (s)",
            "final distance"});
  for (const RestartRow &Row : Restarts)
    RT.addRow({Row.Mode,
               Row.R.recovered() ? std::to_string(Row.R.RoundsToRecover)
                                 : "never",
               Row.R.recovered()
                   ? Table::formatDouble(Row.R.TimeToRecoverSeconds, 1)
                   : "-",
               std::to_string(Row.R.FinalDistance)});
  emitTable("Ext. E1: allocation recovery after an arbiter kill at t=" +
                Table::formatDouble(KillAt, 0) + "s, restart at t=" +
                Table::formatDouble(RestartAt, 0) + "s (tolerance " +
                std::to_string(Tolerance) + " threads)",
            RT, Csv);

  for (const RestartRow &Row : Restarts) {
    if (Row.M == ArbiterOutage::RestartMode::Cold)
      continue; // reported for contrast only
    Ok &= checkShape(Row.R.recovered() && Row.R.RoundsToRecover <= 3,
                     std::string(Row.Mode) +
                         " restart re-converges within 3 rebalance rounds "
                         "(took " +
                         (Row.R.recovered()
                              ? std::to_string(Row.R.RoundsToRecover)
                              : std::string("never")) +
                         ")");
  }

  // ---- 2. Containment ----------------------------------------------------
  const std::vector<std::string> Compliant = {"frontend", "batch"};
  const double FaultFree = weightedAttainmentOf(Baseline, Compliant);

  ChaosSchedule Abuse = emptySchedule();
  // "miner" turns byzantine: inflated rates and a rewinding clock.
  Abuse.Tenant[2].ByzantineFromSeconds = 0.125 * Duration;
  Abuse.Tenant[2].ReportedRateFactor = 3.0;
  Abuse.Tenant[2].NonMonotoneClock = true;
  // "indexer" violates its envelope by two threads.
  Abuse.Tenant[3].EnvelopeViolationThreads = 2;
  const ColocationSimResult Abused =
      runSchedule(Abuse, Contexts, Seed, Duration);
  const double UnderAbuse = weightedAttainmentOf(Abused, Compliant);
  const double Retained = FaultFree > 0.0 ? UnderAbuse / FaultFree : 1.0;

  Table CT({"run", "compliant weighted attainment", "retained"});
  CT.addRow({"fault-free", Table::formatDouble(FaultFree, 3), "1.000"});
  CT.addRow({"byzantine + violator", Table::formatDouble(UnderAbuse, 3),
             Table::formatDouble(Retained, 3)});
  emitTable("Ext. E2: compliant-tenant attainment under containment", CT,
            Csv);

  Ok &= checkShape(Retained >= 0.9,
                   "compliant tenants retain >= 90% of fault-free weighted "
                   "attainment (" +
                       Table::formatDouble(Retained, 3) + ")");
  {
    const ChaosInvariantReport Inv =
        checkChaosInvariants(Abused.ProtocolJournal, InvOpts);
    Ok &= checkShape(Inv.ok(),
                     "protocol invariants hold under byzantine + violator");
  }

  // ---- 3. Chaos soak -----------------------------------------------------
  size_t SoakFailures = 0;
  for (size_t I = 0; I != SoakSeeds; ++I) {
    const uint64_t SoakSeed = Seed + 1000 + I;
    const ChaosSchedule S = randomSchedule(SoakSeed, Duration);
    const SeedVerdict V = checkSeed(S, Contexts, SoakSeed, Duration);
    if (V.InvariantsOk && V.Deterministic)
      continue;
    ++SoakFailures;
    std::printf("SOAK FAILURE seed=%llu: %s%s\n",
                static_cast<unsigned long long>(SoakSeed),
                V.InvariantsOk ? "" : "invariants violated ",
                V.Deterministic ? "" : "non-deterministic");
    for (const ChaosViolation &Viol : V.Report.Violations)
      std::printf("  [%s] t=%.2f record=%zu %s\n", Viol.Invariant.c_str(),
                  Viol.Time, Viol.RecordIndex, Viol.Message.c_str());
    const ChaosSchedule Min =
        minimizeSchedule(S, Contexts, SoakSeed, Duration);
    std::printf("  minimized schedule: %s\n", describeSchedule(Min).c_str());
  }
  Ok &= checkShape(SoakFailures == 0,
                   "all " + std::to_string(SoakSeeds) +
                       " soak seeds hold every invariant and are "
                       "deterministic per seed");

  return Ok ? 0 : 1;
}

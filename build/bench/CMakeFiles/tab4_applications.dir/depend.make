# Empty dependencies file for tab4_applications.
# This may be replaced when dependencies are built.

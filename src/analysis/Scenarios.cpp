//===- analysis/Scenarios.cpp - Canonical what-if scenarios ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/Scenarios.h"

using namespace dope;

WhatIfPipelineScenario dope::whatifPipelineScenario() {
  WhatIfPipelineScenario Scenario;
  Scenario.App.Name = "whatif-pipeline";
  Scenario.App.Stages = {
      {"load", /*Parallel=*/false, /*ServiceSeconds=*/0.02, /*Cv=*/0.1},
      {"rank", /*Parallel=*/true, /*ServiceSeconds=*/0.24, /*Cv=*/0.15},
      {"compress", /*Parallel=*/true, /*ServiceSeconds=*/0.08, /*Cv=*/0.15},
      {"write", /*Parallel=*/false, /*ServiceSeconds=*/0.02, /*Cv=*/0.1},
  };
  Scenario.App.OversubPenalty = 0.1;
  Scenario.App.ThreadOverheadPenalty = 0.02;

  Scenario.Opts.Contexts = 24;
  Scenario.Opts.Seed = 42;
  Scenario.Opts.NumItems = 400;
  Scenario.Opts.DecisionIntervalSeconds = 0.5;
  Scenario.Opts.QueueCapacity = 64;

  // The heavy middle stage is starved: rank needs ~12 threads to keep up
  // with the sequential ends, and gets 2. The measured achieved
  // parallelism therefore points straight at it, and the recommendation
  // frontier has ~6x of predicted headroom to claim.
  Scenario.BaselineExtents = {1, 2, 2, 1};
  return Scenario;
}

std::pair<PipelineSimResult, std::vector<TraceRecord>>
dope::runWhatifPipelineScenario(const WhatIfPipelineScenario &Scenario) {
  Tracer Trace;
  PipelineSimOptions Opts = Scenario.Opts;
  Opts.TraceSink = &Trace;
  Opts.TraceTaskInstances = true;
  PipelineSim Sim(Scenario.App, Opts);
  PipelineSimResult Result = Sim.run(/*Mech=*/nullptr,
                                     Scenario.BaselineExtents);
  std::vector<TraceRecord> Records = Trace.drain();
  canonicalizeTrace(Records);
  return {std::move(Result), std::move(Records)};
}

WhatIfColocationScenario dope::whatifColocationScenario() {
  WhatIfColocationScenario Scenario;

  // Tenant 1: a heavy pipeline batch job offered more load than a fair
  // share can serve.
  ColocationTenantSpec Heavy;
  Heavy.Tenant.Name = "heavy-batch";
  Heavy.Kind = ColocationTenantSpec::AppKind::Pipeline;
  Heavy.Pipeline.Name = "heavy-batch";
  Heavy.Pipeline.Stages = {
      {"decode", true, 0.10, 0.15},
      {"score", true, 0.30, 0.15},
  };
  // Needs ~10 threads to keep up — an equal 8-way split underserves it,
  // the recommended split does not.
  Heavy.ArrivalRate = 24.0;

  // Tenant 2: a light pipeline that saturates early — extra threads are
  // wasted on it.
  ColocationTenantSpec Light;
  Light.Tenant.Name = "light-batch";
  Light.Kind = ColocationTenantSpec::AppKind::Pipeline;
  Light.Pipeline.Name = "light-batch";
  Light.Pipeline.Stages = {
      {"filter", true, 0.05, 0.15},
  };
  Light.ArrivalRate = 6.0;

  // Tenant 3: a nested-parallel server with a sublinear speedup curve.
  ColocationTenantSpec Server;
  Server.Tenant.Name = "server";
  Server.Kind = ColocationTenantSpec::AppKind::NestServer;
  Server.Nest.Name = "server";
  Server.Nest.SeqServiceSeconds = 0.5;
  Server.Nest.Curve = SpeedupCurve(/*Alpha=*/0.08, /*FixedCost=*/0.02);
  Server.ArrivalRate = 8.0;

  Scenario.Tenants = {Heavy, Light, Server};

  Scenario.Opts.Contexts = 24;
  Scenario.Opts.Seed = 42;
  Scenario.Opts.DurationSeconds = 120.0;
  Scenario.Opts.WarmupSeconds = 0.0;
  Scenario.Opts.StepSeconds = 0.05;
  return Scenario;
}

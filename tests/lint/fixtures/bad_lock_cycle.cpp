// LK001 fixture: two functions acquire the same pair of mutexes in
// opposite orders — the classic two-lock deadlock inversion. dope_lint
// builds the acquisition-order graph and reports the cycle.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <mutex>

struct Ledger {
  std::mutex Accounts;
  std::mutex Journal;
  int Balance = 0;

  void credit() {
    std::lock_guard<std::mutex> LockA(Accounts);
    std::lock_guard<std::mutex> LockJ(Journal);
    ++Balance;
  }

  void audit() {
    std::lock_guard<std::mutex> LockJ(Journal);
    std::lock_guard<std::mutex> LockA(Accounts);
    --Balance;
  }
};

//===- tools/dope_lint/CallGraph.h - Whole-program symbol graph -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interprocedural layer under dope_lint (DESIGN.md §12): a
/// whole-program symbol + call-graph index built from the same
/// frontend-agnostic token stream the per-body checks consume. It owns
///
///   * scope collection — every function/lambda body in a file, with
///     its enclosing class (or out-of-line `X::` qualifier), DOPE_HOT /
///     DOPE_COLD / virtual markers, and DOPE_REQUIRES capabilities;
///   * hot-path impurity classification — the lock / allocation /
///     blocking-wait / container-growth detectors shared verbatim with
///     HP001/HP002 so direct and transitive findings never disagree;
///   * name-based call edges with conservative resolution: a callee
///     name is resolved to a definition only when it is unambiguous
///     (or disambiguated by the caller's class), mirroring HP003's
///     ambiguity-exemption precedent — never guessed;
///   * the atomics index the MO checks ride: every `std::atomic<T>`
///     member/global, class-qualified, with the set of memory orders
///     its operations use across the whole scanned set.
///
/// Everything here is lexical, deliberately: both frontends (builtin
/// lexer and libclang) produce identical token streams, so the graph —
/// and every finding derived from it — is byte-identical across them.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_TOOLS_LINT_CALLGRAPH_H
#define DOPE_TOOLS_LINT_CALLGRAPH_H

#include "Lexer.h"

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace dopelint {

struct FileTokens; // Checks.h

//===----------------------------------------------------------------------===//
// Token helpers (shared by Checks.cpp / CallGraph.cpp / LockGraph.cpp)
//===----------------------------------------------------------------------===//

inline bool isPunct(const Token &T, const char *P) {
  return T.Kind == TokKind::Punct && T.Text == P;
}
inline bool isIdent(const Token &T, const char *S) {
  return T.Kind == TokKind::Ident && T.Text == S;
}

/// Index of the balanced closing token for the opener at \p Open, or
/// T.size() when unbalanced.
size_t matchForward(const std::vector<Token> &T, size_t Open,
                    const char *OpenP, const char *CloseP);

/// Keywords that look like calls (`if (`, `sizeof (`, ...) and must not
/// become scope candidates or call edges.
bool isKeywordNoCall(const std::string &S);

/// Basename of \p Path without its extension — the qualifier for
/// file-scope symbols ("Trace" for src/support/Trace.cpp).
std::string fileStem(const std::string &Path);

/// Member names that are primitive operations on atomics / futexes /
/// condition variables (`X.load(...)`, `CV.notify_one()`), never calls
/// into project code. Resolving `Bottom.load()` to some class's
/// `load()` method by name uniqueness would fabricate call edges, so
/// member-prefixed occurrences of these names are excluded from the
/// graph (HP003 precedent: never guess).
bool isPrimitiveMemberOp(const std::string &S);

/// Innermost `class`/`struct`/`union` body enclosing a token, for
/// class-qualifying member symbols (functions, mutexes, atomics).
class ClassRegions {
public:
  explicit ClassRegions(const std::vector<Token> &T);
  /// The innermost region's class name, or empty at file scope.
  std::string enclosing(size_t Idx) const;

private:
  struct Region {
    std::string Name;
    size_t Begin, End;
  };
  std::vector<Region> Regions;
};

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

/// One function (or lambda) body found in a file.
struct Scope {
  std::string Name; ///< Bare name; "<lambda>" for lambdas.
  /// Enclosing class/struct, or the `X` of an out-of-line `X::name`
  /// definition; empty at file scope. Used to class-qualify symbols.
  std::string Qual;
  bool Hot = false;
  bool Cold = false;    ///< DOPE_COLD in the header.
  bool Virtual = false; ///< `virtual` or `override`/`final` in the header.
  unsigned Line = 0;
  /// Token indices of the header parameter list (between the header's
  /// parens) — AP001 finds `TaskRuntime &RT` parameters here.
  std::vector<size_t> HeaderToks;
  /// Token indices of the direct body, excluding nested scopes'
  /// bodies. The HP/AP checks are *direct-body* checks by design: a
  /// nested lambda is its own scope with its own annotations.
  std::vector<size_t> OwnToks;
  /// Capabilities named by DOPE_REQUIRES(...) in the specifier tail:
  /// locks the caller must hold on entry. LK001 treats them as held.
  std::vector<std::string> RequiresCaps;
};

/// Collects every function/lambda scope in \p T (two passes: header
/// discovery, then innermost-scope token attribution).
std::vector<Scope> collectScopes(const std::vector<Token> &T);

//===----------------------------------------------------------------------===//
// Hot-path impurities
//===----------------------------------------------------------------------===//

enum class ImpurityKind { Lock, Alloc, Blocking, Growth };

/// "a lock" / "an allocation" / "a blocking wait" / "container growth".
const char *impurityNoun(ImpurityKind K);

struct Impurity {
  ImpurityKind Kind = ImpurityKind::Lock;
  std::string Detail; ///< Offending token ("lock_guard", "wait_for", ...).
  unsigned Line = 0;
};

/// Classifies the token at \p Idx as a hot-path impurity, using exactly
/// the detectors HP001/HP002 report on (member-call prefix rules
/// included). Returns nullopt for pure tokens.
std::optional<Impurity> classifyImpurity(const std::vector<Token> &T,
                                         size_t Idx);

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

struct CallSite {
  std::string Callee;
  unsigned Line = 0;
};

/// One function definition in the scanned set.
struct FnNode {
  const FileTokens *File = nullptr;
  const Scope *Def = nullptr; ///< Owned by CallGraph's scope cache.
  std::vector<Impurity> Impurities; ///< Direct-body impurities.
  std::vector<CallSite> Calls;      ///< Direct-body call sites, in order.
};

/// Whole-program call graph over every scanned file. Scopes are
/// collected once per file and cached — Checks.cpp reuses the cache so
/// the per-body and interprocedural checks see the same scopes.
class CallGraph {
public:
  explicit CallGraph(const std::vector<FileTokens> &Files);

  const std::vector<FnNode> &nodes() const { return Nodes; }

  /// The cached scopes of \p File (same order collectScopes returns).
  const std::vector<Scope> &scopesOf(const FileTokens &File) const;

  /// Resolves \p Callee to a definition: an exact match on the caller's
  /// class wins, a unique global definition is accepted, anything
  /// ambiguous returns null (HP003 precedent: exempt, don't guess).
  /// \p Self excludes the caller's own node so `X::f -> f` recursion
  /// and wrapper methods (`TreeEngine::wakeAll -> Sched.wakeAll()`)
  /// resolve past themselves.
  const FnNode *resolve(const std::string &Callee, const std::string &FromQual,
                        const FnNode *Self = nullptr) const;

private:
  std::map<const FileTokens *, std::vector<Scope>> ScopeCache;
  std::vector<FnNode> Nodes;
  std::map<std::string, std::vector<size_t>> ByName;
};

//===----------------------------------------------------------------------===//
// Atomics index (MO001 / MO002)
//===----------------------------------------------------------------------===//

/// One member-function operation on an indexed atomic.
struct AtomicOp {
  std::string Key;    ///< Class-qualified atomic name ("ChaseLevDeque::Top").
  std::string Member; ///< Bare atomic name for diagnostics.
  std::string Op;     ///< "load", "store", "compare_exchange_strong", ...
  const FileTokens *File = nullptr;
  unsigned Line = 0;
  const Scope *Enclosing = nullptr; ///< Null for ctor-init-list sites.
  /// Success-path order ("relaxed", "acquire", "release", "acq_rel",
  /// "seq_cst"); a no-argument op defaults to seq_cst.
  std::string Order;
  /// CAS only: the explicit failure order, empty when single-order.
  std::string FailOrder;
};

/// Scans every file for `std::atomic<T> Name` declarations and the
/// member operations on them, resolving receivers the same way the
/// call graph resolves callees (unique name, else caller-class match).
/// Identifier order aliases are folded by suffix: an identifier ending
/// in "Relaxed"/"Acquire"/"Release"/"AcqRel"/"SeqCst" counts as that
/// order (detail::ChaseLevRelaxed is the motivating alias).
std::vector<AtomicOp> collectAtomicOps(const std::vector<FileTokens> &Files,
                                       const CallGraph &CG);

} // namespace dopelint

#endif // DOPE_TOOLS_LINT_CALLGRAPH_H

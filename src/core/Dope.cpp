//===- core/Dope.cpp - The Degree of Parallelism Executive -----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Dope.h"

#include "core/Clock.h"
#include "support/Logging.h"

#include <cassert>

using namespace dope;

Mechanism::~Mechanism() = default;

namespace {

/// Countdown latch used to join a region's replicas.
class Latch {
public:
  explicit Latch(unsigned Count) : Count(Count) {}

  void countDown() {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(Count > 0 && "latch underflow");
    if (--Count == 0)
      Cond.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cond.wait(Lock, [this] { return Count == 0; });
  }

private:
  std::mutex Mutex;
  std::condition_variable Cond;
  unsigned Count;
};

} // namespace

//===----------------------------------------------------------------------===//
// TaskRuntime
//===----------------------------------------------------------------------===//

TaskStatus TaskRuntime::begin() {
  BeginTime = monotonicSeconds();
  if (Executive.StopFlag.load(std::memory_order_acquire) ||
      Executive.suspendRequested())
    return TaskStatus::Suspended;
  return TaskStatus::Executing;
}

TaskStatus TaskRuntime::end() {
  if (BeginTime >= 0.0) {
    Executive.metricsFor(TheTask).recordExecTime(monotonicSeconds() -
                                                 BeginTime);
    BeginTime = -1.0;
  }
  if (Executive.StopFlag.load(std::memory_order_acquire) ||
      Executive.suspendRequested())
    return TaskStatus::Suspended;
  return TaskStatus::Executing;
}

TaskStatus TaskRuntime::wait(void *InnerContext) {
  return Executive.runInnerRegion(TheTask, Config, InnerContext);
}

double TaskRuntime::nowSeconds() const { return monotonicSeconds(); }

//===----------------------------------------------------------------------===//
// Construction / lifecycle
//===----------------------------------------------------------------------===//

static void collectTasks(const ParDescriptor &Region,
                         std::vector<const Task *> &Out) {
  for (Task *T : Region.tasks()) {
    Out.push_back(T);
    for (ParDescriptor *Alt : T->descriptor()->alternatives())
      collectTasks(*Alt, Out);
  }
}

Dope::Dope(ParDescriptor *Root, DopeOptions Opts)
    : Root(Root), Options(std::move(Opts)) {
  assert(Root && "root region required");
  assert(Options.MaxThreads >= 1 && "need at least one thread");

  if (Options.InitialConfig.Tasks.empty())
    ActiveConfig = defaultConfig(*Root);
  else
    ActiveConfig = Options.InitialConfig;

  std::string Error;
  if (!validateConfig(*Root, ActiveConfig, &Error)) {
    DOPE_LOG_ERROR("invalid initial configuration: %s", Error.c_str());
    assert(false && "invalid initial configuration");
    ActiveConfig = defaultConfig(*Root);
  }

  std::vector<const Task *> AllTasks;
  collectTasks(*Root, AllTasks);
  for (const Task *T : AllTasks)
    Metrics.emplace(T->id(), std::make_unique<TaskMetrics>());
}

std::unique_ptr<Dope> Dope::create(ParDescriptor *Root, DopeOptions Opts) {
  // Cannot use std::make_unique with a private constructor.
  std::unique_ptr<Dope> D(new Dope(Root, std::move(Opts)));
  D->MainThread = std::thread([Raw = D.get()] { Raw->runMain(); });
  D->ControllerThread = std::thread([Raw = D.get()] { Raw->runController(); });
  return D;
}

void Dope::destroy(std::unique_ptr<Dope> D) {
  assert(D && "destroying a null executive");
  D->wait();
  D.reset();
}

Dope::~Dope() {
  // An executive destroyed before natural completion stops the
  // application in an orderly fashion.
  if (!Finished.load(std::memory_order_acquire))
    requestStop();
  if (MainThread.joinable())
    MainThread.join();
  if (ControllerThread.joinable())
    ControllerThread.join();
}

void Dope::wait() {
  std::unique_lock<std::mutex> Lock(DoneMutex);
  DoneCond.wait(Lock,
                [this] { return Finished.load(std::memory_order_acquire); });
}

bool Dope::finished() const {
  return Finished.load(std::memory_order_acquire);
}

void Dope::requestStop() {
  StopFlag.store(true, std::memory_order_release);
  SuspendFlag.store(true, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Mechanism-developer API
//===----------------------------------------------------------------------===//

double Dope::getExecTime(const Task *T) const {
  const TaskMetrics *M = metricsForIfPresent(*T);
  return M ? M->execTime() : 0.0;
}

double Dope::getLoad(const Task *T) const {
  const TaskMetrics *M = metricsForIfPresent(*T);
  return M ? M->load() : 0.0;
}

void Dope::registerCB(const std::string &Feature, FeatureFn Callback,
                      double MinSampleIntervalSeconds) {
  Features.registerFeature(Feature, std::move(Callback),
                           MinSampleIntervalSeconds);
}

std::optional<double> Dope::getValue(const std::string &Feature) const {
  return Features.getValue(Feature, monotonicSeconds());
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

RegionConfig Dope::currentConfig() const {
  std::lock_guard<std::mutex> Lock(ConfigMutex);
  return ActiveConfig;
}

uint64_t Dope::reconfigurationCount() const {
  return ReconfigCount.load(std::memory_order_acquire);
}

TaskMetrics &Dope::metricsFor(const Task &T) {
  auto It = Metrics.find(T.id());
  assert(It != Metrics.end() && "task not registered with this executive");
  return *It->second;
}

const TaskMetrics *Dope::metricsForIfPresent(const Task &T) const {
  auto It = Metrics.find(T.id());
  return It == Metrics.end() ? nullptr : It->second.get();
}

RegionSnapshot
Dope::snapshotRegion(const ParDescriptor &Region,
                     const std::vector<TaskConfig> *Active) const {
  RegionSnapshot Snap;
  for (size_t I = 0; I != Region.size(); ++I) {
    const Task *T = Region.tasks()[I];
    const TaskConfig *Config =
        Active && I < Active->size() ? &(*Active)[I] : nullptr;

    TaskSnapshot TS;
    TS.TaskId = T->id();
    TS.Name = T->name();
    TS.Kind = T->kind();
    if (const TaskMetrics *M = metricsForIfPresent(*T)) {
      TS.ExecTime = M->execTime();
      TS.Load = M->load();
      TS.LastLoad = M->lastLoad();
      TS.Invocations = M->invocations();
    }
    TS.CurrentExtent = Config ? Config->Extent : 0;
    TS.ActiveAlt = Config ? Config->AltIndex : -1;
    if (TS.ExecTime > 0.0)
      TS.Throughput = static_cast<double>(TS.CurrentExtent) / TS.ExecTime;

    const auto &Alts = T->descriptor()->alternatives();
    for (size_t A = 0; A != Alts.size(); ++A) {
      const std::vector<TaskConfig> *InnerActive = nullptr;
      if (Config && Config->AltIndex == static_cast<int>(A))
        InnerActive = &Config->Inner;
      TS.InnerAlternatives.push_back(snapshotRegion(*Alts[A], InnerActive));
    }
    Snap.Tasks.push_back(std::move(TS));
  }
  return Snap;
}

RegionSnapshot Dope::snapshot() const {
  RegionConfig Config = currentConfig();
  return snapshotRegion(*Root, &Config.Tasks);
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void Dope::runMain() {
  for (;;) {
    RegionConfig Config;
    {
      std::lock_guard<std::mutex> Lock(ConfigMutex);
      if (HasPendingConfig) {
        ActiveConfig = PendingConfig;
        HasPendingConfig = false;
        ReconfigCount.fetch_add(1, std::memory_order_acq_rel);
      }
      Config = ActiveConfig;
    }
    if (StopFlag.load(std::memory_order_acquire))
      break;

    // A fresh epoch starts with the suspend request cleared.
    SuspendFlag.store(false, std::memory_order_release);

    const TaskStatus Status = runRegion(*Root, Config);
    if (Status == TaskStatus::Finished)
      break;
    assert(Status == TaskStatus::Suspended && "unexpected region status");
    if (StopFlag.load(std::memory_order_acquire))
      break;
    // Loop: apply any pending configuration and re-enter the region.
  }

  {
    std::lock_guard<std::mutex> Lock(DoneMutex);
    Finished.store(true, std::memory_order_release);
  }
  DoneCond.notify_all();
}

TaskStatus Dope::runRegion(const ParDescriptor &Region,
                           const RegionConfig &Config, void *UserContext) {
  assert(Config.Tasks.size() == Region.size() && "config arity mismatch");
  const std::vector<Task *> &Tasks = Region.tasks();

  // InitCBs restore consistency before the parallel region is (re)entered.
  for (Task *T : Tasks)
    T->runInit();

  unsigned TotalReplicas = 0;
  for (const TaskConfig &TC : Config.Tasks)
    TotalReplicas += TC.Extent;

  Latch Done(TotalReplicas);
  std::vector<std::atomic<unsigned>> Remaining(Tasks.size());
  for (size_t I = 0; I != Tasks.size(); ++I)
    Remaining[I].store(Config.Tasks[I].Extent, std::memory_order_relaxed);

  const unsigned MasterExtent = Config.Tasks[0].Extent;
  std::atomic<unsigned> MasterFinished{0};

  auto RunReplica = [&](size_t TaskIndex, unsigned Replica) {
    const Task &T = *Tasks[TaskIndex];
    const TaskStatus Status =
        taskLoop(T, Config.Tasks[TaskIndex], Replica, UserContext);
    if (TaskIndex == 0 && Status == TaskStatus::Finished)
      MasterFinished.fetch_add(1, std::memory_order_acq_rel);
    // The last replica of a task to stop runs the task's FiniCB, which
    // lets downstream tasks drain to a consistent state (sentinels,
    // queue closure).
    if (Remaining[TaskIndex].fetch_sub(1, std::memory_order_acq_rel) == 1)
      T.runFini();
    Done.countDown();
  };

  // Spawn all replicas except the master's replica 0, which runs on the
  // calling thread (the paper's master-task role).
  for (size_t I = 0; I != Tasks.size(); ++I) {
    const unsigned Extent = Config.Tasks[I].Extent;
    for (unsigned R = 0; R != Extent; ++R) {
      if (I == 0 && R == 0)
        continue;
      Pool.submit([&RunReplica, I, R] { RunReplica(I, R); });
    }
  }
  RunReplica(0, 0);
  Done.wait();

  return MasterFinished.load(std::memory_order_acquire) == MasterExtent
             ? TaskStatus::Finished
             : TaskStatus::Suspended;
}

TaskStatus Dope::taskLoop(const Task &T, const TaskConfig &Config,
                          unsigned Replica, void *UserContext) {
  TaskRuntime RT(*this, T, Config, Replica, UserContext);
  for (;;) {
    const TaskStatus Status = T.invoke(RT);
    if (Status != TaskStatus::Executing)
      return Status;
  }
}

TaskStatus Dope::runInnerRegion(const Task &Parent, const TaskConfig &Config,
                                void *UserContext) {
  if (Config.AltIndex < 0)
    return TaskStatus::Finished;
  const ParDescriptor *Inner =
      Parent.descriptor()->alternative(static_cast<size_t>(Config.AltIndex));
  RegionConfig InnerConfig;
  InnerConfig.Tasks = Config.Inner;
  return runRegion(*Inner, InnerConfig, UserContext);
}

//===----------------------------------------------------------------------===//
// Controller
//===----------------------------------------------------------------------===//

void Dope::runController() {
  while (!Finished.load(std::memory_order_acquire) &&
         !StopFlag.load(std::memory_order_acquire)) {
    sleepSeconds(Options.MonitorIntervalSeconds);
    if (Finished.load(std::memory_order_acquire))
      break;

    // Sample application load features.
    std::vector<const Task *> AllTasks;
    collectTasks(*Root, AllTasks);
    for (const Task *T : AllTasks)
      if (T->hasLoadCallback())
        metricsFor(*T).recordLoad(T->sampleLoad());

    if (!Options.Mech)
      continue;

    const double Now = monotonicSeconds();
    if (Now - LastReconfigTime < Options.MinReconfigIntervalSeconds)
      continue;

    MechanismContext Ctx;
    Ctx.MaxThreads = Options.MaxThreads;
    Ctx.PowerBudgetWatts = Options.PowerBudgetWatts;
    Ctx.Features = &Features;
    Ctx.NowSeconds = Now;

    RegionConfig Current = currentConfig();
    RegionSnapshot Snap = snapshot();
    std::optional<RegionConfig> Next =
        Options.Mech->reconfigure(*Root, Snap, Current, Ctx);
    if (!Next || *Next == Current)
      continue;

    std::string Error;
    if (!validateConfig(*Root, *Next, &Error)) {
      DOPE_LOG_WARN("mechanism '%s' produced invalid config: %s",
                    Options.Mech->name().c_str(), Error.c_str());
      continue;
    }
    if (totalThreads(*Root, *Next) > Options.MaxThreads) {
      DOPE_LOG_WARN("mechanism '%s' exceeded thread budget (%u > %u)",
                    Options.Mech->name().c_str(), totalThreads(*Root, *Next),
                    Options.MaxThreads);
      continue;
    }

    {
      std::lock_guard<std::mutex> Lock(ConfigMutex);
      PendingConfig = *Next;
      HasPendingConfig = true;
    }
    SuspendFlag.store(true, std::memory_order_release);
    LastReconfigTime = Now;
    DOPE_LOG_DEBUG("reconfiguring to %s",
                   toString(*Root, *Next).c_str());
  }
}

//===- mechanisms/Fdp.cpp - Feedback Directed Pipelining -------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Fdp.h"

#include "mechanisms/PipelineView.h"

#include <algorithm>
#include <cassert>

using namespace dope;

FdpMechanism::FdpMechanism(FdpParams Params) : Params(Params) {
  assert(Params.AcceptEpsilon >= 0.0 && "negative accept epsilon");
  assert(Params.ReexploreDrift > 0.0 && "re-explore drift must be positive");
}

void FdpMechanism::reset() {
  State = SearchState::WarmUp;
  BaseExtents.clear();
  BaseThroughput = 0.0;
  MovePending = false;
  TriedMoves.clear();
  PlateauThroughput = 0.0;
  PlateauBudget = 0;
  // The hint itself survives reset() — it is configuration, not
  // adaptation state — and is re-armed so every restart begins at the
  // predicted optimum.
  HintPending = Hint.has_value();
}

void FdpMechanism::seedWarmStart(const WarmStartHint &TheHint) {
  if (!TheHint.appliesTo(name()) || TheHint.Extents.empty())
    return;
  Hint = TheHint;
  HintPending = true;
}

std::optional<FdpMechanism::Move>
FdpMechanism::pickMove(const std::vector<unsigned> &Extents,
                       const std::vector<double> &ExecTimes,
                       const std::vector<bool> &Parallel,
                       unsigned Budget) const {
  const size_t N = Extents.size();

  // Rank candidate receivers by ascending capacity (slowest first) and
  // candidate donors by descending capacity (most slack first).
  std::vector<size_t> Order(N);
  for (size_t I = 0; I != N; ++I)
    Order[I] = I;
  auto Capacity = [&](size_t I) {
    return ExecTimes[I] > 0.0
               ? static_cast<double>(Extents[I]) / ExecTimes[I]
               : 0.0;
  };
  std::vector<size_t> Receivers = Order;
  std::stable_sort(Receivers.begin(), Receivers.end(),
                   [&](size_t A, size_t B) {
                     return Capacity(A) < Capacity(B);
                   });
  std::vector<size_t> Donors = Order;
  std::stable_sort(Donors.begin(), Donors.end(), [&](size_t A, size_t B) {
    return Capacity(A) > Capacity(B);
  });

  unsigned Used = 0;
  for (unsigned E : Extents)
    Used += E;

  for (size_t To : Receivers) {
    if (!Parallel[To])
      continue;
    // Prefer free budget.
    if (Used < Budget) {
      const Move Candidate{PipelineView::npos, To};
      if (!TriedMoves.count(Candidate))
        return Candidate;
    }
    for (size_t From : Donors) {
      if (From == To || !Parallel[From] || Extents[From] <= 1)
        continue;
      const Move Candidate{From, To};
      if (!TriedMoves.count(Candidate))
        return Candidate;
    }
  }
  return std::nullopt;
}

std::optional<RegionConfig>
FdpMechanism::reconfigure(const ParDescriptor &Region,
                          const RegionSnapshot &Root,
                          const RegionConfig &Current,
                          const MechanismContext &Ctx) {
  std::optional<PipelineView> View =
      PipelineView::resolve(Region, Root, Current);
  if (!View)
    return std::nullopt;

  // A pending warm-start hint is proposed before any measurement: the
  // run starts at the predicted optimum instead of spending traffic on
  // the climb. Entering Converged with an unset plateau makes the first
  // measured throughput the plateau below, so a wrong prediction is
  // corrected by the ordinary drift re-exploration.
  if (HintPending) {
    HintPending = false;
    if (Hint->Extents.size() == View->stages().size() &&
        Hint->totalExtent() <= Ctx.effectiveThreads()) {
      State = SearchState::Converged;
      BaseExtents = Hint->Extents;
      BaseThroughput = 0.0;
      MovePending = false;
      TriedMoves.clear();
      PlateauThroughput = 0.0;
      PlateauBudget = Ctx.effectiveThreads();
      return View->makeConfig(BaseExtents);
    }
    // Infeasible for this pipeline: discard and climb cold.
  }

  if (!View->fullyMeasured())
    return std::nullopt;

  const std::vector<StageView> &Stages = View->stages();
  const size_t N = Stages.size();

  std::vector<unsigned> Extents(N);
  std::vector<double> ExecTimes(N);
  std::vector<bool> Parallel(N);
  for (size_t I = 0; I != N; ++I) {
    Extents[I] = Stages[I].Extent;
    ExecTimes[I] = Stages[I].ExecTime;
    Parallel[I] = Stages[I].IsParallel;
  }
  const double Throughput = View->systemThroughput();

  if (State == SearchState::WarmUp) {
    BaseExtents = Extents;
    BaseThroughput = Throughput;
    State = SearchState::Climbing;
  }

  if (State == SearchState::Converged) {
    // After a hinted jump the plateau is unset; adopt the first measured
    // throughput as both plateau and base so drift is judged against
    // what the hinted configuration actually delivers.
    if (PlateauThroughput <= 0.0 && Throughput > 0.0) {
      PlateauThroughput = Throughput;
      BaseExtents = Extents;
      BaseThroughput = Throughput;
    }
    // Re-open the search when the workload shifted the plateau, or when
    // the platform's thread budget moved under it (context loss reported
    // through the LiveContexts feature): the drift test below compares
    // configured capacities, which are blind to dead contexts.
    const double Drift = PlateauThroughput > 0.0
                             ? std::abs(Throughput - PlateauThroughput) /
                                   PlateauThroughput
                             : 0.0;
    if (Drift <= Params.ReexploreDrift &&
        Ctx.effectiveThreads() == PlateauBudget)
      return std::nullopt;
    TriedMoves.clear();
    BaseExtents = Extents;
    BaseThroughput = Throughput;
    State = SearchState::Climbing;
  }

  // Judge the pending move by the throughput measured since it was
  // applied.
  if (MovePending) {
    MovePending = false;
    if (Throughput > BaseThroughput * (1.0 + Params.AcceptEpsilon)) {
      // Accept: this becomes the new base and the neighbourhood reopens.
      BaseExtents = Extents;
      BaseThroughput = Throughput;
      TriedMoves.clear();
    } else {
      // Revert to the base assignment and remember the failed move.
      TriedMoves.insert(PendingMove);
      Extents = BaseExtents;
    }
  }

  std::optional<Move> Next =
      pickMove(Extents, ExecTimes, Parallel, Ctx.effectiveThreads());
  if (!Next) {
    State = SearchState::Converged;
    PlateauThroughput = BaseThroughput;
    PlateauBudget = Ctx.effectiveThreads();
    // Make sure the base assignment is what actually runs.
    return View->makeConfig(BaseExtents);
  }

  if (Next->From != PipelineView::npos) {
    assert(Extents[Next->From] > 1 && "donor stage has no spare thread");
    --Extents[Next->From];
  }
  ++Extents[Next->To];
  PendingMove = *Next;
  MovePending = true;
  return View->makeConfig(Extents);
}

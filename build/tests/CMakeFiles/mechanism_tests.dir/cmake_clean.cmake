file(REMOVE_RECURSE
  "CMakeFiles/mechanism_tests.dir/DpmTest.cpp.o"
  "CMakeFiles/mechanism_tests.dir/DpmTest.cpp.o.d"
  "CMakeFiles/mechanism_tests.dir/PipelineViewTest.cpp.o"
  "CMakeFiles/mechanism_tests.dir/PipelineViewTest.cpp.o.d"
  "CMakeFiles/mechanism_tests.dir/ProportionalGoalTest.cpp.o"
  "CMakeFiles/mechanism_tests.dir/ProportionalGoalTest.cpp.o.d"
  "CMakeFiles/mechanism_tests.dir/ServerNestTest.cpp.o"
  "CMakeFiles/mechanism_tests.dir/ServerNestTest.cpp.o.d"
  "CMakeFiles/mechanism_tests.dir/ThroughputMechanismsTest.cpp.o"
  "CMakeFiles/mechanism_tests.dir/ThroughputMechanismsTest.cpp.o.d"
  "CMakeFiles/mechanism_tests.dir/TpcTest.cpp.o"
  "CMakeFiles/mechanism_tests.dir/TpcTest.cpp.o.d"
  "CMakeFiles/mechanism_tests.dir/WqMechanismsTest.cpp.o"
  "CMakeFiles/mechanism_tests.dir/WqMechanismsTest.cpp.o.d"
  "mechanism_tests"
  "mechanism_tests.pdb"
  "mechanism_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mechanism_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

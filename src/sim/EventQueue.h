//===- sim/EventQueue.h - Discrete-event simulation core -------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete-event engine under the simulated multicore platform.
///
/// Why a simulator at all: the paper's evaluation ran on a 24-core Xeon;
/// this reproduction targets machines where that parallelism is not
/// physically available. Every evaluated phenomenon — the latency versus
/// throughput tradeoff, adaptation dynamics, oversubscription costs,
/// power capping — is a scheduling/queueing property, so a deterministic
/// virtual-time simulation exercises the *same mechanism code* (via
/// core/Mechanism.h) while making the experiments reproducible anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_EVENTQUEUE_H
#define DOPE_SIM_EVENTQUEUE_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace dope {

/// Handle used to cancel a scheduled event.
using EventId = uint64_t;

/// A virtual-time event queue. Events fire in time order; ties break by
/// schedule order (FIFO), keeping runs deterministic.
class EventQueue {
public:
  EventQueue() = default;
  EventQueue(const EventQueue &) = delete;
  EventQueue &operator=(const EventQueue &) = delete;

  /// Current virtual time in seconds.
  double now() const { return Now; }

  /// Schedules \p Fn at absolute time \p Time (>= now).
  EventId scheduleAt(double Time, std::function<void()> Fn);

  /// Schedules \p Fn after \p Delay seconds.
  EventId scheduleAfter(double Delay, std::function<void()> Fn) {
    assert(Delay >= 0.0 && "negative delay");
    return scheduleAt(Now + Delay, std::move(Fn));
  }

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId Id);

  /// Runs events until the queue drains or virtual time would exceed
  /// \p EndTime. Returns the number of events dispatched. On return,
  /// now() == min(EndTime, time of last event) when events ran.
  uint64_t runUntil(double EndTime);

  /// Runs a single event if one is pending before \p EndTime; returns
  /// false otherwise.
  bool step(double EndTime);

  bool empty() const { return Live == 0; }
  size_t pendingEvents() const { return Live; }

private:
  struct Entry {
    double Time;
    EventId Id;
    std::function<void()> Fn;
  };
  struct Later {
    bool operator()(const Entry &A, const Entry &B) const {
      if (A.Time != B.Time)
        return A.Time > B.Time;
      return A.Id > B.Id;
    }
  };

  double Now = 0.0;
  EventId NextId = 1;
  size_t Live = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> Heap;
  std::unordered_set<EventId> Cancelled;
};

} // namespace dope

#endif // DOPE_SIM_EVENTQUEUE_H

file(REMOVE_RECURSE
  "CMakeFiles/tab4_applications.dir/tab4_applications.cpp.o"
  "CMakeFiles/tab4_applications.dir/tab4_applications.cpp.o.d"
  "tab4_applications"
  "tab4_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

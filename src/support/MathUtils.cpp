//===- support/MathUtils.cpp - Small numeric helpers ----------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace dope;

double dope::clampDouble(double X, double Lo, double Hi) {
  assert(Lo <= Hi && "empty clamp range");
  return std::min(std::max(X, Lo), Hi);
}

unsigned dope::clampUnsigned(unsigned X, unsigned Lo, unsigned Hi) {
  assert(Lo <= Hi && "empty clamp range");
  return std::min(std::max(X, Lo), Hi);
}

bool dope::approxEqual(double A, double B, double Tol) {
  const double Scale = std::max({std::fabs(A), std::fabs(B), 1.0});
  return std::fabs(A - B) <= Tol * Scale;
}

std::vector<unsigned>
dope::proportionalSplit(unsigned Total, const std::vector<double> &Weights,
                        unsigned MinEach) {
  const size_t N = Weights.size();
  std::vector<unsigned> Result(N, MinEach);
  if (N == 0)
    return Result;

  // If the floor already exhausts (or exceeds) the budget, stop there.
  if (Total <= MinEach * N)
    return Result;
  unsigned Remaining = Total - MinEach * static_cast<unsigned>(N);

  std::vector<double> Positive(N);
  double WeightSum = 0.0;
  for (size_t I = 0; I != N; ++I) {
    Positive[I] = Weights[I] > 0.0 ? Weights[I] : 0.0;
    WeightSum += Positive[I];
  }
  if (WeightSum <= 0.0)
    std::fill(Positive.begin(), Positive.end(), 1.0);
  WeightSum = std::accumulate(Positive.begin(), Positive.end(), 0.0);

  // Largest-remainder method: hand out the integer parts, then distribute
  // the leftovers to the largest fractional shares (ties to lower index
  // for determinism).
  std::vector<double> Exact(N);
  unsigned Assigned = 0;
  for (size_t I = 0; I != N; ++I) {
    Exact[I] = static_cast<double>(Remaining) * Positive[I] / WeightSum;
    const unsigned Floor = static_cast<unsigned>(Exact[I]);
    Result[I] += Floor;
    Assigned += Floor;
  }
  unsigned Leftover = Remaining - Assigned;

  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    const double FracA = Exact[A] - std::floor(Exact[A]);
    const double FracB = Exact[B] - std::floor(Exact[B]);
    return FracA > FracB;
  });
  for (size_t I = 0; I != N && Leftover > 0; ++I, --Leftover)
    ++Result[Order[I]];
  return Result;
}

std::vector<unsigned>
dope::waterfillSplit(unsigned Total, const std::vector<double> &UnitCosts,
                     unsigned PinnedUnits) {
  const size_t N = UnitCosts.size();
  std::vector<unsigned> Result(N, 0);
  unsigned Remaining = Total;

  // Pin zero-cost buckets and give every optimized bucket its first unit.
  for (size_t I = 0; I != N; ++I) {
    const unsigned Floor = UnitCosts[I] > 0.0 ? 1 : PinnedUnits;
    Result[I] = Floor;
    Remaining -= std::min(Remaining, Floor);
  }

  // Greedy: each next unit goes to the bucket with the lowest capacity.
  // Ties break toward the lowest index for determinism.
  while (Remaining > 0) {
    size_t Lowest = N;
    double LowestCapacity = 0.0;
    for (size_t I = 0; I != N; ++I) {
      if (UnitCosts[I] <= 0.0)
        continue;
      const double Capacity =
          static_cast<double>(Result[I]) / UnitCosts[I];
      if (Lowest == N || Capacity < LowestCapacity) {
        Lowest = I;
        LowestCapacity = Capacity;
      }
    }
    if (Lowest == N)
      break; // nothing to optimize
    ++Result[Lowest];
    --Remaining;
  }
  return Result;
}

// HP002 fixture: a DOPE_HOT function body allocating.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <memory>

struct Recorder {
  DOPE_HOT void recordBoxed(double V) {
    auto Box = std::make_unique<double>(V);
    sink(std::move(Box));
  }

  DOPE_HOT double *recordRaw(double V) { return new double(V); }

  void sink(std::unique_ptr<double> Box);
};

//===- core/Placement.cpp - Stage-to-core placement -------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Placement.h"

#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>

using namespace dope;

Placement dope::placePartitioned(const Topology &Topo,
                                 const std::vector<unsigned> &Extents) {
  const unsigned Sockets = Topo.sockets();
  const unsigned PerSocket = Topo.coresPerSocket();
  Placement P;
  // Per-socket core cursors; wrap within the socket when oversubscribed.
  std::vector<unsigned> Cursor(Sockets, 0);
  for (unsigned Extent : Extents) {
    // Split this stage's replicas proportionally across sockets (even
    // weights; largest-remainder keeps the split exact).
    const std::vector<unsigned> Share =
        proportionalSplit(Extent, std::vector<double>(Sockets, 1.0));
    std::vector<unsigned> Stage;
    for (unsigned Socket = 0; Socket != Sockets; ++Socket)
      for (unsigned R = 0; R != Share[Socket]; ++R) {
        const unsigned Slot = Cursor[Socket]++ % PerSocket;
        Stage.push_back(Socket * PerSocket + Slot);
      }
    P.Cores.push_back(std::move(Stage));
  }
  return P;
}

Placement dope::placeStriped(const Topology &Topo,
                             const std::vector<unsigned> &Extents) {
  Placement P;
  const unsigned Sockets = Topo.sockets();
  const unsigned PerSocket = Topo.coresPerSocket();
  std::vector<unsigned> NextInSocket(Sockets, 0);
  unsigned StageIndex = 0;
  for (unsigned Extent : Extents) {
    std::vector<unsigned> Stage;
    for (unsigned R = 0; R != Extent; ++R) {
      const unsigned Socket = (R + StageIndex) % Sockets;
      const unsigned Slot = NextInSocket[Socket]++ % PerSocket;
      Stage.push_back(Socket * PerSocket + Slot);
    }
    P.Cores.push_back(std::move(Stage));
    ++StageIndex;
  }
  return P;
}

Placement dope::placeContiguous(const Topology &Topo,
                                const std::vector<unsigned> &Extents) {
  Placement P;
  unsigned Next = 0;
  const unsigned Total = Topo.totalCores();
  for (unsigned Extent : Extents) {
    std::vector<unsigned> Stage;
    for (unsigned R = 0; R != Extent; ++R) {
      Stage.push_back(Next % Total);
      ++Next;
    }
    P.Cores.push_back(std::move(Stage));
  }
  return P;
}

/// Per-socket replica fractions of one stage.
static std::vector<double> socketFractions(const Topology &Topo,
                                           const std::vector<unsigned> &Cores) {
  std::vector<double> Frac(Topo.sockets(), 0.0);
  if (Cores.empty())
    return Frac;
  for (unsigned Core : Cores)
    Frac[Topo.socketOf(Core)] += 1.0;
  for (double &F : Frac)
    F /= static_cast<double>(Cores.size());
  return Frac;
}

double dope::stageHandoffCost(const Topology &Topo, const Placement &P,
                              size_t From, RoutingPolicy Routing) {
  assert(From + 1 < P.Cores.size() && "no downstream stage");
  const std::vector<unsigned> &Producers = P.Cores[From];
  const std::vector<unsigned> &Consumers = P.Cores[From + 1];
  if (Producers.empty() || Consumers.empty())
    return 0.0;

  if (Routing == RoutingPolicy::Uniform) {
    double Sum = 0.0;
    for (unsigned A : Producers)
      for (unsigned B : Consumers)
        Sum += Topo.commCost(A, B);
    return Sum / static_cast<double>(Producers.size() * Consumers.size());
  }

  // Locality-preferring routing: items originate in proportion to the
  // producers per socket; each socket's consumers can locally absorb up
  // to their capacity share. The locally matched fraction pays the mean
  // intra-socket pair cost (same-core pairs are free); the spill-over
  // crosses sockets.
  const std::vector<double> Produce = socketFractions(Topo, Producers);
  const std::vector<double> Consume = socketFractions(Topo, Consumers);
  double Local = 0.0;
  for (unsigned Socket = 0; Socket != Topo.sockets(); ++Socket)
    Local += std::min(Produce[Socket], Consume[Socket]);

  double IntraSum = 0.0;
  size_t IntraPairs = 0;
  for (unsigned A : Producers)
    for (unsigned B : Consumers)
      if (Topo.sameSocket(A, B)) {
        IntraSum += Topo.commCost(A, B);
        ++IntraPairs;
      }
  const double IntraCost =
      IntraPairs > 0 ? IntraSum / static_cast<double>(IntraPairs) : 1.0;
  return Local * IntraCost + (1.0 - Local) * Topo.crossSocketFactor();
}

double dope::meanCommCost(const Topology &Topo, const Placement &P,
                          RoutingPolicy Routing) {
  double Total = 0.0;
  for (size_t S = 0; S + 1 < P.Cores.size(); ++S)
    Total += stageHandoffCost(Topo, P, S, Routing);
  return Total;
}

file(REMOVE_RECURSE
  "CMakeFiles/transcode_server.dir/transcode_server.cpp.o"
  "CMakeFiles/transcode_server.dir/transcode_server.cpp.o.d"
  "transcode_server"
  "transcode_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transcode_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

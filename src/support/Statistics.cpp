//===- support/Statistics.cpp - Streaming statistics ----------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dope;

void StreamingStats::addSample(double X) {
  ++N;
  Total += X;
  const double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
  Min = std::min(Min, X);
  Max = std::max(Max, X);
}

double StreamingStats::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  const double Delta = Other.Mean - Mean;
  const size_t Combined = N + Other.N;
  const double NA = static_cast<double>(N);
  const double NB = static_cast<double>(Other.N);
  Mean += Delta * NB / static_cast<double>(Combined);
  M2 += Other.M2 + Delta * Delta * NA * NB / static_cast<double>(Combined);
  N = Combined;
  Total += Other.Total;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
}

void StreamingStats::reset() { *this = StreamingStats(); }

void PercentileTracker::addSample(double X) {
  Samples.push_back(X);
  Sorted = false;
}

double PercentileTracker::percentile(double Q) const {
  assert(Q >= 0.0 && Q <= 1.0 && "quantile out of range");
  if (Samples.empty())
    return 0.0;
  if (!Sorted) {
    std::sort(Samples.begin(), Samples.end());
    Sorted = true;
  }
  const double Rank = Q * static_cast<double>(Samples.size() - 1);
  const size_t Lo = static_cast<size_t>(Rank);
  const size_t Hi = std::min(Lo + 1, Samples.size() - 1);
  const double Frac = Rank - static_cast<double>(Lo);
  return Samples[Lo] + Frac * (Samples[Hi] - Samples[Lo]);
}

void PercentileTracker::reset() {
  Samples.clear();
  Sorted = true;
}

Histogram::Histogram(double Lo, double Hi, size_t NumBuckets)
    : Lo(Lo), Hi(Hi), Counts(NumBuckets, 0) {
  assert(Lo < Hi && "histogram range is empty");
  assert(NumBuckets > 0 && "histogram needs at least one bucket");
}

void Histogram::addSample(double X) {
  if (X < Lo) {
    ++Under;
    return;
  }
  if (X >= Hi) {
    ++Over;
    return;
  }
  const double Width = (Hi - Lo) / static_cast<double>(Counts.size());
  size_t Index = static_cast<size_t>((X - Lo) / Width);
  if (Index >= Counts.size())
    Index = Counts.size() - 1;
  ++Counts[Index];
}

double Histogram::bucketLowerEdge(size_t Index) const {
  assert(Index < Counts.size() && "bucket index out of range");
  const double Width = (Hi - Lo) / static_cast<double>(Counts.size());
  return Lo + Width * static_cast<double>(Index);
}

uint64_t Histogram::totalCount() const {
  uint64_t Total = Under + Over;
  for (uint64_t C : Counts)
    Total += C;
  return Total;
}

std::string Histogram::render(size_t MaxWidth) const {
  uint64_t Peak = 1;
  for (uint64_t C : Counts)
    Peak = std::max(Peak, C);
  std::string Out;
  for (uint64_t C : Counts) {
    static const char *Glyphs[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    const size_t Level =
        C == 0 ? 0 : 1 + (C * 6) / Peak; // 0 for empty, 1..7 otherwise
    Out += Glyphs[std::min<size_t>(Level, 7)];
    if (Out.size() >= MaxWidth)
      break;
  }
  return Out;
}

double dope::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

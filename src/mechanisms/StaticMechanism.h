//===- mechanisms/StaticMechanism.h - Fixed configurations ----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-adaptive baselines of the paper's evaluation:
///
///  * StaticMechanism — run one fixed configuration forever (the
///    development-time choice DoPE argues against, and the
///    "Pthreads-Baseline" even split of Sec. 8.2.2).
///  * OsOversubscribeMechanism — the "Pthreads-OS" baseline: give every
///    parallel task as many threads as the machine has contexts and let
///    the OS scheduler load-balance.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_STATICMECHANISM_H
#define DOPE_MECHANISMS_STATICMECHANISM_H

#include "core/Mechanism.h"

namespace dope {

/// Always returns one fixed configuration.
class StaticMechanism : public Mechanism {
public:
  explicit StaticMechanism(RegionConfig Config, std::string Label = "Static");

  std::string name() const override { return Label; }

  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx)
      override;

private:
  RegionConfig Config;
  std::string Label;
};

/// Builds the "Pthreads-Baseline" static even distribution for a flat
/// pipeline region nested under a driver task: one thread per sequential
/// task, the remaining hardware threads split evenly across parallel
/// tasks (the "common practice" the paper cites from Navarro et al.).
RegionConfig makeEvenPipelineConfig(const ParDescriptor &Root,
                                    unsigned MaxThreads);

/// Builds the "Pthreads-OS" oversubscribed configuration: every parallel
/// task gets \p MaxThreads threads, sequential tasks get one.
RegionConfig makeOversubscribedConfig(const ParDescriptor &Root,
                                      unsigned MaxThreads);

} // namespace dope

#endif // DOPE_MECHANISMS_STATICMECHANISM_H

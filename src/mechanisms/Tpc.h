//===- mechanisms/Tpc.h - Throughput Power Controller ----------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TPC (paper Sec. 7.3): a closed-loop controller that maximizes
/// throughput while holding system power at an administrator-specified
/// target. The controller
///
///   1. initializes every task at DoP extent 1,
///   2. repeatedly grows the least-throughput task while the power budget
///      is not exceeded and throughput improves (Ramp),
///   3. on a power overshoot, backs off and explores alternative
///      configurations with the same total extent as the configuration
///      prior to the overshoot, consulting recorded history (Explore),
///   4. settles on the best-throughput configuration within budget
///      (Stable) and keeps monitoring power and throughput, re-entering
///      the loop when either drifts.
///
/// The power signal arrives through the platform feature registry under
/// the name TpcMechanism::PowerFeatureName ("SystemPower"); the paper's
/// PDU sampled at 13 samples/min and the registry's rate limiting models
/// exactly that lag.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_TPC_H
#define DOPE_MECHANISMS_TPC_H

#include "core/Mechanism.h"

#include <map>
#include <vector>

namespace dope {

/// Tuning parameters of TPC.
struct TpcParams {
  /// Fraction of the budget regarded as "at target" (hysteresis below).
  double TargetMargin = 0.03;
  /// Maximum alternative same-total configurations tried per overshoot.
  unsigned ExploreBudget = 6;
  /// Relative throughput drift that re-opens the search in Stable.
  double ReexploreDrift = 0.2;
};

/// Throughput Power Controller.
class TpcMechanism : public Mechanism {
public:
  /// Feature registry key for the system power signal, in watts.
  static constexpr const char *PowerFeatureName = "SystemPower";

  explicit TpcMechanism(TpcParams Params = TpcParams());

  std::string name() const override { return "TPC"; }

  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx)
      override;

  void reset() override;

  /// Controller phase, for tests and traces.
  enum class Phase { Init, Ramp, Explore, Stable };
  Phase phase() const { return State; }

private:
  struct Record {
    double Throughput = 0.0;
    double Power = 0.0;
  };

  /// History key: the extents vector.
  using Key = std::vector<unsigned>;

  TpcParams Params;
  Phase State = Phase::Init;
  std::map<Key, Record> History;
  Key LastKey;
  Key PreOvershootKey;
  unsigned ExploreTried = 0;
  double StableThroughput = 0.0;
};

} // namespace dope

#endif // DOPE_MECHANISMS_TPC_H

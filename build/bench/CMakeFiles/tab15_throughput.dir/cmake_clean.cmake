file(REMOVE_RECURSE
  "CMakeFiles/tab15_throughput.dir/tab15_throughput.cpp.o"
  "CMakeFiles/tab15_throughput.dir/tab15_throughput.cpp.o.d"
  "tab15_throughput"
  "tab15_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab15_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

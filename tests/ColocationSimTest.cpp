//===- tests/ColocationSimTest.cpp - Multi-tenant simulator tests ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/ColocationSim.h"

#include "sim/ChaosInvariants.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

/// Latency-sensitive nested-parallel server: needs only a sliver of the
/// machine at base load, triple load during the mid-run burst.
ColocationTenantSpec frontendTenant() {
  ColocationTenantSpec T;
  T.Tenant.Name = "frontend";
  T.Tenant.Goal = TenantGoal::ResponseTime;
  T.Tenant.Weight = 2.0;
  T.Tenant.MinThreads = 2;
  T.Tenant.SloSeconds = 0.5;
  T.Kind = ColocationTenantSpec::AppKind::NestServer;
  T.Nest.Name = "frontend";
  T.Nest.SeqServiceSeconds = 0.05;
  T.Nest.Curve = SpeedupCurve(0.1, 0.2);
  T.ArrivalRate = 40.0;
  T.ArrivalSchedule.addPhase(1.0, 30.0);
  T.ArrivalSchedule.addPhase(3.0, 20.0); // antagonist burst: 120/s
  T.ArrivalSchedule.addPhase(1.0, 1e9);
  return T;
}

/// Throughput-hungry pipeline batch job: oversubscribed at any grant the
/// platform can give it — it absorbs every spare thread.
ColocationTenantSpec batchTenant() {
  ColocationTenantSpec T;
  T.Tenant.Name = "batch";
  T.Tenant.Goal = TenantGoal::Throughput;
  T.Tenant.Weight = 1.0;
  T.Kind = ColocationTenantSpec::AppKind::Pipeline;
  T.Pipeline.Name = "batch";
  T.Pipeline.Stages = {{"decode", true, 0.02, 0.15},
                       {"work", true, 0.1, 0.15},
                       {"sink", true, 0.03, 0.15}};
  T.ArrivalRate = 200.0;
  return T;
}

ColocationSimOptions quickOptions(ColocationPolicy Policy) {
  ColocationSimOptions Opts;
  Opts.Contexts = 24;
  Opts.Seed = 42;
  Opts.DurationSeconds = 80.0;
  Opts.StepSeconds = 0.05;
  Opts.WarmupSeconds = 4.0;
  Opts.Policy = Policy;
  return Opts;
}

ColocationSimResult runPolicy(ColocationPolicy Policy, uint64_t Seed = 42) {
  ColocationSimOptions Opts = quickOptions(Policy);
  Opts.Seed = Seed;
  ColocationSim Sim({frontendTenant(), batchTenant()}, Opts);
  return Sim.run();
}

TEST(ColocationSim, CapacityCurvesAreSane) {
  const ColocationTenantSpec Front = frontendTenant();
  const ColocationTenantSpec Batch = batchTenant();
  // More threads never reduce capacity, and the curves are nontrivial.
  for (unsigned K = 1; K < 24; ++K) {
    EXPECT_LE(ColocationSim::capacity(Front, K),
              ColocationSim::capacity(Front, K + 1) + 1e-9);
    EXPECT_LE(ColocationSim::capacity(Batch, K),
              ColocationSim::capacity(Batch, K + 1) + 1e-9);
  }
  // Pipeline bottleneck math: at 12 threads greedy replication yields
  // stage extents (2, 7, 3) and the 0.1 s stage bounds throughput.
  EXPECT_NEAR(ColocationSim::capacity(Batch, 12), 70.0, 1e-9);
  // One nest thread serves 1/T1 = 20/s.
  EXPECT_NEAR(ColocationSim::capacity(Front, 1), 20.0, 1e-9);
  EXPECT_GT(ColocationSim::serviceLatency(Front, 4), 0.0);
  EXPECT_NEAR(ColocationSim::serviceLatency(Batch, 12), 0.15, 1e-9);
}

TEST(ColocationSim, DeterministicUnderSameSeed) {
  const ColocationSimResult A = runPolicy(ColocationPolicy::Arbiter, 7);
  const ColocationSimResult B = runPolicy(ColocationPolicy::Arbiter, 7);
  ASSERT_EQ(A.Tenants.size(), B.Tenants.size());
  for (size_t I = 0; I != A.Tenants.size(); ++I) {
    EXPECT_EQ(A.Tenants[I].Arrived, B.Tenants[I].Arrived);
    EXPECT_EQ(A.Tenants[I].Completed, B.Tenants[I].Completed);
    EXPECT_EQ(A.Tenants[I].SloHits, B.Tenants[I].SloHits);
    EXPECT_EQ(A.Tenants[I].LeaseChanges, B.Tenants[I].LeaseChanges);
  }
  EXPECT_EQ(A.LeaseChanges, B.LeaseChanges);
  EXPECT_DOUBLE_EQ(A.Fairness.AggregateAttainment,
                   B.Fairness.AggregateAttainment);
}

TEST(ColocationSim, AllPoliciesCompleteWork) {
  for (ColocationPolicy P :
       {ColocationPolicy::Arbiter, ColocationPolicy::StaticSplit,
        ColocationPolicy::Oversubscribed}) {
    const ColocationSimResult R = runPolicy(P);
    ASSERT_EQ(R.Tenants.size(), 2u) << toString(P);
    for (const TenantStats &T : R.Tenants) {
      EXPECT_GT(T.Arrived, 0u) << toString(P) << " " << T.Name;
      EXPECT_GT(T.Completed, 0u) << toString(P) << " " << T.Name;
    }
    EXPECT_GT(R.Fairness.AggregateAttainment, 0.0) << toString(P);
    EXPECT_LE(R.Fairness.AggregateAttainment, 1.0 + 1e-9) << toString(P);
  }
}

TEST(ColocationSim, LeaseChangesOnlyUnderArbiter) {
  EXPECT_GT(runPolicy(ColocationPolicy::Arbiter).LeaseChanges, 0u);
  EXPECT_EQ(runPolicy(ColocationPolicy::StaticSplit).LeaseChanges, 0u);
  EXPECT_EQ(runPolicy(ColocationPolicy::Oversubscribed).LeaseChanges, 0u);
}

TEST(ColocationSim, ArbiterBeatsStaticSplitOnAggregateAttainment) {
  // The half-split strands ~10 threads on the frontend silo; the
  // arbiter hands them to the starved batch tenant and snaps back
  // during the frontend burst.
  const ColocationSimResult Arb = runPolicy(ColocationPolicy::Arbiter);
  const ColocationSimResult Split = runPolicy(ColocationPolicy::StaticSplit);
  EXPECT_GT(Arb.Fairness.AggregateAttainment,
            Split.Fairness.AggregateAttainment);

  // And not by sacrificing the latency tenant: the frontend keeps its
  // SLO hit rate high through the burst.
  const TenantStats &Front = Arb.Tenants[0];
  ASSERT_EQ(Front.Name, "frontend");
  EXPECT_GT(Front.goalAttainment(), 0.9);
}

TEST(ColocationSim, OversubscriptionDegradesBothTenants) {
  // Against the static half-split (identical 12/12 grants), the
  // oversubscribed baseline is strictly worse: time-slicing two
  // machine-wide tenant footprints stretches every response and taxes
  // every stage's throughput.
  const ColocationSimResult Split = runPolicy(ColocationPolicy::StaticSplit);
  const ColocationSimResult Os = runPolicy(ColocationPolicy::Oversubscribed);
  ASSERT_EQ(Split.Tenants[0].Name, "frontend");
  EXPECT_GT(Os.Tenants[0].Responses.meanResponseTime(),
            Split.Tenants[0].Responses.meanResponseTime());
  EXPECT_LT(Os.Tenants[1].Completed, Split.Tenants[1].Completed);

  // And the arbiter's batch tenant, fed the frontend's idle threads,
  // out-serves the thrashing baseline's batch tenant outright.
  const ColocationSimResult Arb = runPolicy(ColocationPolicy::Arbiter);
  EXPECT_GT(Arb.Tenants[1].goalAttainment(),
            Os.Tenants[1].goalAttainment());
}

TEST(ColocationSim, AdmissionLimitShedsInsteadOfQueueing) {
  ColocationTenantSpec Overloaded = batchTenant();
  Overloaded.Tenant.Name = "overloaded";
  Overloaded.ArrivalRate = 500.0; // far beyond any capacity
  Overloaded.AdmissionLimit = 50;
  ColocationSimOptions Opts = quickOptions(ColocationPolicy::StaticSplit);
  Opts.DurationSeconds = 30.0;
  ColocationSim Sim({frontendTenant(), Overloaded}, Opts);
  const ColocationSimResult R = Sim.run();
  const TenantStats &T = R.Tenants[1];
  EXPECT_GT(T.Shed, 0u);
  EXPECT_LE(T.Completed + T.Shed, T.Arrived);
  // With a 50-item cap, nothing waits longer than cap/capacity plus
  // intrinsic latency — far under the unbounded backlog's wait.
  const double Cap = ColocationSim::capacity(Overloaded, 12);
  EXPECT_LT(T.Responses.maxResponseTime(), 50.0 / Cap + 1.0);
}

TEST(ColocationSim, TraceSinkSeesLeaseAndCounterRecords) {
  Tracer Trace(1 << 16);
  ColocationSimOptions Opts = quickOptions(ColocationPolicy::Arbiter);
  Opts.DurationSeconds = 30.0;
  Opts.TraceSink = &Trace;
  ColocationSim Sim({frontendTenant(), batchTenant()}, Opts);
  Sim.run();
  size_t Leases = 0, Counters = 0, Utilities = 0;
  for (const TraceRecord &R : Trace.drain()) {
    Leases += R.Kind == TraceKind::LeaseGrant ||
              R.Kind == TraceKind::LeaseRevoke;
    Counters += R.Kind == TraceKind::Counter;
    Utilities += R.Kind == TraceKind::TenantUtility;
  }
  EXPECT_GT(Leases, 0u);
  EXPECT_GT(Counters, 0u);
  EXPECT_GT(Utilities, 0u);
}

//===----------------------------------------------------------------------===//
// Lease-protocol chaos coverage
//===----------------------------------------------------------------------===//

TEST(ColocationSim, JournalOpensWithJoinGrantsForEveryTenant) {
  ColocationSimOptions Opts = quickOptions(ColocationPolicy::Arbiter);
  Opts.DurationSeconds = 20.0;
  ColocationSim Sim({frontendTenant(), batchTenant()}, Opts);
  const ColocationSimResult R = Sim.run();
  ASSERT_GE(R.ProtocolJournal.size(), 2u);
  size_t Joins = 0;
  for (const TraceRecord &Rec : R.ProtocolJournal) {
    if (Rec.Time > 0.0)
      break;
    if (Rec.Kind == TraceKind::LeaseGrant && Rec.Detail == "join")
      ++Joins;
  }
  EXPECT_EQ(Joins, 2u);
}

TEST(ColocationSim, CrashedTenantLeaseExpiresByTtl) {
  ColocationSimOptions Opts = quickOptions(ColocationPolicy::Arbiter);
  Opts.DurationSeconds = 48.0;
  Opts.Arbiter.EpochSeconds = 2.0;
  Opts.Arbiter.LeaseTtlSeconds = 5.0;
  ColocationTenantSpec Doomed = batchTenant();
  Doomed.Misbehavior.CrashSeconds = 20.0;
  ColocationSim Sim({frontendTenant(), Doomed}, Opts);
  const ColocationSimResult R = Sim.run();

  // The crashed tenant's threads come back via a TTL expiry, within one
  // epoch of the deadline, and never again after that.
  double ExpireTime = -1.0;
  for (const TraceRecord &Rec : R.ProtocolJournal)
    if (Rec.Kind == TraceKind::LeaseExpire && Rec.Name == "batch") {
      ExpireTime = Rec.Time;
      break;
    }
  // The last heartbeat lands at the epoch boundary before the crash
  // (t=18), so the TTL deadline is 23 and the sweep at t=24 reclaims.
  ASSERT_GE(ExpireTime, 0.0) << "no LeaseExpire journaled for the crash";
  EXPECT_GE(ExpireTime, 20.0 + 5.0 - Opts.Arbiter.EpochSeconds);
  EXPECT_LE(ExpireTime, 20.0 + 5.0 + Opts.Arbiter.EpochSeconds + 1e-9);

  // Post-expiry the allocation timeline shows the survivor holding the
  // machine and the corpse holding nothing.
  ASSERT_FALSE(R.AllocationTimeline.empty());
  const AllocationSample &Last = R.AllocationTimeline.back();
  ASSERT_EQ(Last.Granted.size(), 2u);
  EXPECT_EQ(Last.Granted[1], 0u);
  EXPECT_GT(Last.Granted[0], 0u);

  ChaosInvariantOptions Inv;
  Inv.PlatformThreads = Opts.Contexts;
  Inv.LeaseTtlSeconds = Opts.Arbiter.LeaseTtlSeconds;
  const ChaosInvariantReport Report =
      checkChaosInvariants(R.ProtocolJournal, Inv);
  EXPECT_TRUE(Report.ok()) << (Report.Violations.empty()
                                   ? ""
                                   : Report.Violations.front().Message);
}

TEST(ColocationSim, OutageRunCompletesAndKeepsTheJournalInvariant) {
  for (const ArbiterOutage::RestartMode Mode :
       {ArbiterOutage::RestartMode::Snapshot,
        ArbiterOutage::RestartMode::WarmTrace}) {
    ColocationSimOptions Opts = quickOptions(ColocationPolicy::Arbiter);
    Opts.DurationSeconds = 48.0;
    Opts.Arbiter.EpochSeconds = 2.0;
    Opts.Arbiter.LeaseTtlSeconds = 5.0;
    Opts.Outage.KillSeconds = 16.0;
    Opts.Outage.RestartSeconds = 22.0;
    Opts.Outage.Mode = Mode;
    ColocationSim Sim({frontendTenant(), batchTenant()}, Opts);
    const ColocationSimResult R = Sim.run();

    // Both tenants keep completing work through the outage.
    ASSERT_EQ(R.Tenants.size(), 2u);
    EXPECT_GT(R.Tenants[0].Completed, 0u);
    EXPECT_GT(R.Tenants[1].Completed, 0u);

    ChaosInvariantOptions Inv;
    Inv.PlatformThreads = Opts.Contexts;
    Inv.LeaseTtlSeconds = Opts.Arbiter.LeaseTtlSeconds;
    const ChaosInvariantReport Report =
        checkChaosInvariants(R.ProtocolJournal, Inv);
    EXPECT_TRUE(Report.ok())
        << "mode " << static_cast<int>(Mode) << ": "
        << (Report.Violations.empty() ? ""
                                      : Report.Violations.front().Message);
  }
}

} // namespace

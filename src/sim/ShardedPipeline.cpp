//===- sim/ShardedPipeline.cpp - Pipeline replica fleet ------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/ShardedPipeline.h"

#include "sim/ShardedSim.h"

#include <algorithm>
#include <stdexcept>

using namespace dope;

PipelineFleetResult dope::runPipelineFleet(const PipelineFleetOptions &Opts) {
  if (Opts.Shards == 0)
    throw std::invalid_argument("runPipelineFleet: fleet must be >= 1");
  const unsigned S = Opts.Shards;

  PipelineFleetResult Fleet;
  Fleet.Replicas.resize(S);

  // Replicas never exchange events, so the whole run is one conservative
  // epoch: lookahead spans the simulation horizon and the first barrier
  // ends the run.
  ShardedSimOptions EngineOpts;
  EngineOpts.Shards = S;
  EngineOpts.LookaheadSeconds = std::max(1.0, Opts.Base.MaxSimSeconds);
  EngineOpts.Seed = Opts.Base.Seed;
  ShardedSim Engine(
      EngineOpts,
      [&](ShardContext &Ctx) {
        const unsigned R = Ctx.shard();
        PipelineSimOptions Mine = Opts.Base;
        // Deterministic per-replica stream: replica 0 keeps the base
        // seed so fleet(1) is byte-identical to plain PipelineSim.
        Mine.Seed = Opts.Base.Seed + 0x9e37 * static_cast<uint64_t>(R);
        if (Mine.OpenLoop) {
          Mine.ArrivalRate = Opts.Base.ArrivalRate / S;
        } else {
          const uint64_t Split = Opts.Base.NumItems / S;
          const uint64_t Rem = Opts.Base.NumItems % S;
          Mine.NumItems = Split + (R < Rem ? 1 : 0);
        }
        if (S > 1)
          Mine.TraceSink = nullptr; // tracer clock retarget is per-run
        PipelineSim Sim(Opts.App, Mine);
        std::unique_ptr<Mechanism> Mech =
            Opts.MakeMechanism ? Opts.MakeMechanism(R) : nullptr;
        Fleet.Replicas[R] = Sim.run(Mech.get(), Opts.InitialExtents);
      },
      [](double) { return false; });
  Engine.run();

  for (const PipelineSimResult &R : Fleet.Replicas) {
    Fleet.ItemsCompleted += R.ItemsCompleted;
    Fleet.Throughput += R.Throughput;
    Fleet.P95ResponseSeconds = std::max(
        Fleet.P95ResponseSeconds, R.Stats.responsePercentile(0.95));
  }
  return Fleet;
}

//===- tools/dope_lint/main.cpp - DoPE contract checker --------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// dope_lint — static contract checker for the DoPE executive
/// (DESIGN.md §12). Scans the translation units listed in an exported
/// compile_commands.json (plus headers under --root) or an explicit
/// file list, and enforces the determinism, hot-path purity, API
/// pairing, and trace-schema contracts. Exit codes: 0 clean, 1 findings,
/// 2 usage or I/O error.
///
//===----------------------------------------------------------------------===//

#include "Checks.h"
#include "CompDb.h"
#include "LibclangFrontend.h"

#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace dopelint;
namespace fs = std::filesystem;

namespace {

struct Options {
  std::vector<std::string> Files;
  std::string CompDbPath;
  std::string Root;
  std::string Frontend = "auto"; ///< auto | builtin | libclang
  bool Json = false;
  bool Basenames = false;
  bool ListChecks = false;
  bool Quiet = false;
  bool Explain = false;
  std::set<std::string> Allowed;
};

void printUsage(FILE *OS) {
  std::fprintf(
      OS,
      "usage: dope_lint [options] [files...]\n"
      "\n"
      "DoPE static contract checker (see DESIGN.md \"Static contracts\").\n"
      "\n"
      "options:\n"
      "  --compdb <path>     scan the TUs of a compile_commands.json\n"
      "  --root <dir>        restrict the scan to files under <dir> and\n"
      "                      add the headers beneath it\n"
      "  --allow <ID>        disable a check (repeatable; unknown IDs are\n"
      "                      a usage error)\n"
      "  --frontend <name>   auto | builtin | libclang (libclang is a\n"
      "                      usage error in builds without it)\n"
      "  --json              machine-readable findings on stdout\n"
      "  --basenames         print file basenames (stable golden output)\n"
      "  --explain           print interprocedural evidence chains under\n"
      "                      HP004/LK001/LK002 findings\n"
      "  --list-checks       print the check table and exit\n"
      "  --quiet             suppress the summary line\n"
      "  -h, --help          this text\n"
      "\n"
      "exit status: 0 no findings, 1 findings, 2 usage/IO error.\n");
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "dope_lint: %s requires a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (A == "-h" || A == "--help") {
      printUsage(stdout);
      std::exit(0);
    } else if (A == "--list-checks") {
      Opts.ListChecks = true;
    } else if (A == "--json") {
      Opts.Json = true;
    } else if (A == "--basenames") {
      Opts.Basenames = true;
    } else if (A == "--quiet") {
      Opts.Quiet = true;
    } else if (A == "--explain") {
      Opts.Explain = true;
    } else if (A == "--compdb") {
      const char *V = Value("--compdb");
      if (!V)
        return false;
      Opts.CompDbPath = V;
    } else if (A == "--root") {
      const char *V = Value("--root");
      if (!V)
        return false;
      Opts.Root = V;
    } else if (A == "--allow") {
      const char *V = Value("--allow");
      if (!V)
        return false;
      bool Known = std::string(V) == "all";
      for (const CheckInfo &C : allChecks())
        Known = Known || std::string(V) == C.Id;
      if (!Known) {
        std::fprintf(stderr,
                     "dope_lint: unknown check ID '%s' for --allow (see "
                     "--list-checks)\n",
                     V);
        return false;
      }
      Opts.Allowed.insert(V);
    } else if (A == "--frontend") {
      const char *V = Value("--frontend");
      if (!V)
        return false;
      Opts.Frontend = V;
      if (Opts.Frontend != "auto" && Opts.Frontend != "builtin" &&
          Opts.Frontend != "libclang") {
        std::fprintf(stderr, "dope_lint: unknown frontend '%s'\n", V);
        return false;
      }
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "dope_lint: unknown option '%s'\n", A.c_str());
      return false;
    } else {
      Opts.Files.push_back(A);
    }
  }
  return true;
}

std::string canonical(const std::string &Path) {
  std::error_code EC;
  fs::path Canon = fs::weakly_canonical(Path, EC);
  return EC ? Path : Canon.string();
}

bool underRoot(const std::string &Path, const std::string &Root) {
  if (Root.empty())
    return true;
  std::string R = canonical(Root);
  if (!R.empty() && R.back() != '/')
    R += '/';
  return Path.compare(0, R.size(), R) == 0;
}

bool isSourceExt(const fs::path &P) {
  std::string E = P.extension().string();
  return E == ".cpp" || E == ".cc" || E == ".cxx" || E == ".h" ||
         E == ".hpp";
}

/// Resolves the scan list from explicit files, the compilation
/// database, and --root header discovery.
bool resolveInputs(const Options &Opts,
                   std::vector<std::pair<std::string, std::vector<std::string>>>
                       &Inputs) {
  std::set<std::string> Seen;
  auto Add = [&](const std::string &Path, std::vector<std::string> Args) {
    std::string C = canonical(Path);
    if (!underRoot(C, Opts.Root) || !Seen.insert(C).second)
      return;
    Inputs.emplace_back(C, std::move(Args));
  };

  for (const std::string &F : Opts.Files)
    Add(F, {});

  if (!Opts.CompDbPath.empty()) {
    std::vector<CompileCommand> Cmds;
    std::string Error;
    if (!loadCompDb(Opts.CompDbPath, Cmds, Error)) {
      std::fprintf(stderr, "dope_lint: %s\n", Error.c_str());
      return false;
    }
    for (CompileCommand &CC : Cmds)
      Add(CC.File, std::move(CC.Args));
  }

  if (!Opts.Root.empty()) {
    for (const std::string &H : collectHeadersUnder(Opts.Root))
      Add(H, {});
    // Without a compdb the root walk must pick up the TUs itself.
    if (Opts.CompDbPath.empty() && Opts.Files.empty()) {
      std::error_code EC;
      fs::recursive_directory_iterator It(Opts.Root, EC), End;
      std::vector<std::string> Sources;
      for (; !EC && It != End; It.increment(EC))
        if (It->is_regular_file(EC) && isSourceExt(It->path()))
          Sources.push_back(It->path().string());
      std::sort(Sources.begin(), Sources.end());
      for (const std::string &S : Sources)
        Add(S, {});
    }
  }
  return true;
}

bool lexFile(const Options &Opts, const std::string &Path,
             const std::vector<std::string> &Args, LexOutput &Out,
             bool &UsedLibclang) {
  bool WantLibclang = Opts.Frontend == "libclang" ||
                      (Opts.Frontend == "auto" && libclangAvailable());
  if (WantLibclang) {
    std::string Error;
    if (lexWithLibclang(Path, Args, Out, Error)) {
      UsedLibclang = true;
      return true;
    }
    if (Opts.Frontend == "libclang") {
      // An explicitly requested frontend never silently degrades: the
      // parity guarantee only holds when the run uses what was asked.
      std::fprintf(stderr, "dope_lint: %s\n", Error.c_str());
      return false;
    }
  }
  UsedLibclang = false;
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    std::fprintf(stderr, "dope_lint: cannot read '%s'\n", Path.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << IS.rdbuf();
  std::string Source = SS.str();
  Out = lex(Source);
  return true;
}

std::string displayPath(const Options &Opts, const std::string &Path) {
  if (!Opts.Basenames)
    return Path;
  return fs::path(Path).filename().string();
}

void printText(const Options &Opts, const std::vector<Finding> &Findings,
               size_t FileCount) {
  for (const Finding &F : Findings) {
    std::printf("%s:%u: %s: [%s] %s\n",
                displayPath(Opts, F.File).c_str(), F.Line,
                F.Severity.c_str(), F.CheckId.c_str(), F.Message.c_str());
    if (Opts.Explain)
      for (size_t I = 0; I < F.Chain.size(); ++I)
        std::printf("    note: #%zu %s (%s:%u)\n", I + 1,
                    F.Chain[I].Symbol.c_str(),
                    displayPath(Opts, F.Chain[I].File).c_str(),
                    F.Chain[I].Line);
  }
  if (!Opts.Quiet) {
    size_t Errors = 0, Warnings = 0;
    for (const Finding &F : Findings)
      (F.Severity == "error" ? Errors : Warnings) += 1;
    std::printf("dope_lint: scanned %zu file(s): %zu error(s), %zu "
                "warning(s)\n",
                FileCount, Errors, Warnings);
  }
}

void printJson(const Options &Opts, const std::vector<Finding> &Findings,
               size_t FileCount, bool UsedLibclang) {
  dope::JsonValue Doc = dope::JsonValue::makeObject();
  dope::JsonValue Arr = dope::JsonValue::makeArray();
  for (const Finding &F : Findings) {
    dope::JsonValue O = dope::JsonValue::makeObject();
    O.set("check", dope::JsonValue(F.CheckId));
    O.set("severity", dope::JsonValue(F.Severity));
    O.set("file", dope::JsonValue(displayPath(Opts, F.File)));
    O.set("line", dope::JsonValue(static_cast<double>(F.Line)));
    O.set("message", dope::JsonValue(F.Message));
    if (!F.Chain.empty()) {
      dope::JsonValue Chain = dope::JsonValue::makeArray();
      for (const ChainFrame &Frame : F.Chain) {
        dope::JsonValue FO = dope::JsonValue::makeObject();
        FO.set("symbol", dope::JsonValue(Frame.Symbol));
        FO.set("file", dope::JsonValue(displayPath(Opts, Frame.File)));
        FO.set("line", dope::JsonValue(static_cast<double>(Frame.Line)));
        Chain.push(std::move(FO));
      }
      O.set("chain", std::move(Chain));
    }
    Arr.push(std::move(O));
  }
  Doc.set("findings", std::move(Arr));
  Doc.set("files_scanned", dope::JsonValue(static_cast<double>(FileCount)));
  // The frontend actually used for this run — not what the build could
  // have used.
  Doc.set("frontend", dope::JsonValue(UsedLibclang ? "libclang" : "builtin"));
  std::printf("%s\n", Doc.dump().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    printUsage(stderr);
    return 2;
  }

  if (Opts.ListChecks) {
    for (const CheckInfo &C : allChecks())
      std::printf("%s  %-7s  %-22s %s\n", C.Id, C.Severity, C.Name,
                  C.Description);
    return 0;
  }

  if (Opts.Files.empty() && Opts.CompDbPath.empty() && Opts.Root.empty()) {
    std::fprintf(stderr, "dope_lint: nothing to scan\n");
    printUsage(stderr);
    return 2;
  }

  if (Opts.Frontend == "libclang" && !libclangAvailable()) {
    std::fprintf(stderr,
                 "dope_lint: this build has no libclang frontend "
                 "(clang-c/Index.h was not found at configure time)\n");
    return 2;
  }

  std::vector<std::pair<std::string, std::vector<std::string>>> Inputs;
  if (!resolveInputs(Opts, Inputs))
    return 2;
  if (Inputs.empty()) {
    std::fprintf(stderr, "dope_lint: no files matched\n");
    return 2;
  }

  std::vector<FileTokens> Files;
  Files.reserve(Inputs.size());
  bool AllLibclang = true;
  for (const auto &[Path, Args] : Inputs) {
    FileTokens FT;
    FT.Path = Path;
    bool UsedLibclang = false;
    if (!lexFile(Opts, Path, Args, FT.Lex, UsedLibclang))
      return 2;
    AllLibclang = AllLibclang && UsedLibclang;
    Files.push_back(std::move(FT));
  }

  GlobalIndex Index = buildIndex(Files);
  CheckOptions CheckOpts;
  CheckOpts.Disabled = Opts.Allowed;

  std::vector<Finding> Findings;
  for (const FileTokens &File : Files) {
    std::vector<Finding> FileFindings = runChecks(File, Index, CheckOpts);
    Findings.insert(Findings.end(),
                    std::make_move_iterator(FileFindings.begin()),
                    std::make_move_iterator(FileFindings.end()));
  }
  {
    std::vector<Finding> Global = runGlobalChecks(Files, Index, CheckOpts);
    Findings.insert(Findings.end(),
                    std::make_move_iterator(Global.begin()),
                    std::make_move_iterator(Global.end()));
  }
  std::stable_sort(Findings.begin(), Findings.end(),
                   [](const Finding &A, const Finding &B) {
                     if (A.File != B.File)
                       return A.File < B.File;
                     return A.Line < B.Line;
                   });

  if (Opts.Json)
    printJson(Opts, Findings, Files.size(), AllLibclang);
  else
    printText(Opts, Findings, Files.size());
  return Findings.empty() ? 0 : 1;
}

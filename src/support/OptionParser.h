//===- support/OptionParser.h - Tiny command line parser ------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal command-line option parsing for the benchmark harnesses and
/// examples: --name=value / --name value / --flag forms, with typed
/// accessors, defaults, and generated --help text.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_OPTIONPARSER_H
#define DOPE_SUPPORT_OPTIONPARSER_H

#include <map>
#include <string>
#include <vector>

namespace dope {

/// Declarative option set. Declare options with add*(), then call parse().
class OptionParser {
public:
  explicit OptionParser(std::string ProgramDescription = "");

  void addString(const std::string &Name, const std::string &Default,
                 const std::string &Help);
  void addInt(const std::string &Name, long long Default,
              const std::string &Help);
  void addDouble(const std::string &Name, double Default,
                 const std::string &Help);
  void addFlag(const std::string &Name, const std::string &Help);

  /// Parses argv. Returns false (and fills error()) on malformed input or
  /// unknown options. Recognizes --help and sets helpRequested().
  bool parse(int Argc, const char *const *Argv);

  std::string getString(const std::string &Name) const;
  long long getInt(const std::string &Name) const;
  double getDouble(const std::string &Name) const;
  bool getFlag(const std::string &Name) const;

  /// Positional (non-option) arguments in order of appearance.
  const std::vector<std::string> &positional() const { return Positional; }

  bool helpRequested() const { return HelpRequested; }
  const std::string &error() const { return Error; }
  std::string helpText() const;

private:
  enum class OptionKind { String, Int, Double, Flag };
  struct Option {
    OptionKind Kind;
    std::string Default;
    std::string Value;
    std::string Help;
    bool Seen = false;
  };

  const Option *find(const std::string &Name) const;

  std::string Description;
  std::map<std::string, Option> Options;
  std::vector<std::string> DeclOrder;
  std::vector<std::string> Positional;
  std::string Error;
  bool HelpRequested = false;
};

} // namespace dope

#endif // DOPE_SUPPORT_OPTIONPARSER_H

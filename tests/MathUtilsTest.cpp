//===- tests/MathUtilsTest.cpp - Numeric helper tests ----------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/MathUtils.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace dope;

namespace {

TEST(Clamp, DoubleAndUnsigned) {
  EXPECT_DOUBLE_EQ(clampDouble(5.0, 0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(clampDouble(-1.0, 0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(clampDouble(2.0, 0.0, 3.0), 2.0);
  EXPECT_EQ(clampUnsigned(9, 1, 8), 8u);
  EXPECT_EQ(clampUnsigned(0, 1, 8), 1u);
}

TEST(ApproxEqual, RelativeTolerance) {
  EXPECT_TRUE(approxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approxEqual(1.0, 1.1));
  EXPECT_TRUE(approxEqual(1e9, 1e9 + 0.5, 1e-9));
}

unsigned sumOf(const std::vector<unsigned> &V) {
  return std::accumulate(V.begin(), V.end(), 0u);
}

TEST(ProportionalSplit, ExactTotal) {
  const std::vector<unsigned> R = proportionalSplit(10, {1.0, 1.0});
  EXPECT_EQ(sumOf(R), 10u);
  EXPECT_EQ(R[0], 5u);
  EXPECT_EQ(R[1], 5u);
}

TEST(ProportionalSplit, ProportionalToWeights) {
  const std::vector<unsigned> R = proportionalSplit(12, {1.0, 2.0, 3.0});
  EXPECT_EQ(sumOf(R), 12u);
  EXPECT_EQ(R[0], 2u);
  EXPECT_EQ(R[1], 4u);
  EXPECT_EQ(R[2], 6u);
}

TEST(ProportionalSplit, LargestRemainderRounding) {
  // Shares: 3.33, 3.33, 3.33 -> floors 3,3,3, leftover 1 to the first.
  const std::vector<unsigned> R = proportionalSplit(10, {1.0, 1.0, 1.0});
  EXPECT_EQ(sumOf(R), 10u);
  EXPECT_EQ(R[0], 4u);
}

TEST(ProportionalSplit, ZeroWeightsFallBackToEven) {
  const std::vector<unsigned> R = proportionalSplit(9, {0.0, 0.0, 0.0});
  EXPECT_EQ(sumOf(R), 9u);
  EXPECT_EQ(R[0], 3u);
}

TEST(ProportionalSplit, MinEachHonoured) {
  const std::vector<unsigned> R = proportionalSplit(10, {100.0, 1.0}, 1);
  EXPECT_EQ(sumOf(R), 10u);
  EXPECT_GE(R[1], 1u);
}

TEST(ProportionalSplit, TotalSmallerThanFloors) {
  const std::vector<unsigned> R = proportionalSplit(2, {1.0, 1.0, 1.0}, 1);
  // Budget cannot satisfy the floor; every bucket still gets the floor.
  EXPECT_EQ(R, (std::vector<unsigned>{1, 1, 1}));
}

TEST(ProportionalSplit, NegativeWeightsTreatedAsZero) {
  const std::vector<unsigned> R = proportionalSplit(6, {-5.0, 1.0});
  EXPECT_EQ(sumOf(R), 6u);
  EXPECT_EQ(R[0], 0u);
  EXPECT_EQ(R[1], 6u);
}

TEST(ProportionalSplit, EmptyWeights) {
  EXPECT_TRUE(proportionalSplit(5, {}).empty());
}

TEST(WaterfillSplit, EqualCostsSplitEvenly) {
  const std::vector<unsigned> R = waterfillSplit(12, {1.0, 1.0, 1.0});
  EXPECT_EQ(sumOf(R), 12u);
  EXPECT_EQ(R[0], 4u);
  EXPECT_EQ(R[1], 4u);
  EXPECT_EQ(R[2], 4u);
}

TEST(WaterfillSplit, MaxMinOptimalForFerretLikeStages) {
  // Stage costs 0.8, 8.0, 1.2, 2.0 with budget 22: the proportional
  // continuous solution is [1.47, 14.67, 2.2, 3.67]; the integer max-min
  // optimum protects the small stages.
  const std::vector<unsigned> R =
      waterfillSplit(22, {0.8, 8.0, 1.2, 2.0});
  EXPECT_EQ(sumOf(R), 22u);
  double MinCapacity = 1e300;
  const std::vector<double> Costs = {0.8, 8.0, 1.2, 2.0};
  for (size_t I = 0; I != R.size(); ++I)
    MinCapacity = std::min(MinCapacity, R[I] / Costs[I]);
  // The pure proportional split [1, 15, 2, 4] bottoms out at 1/0.8 = 1.25;
  // waterfilling must do strictly better.
  EXPECT_GT(MinCapacity, 1.26);
}

TEST(WaterfillSplit, PinnedBucketsExcluded) {
  const std::vector<unsigned> R = waterfillSplit(10, {0.0, 1.0, 0.0}, 1);
  EXPECT_EQ(R[0], 1u);
  EXPECT_EQ(R[2], 1u);
  EXPECT_EQ(R[1], 8u);
}

TEST(WaterfillSplit, BudgetSmallerThanStages) {
  const std::vector<unsigned> R = waterfillSplit(2, {1.0, 1.0, 1.0});
  // Everyone still gets the mandatory first unit.
  EXPECT_EQ(R, (std::vector<unsigned>{1, 1, 1}));
}

TEST(WaterfillSplit, AllPinned) {
  const std::vector<unsigned> R = waterfillSplit(10, {0.0, 0.0}, 2);
  EXPECT_EQ(R, (std::vector<unsigned>{2, 2}));
}

TEST(WaterfillSplit, GreedyIsMaxMinOptimalExhaustive) {
  // Brute-force check on a small instance: no assignment of 9 units over
  // costs {1, 2, 3} beats the greedy min-capacity.
  const std::vector<double> Costs = {1.0, 2.0, 3.0};
  const std::vector<unsigned> Greedy = waterfillSplit(9, Costs);
  auto MinCap = [&](unsigned A, unsigned B, unsigned C) {
    return std::min({A / Costs[0], B / Costs[1], C / Costs[2]});
  };
  const double GreedyCap = MinCap(Greedy[0], Greedy[1], Greedy[2]);
  for (unsigned A = 1; A <= 7; ++A)
    for (unsigned B = 1; A + B <= 8; ++B) {
      const unsigned C = 9 - A - B;
      if (C < 1)
        continue;
      EXPECT_LE(MinCap(A, B, C), GreedyCap + 1e-12);
    }
}

} // namespace

//===- core/Types.cpp - Fundamental DoPE types -----------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Types.h"

#include "support/Compiler.h"

using namespace dope;

std::string dope::toString(TaskStatus Status) {
  switch (Status) {
  case TaskStatus::Executing:
    return "EXECUTING";
  case TaskStatus::Suspended:
    return "SUSPENDED";
  case TaskStatus::Finished:
    return "FINISHED";
  case TaskStatus::Failed:
    return "FAILED";
  }
  DOPE_UNREACHABLE("invalid TaskStatus");
}

std::string dope::toString(TaskKind Kind) {
  switch (Kind) {
  case TaskKind::Sequential:
    return "SEQ";
  case TaskKind::Parallel:
    return "PAR";
  }
  DOPE_UNREACHABLE("invalid TaskKind");
}

std::string dope::toString(ParKind Kind) {
  switch (Kind) {
  case ParKind::Seq:
    return "SEQ";
  case ParKind::DoAll:
    return "DOALL";
  case ParKind::Pipe:
    return "PIPE";
  case ParKind::Tree:
    return "TREE";
  }
  DOPE_UNREACHABLE("invalid ParKind");
}

std::string dope::toString(const Dop &D) {
  return "(" + std::to_string(D.Extent) + ", " + toString(D.Kind) + ")";
}

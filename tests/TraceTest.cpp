//===- tests/TraceTest.cpp - Tracer, JSON, exporters, replay I/O -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the observability subsystem: the JSON value, the Tracer
/// ring buffers and clock domain, both exporters with round trips, the
/// Logging mirror, stream/decision serialization, the decision differ,
/// and the tracer wiring of the executive and the simulators.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Logging.h"
#include "support/Trace.h"

#include "core/Dope.h"
#include "core/Replay.h"
#include "metrics/TimeSeries.h"
#include "mechanisms/Tbf.h"
#include "mechanisms/WqtH.h"
#include "sim/NestServerSim.h"
#include "sim/PipelineSim.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

using namespace dope;
using namespace dope::testing_helpers;

//===----------------------------------------------------------------------===//
// JsonValue
//===----------------------------------------------------------------------===//

TEST(JsonValue, DumpParseRoundTrip) {
  JsonValue O = JsonValue::makeObject();
  O.set("name", JsonValue("pipeline \"x\"\n"));
  O.set("count", JsonValue(42));
  O.set("ratio", JsonValue(0.375));
  O.set("ok", JsonValue(true));
  O.set("none", JsonValue());
  JsonValue A = JsonValue::makeArray();
  A.push(JsonValue(1));
  A.push(JsonValue(2.5));
  O.set("list", std::move(A));

  const std::string Text = O.dump();
  std::string Error;
  std::optional<JsonValue> Back = JsonValue::parse(Text, &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->getString("name"), "pipeline \"x\"\n");
  EXPECT_EQ(Back->getNumber("count"), 42.0);
  EXPECT_EQ(Back->getNumber("ratio"), 0.375);
  EXPECT_TRUE(Back->getBool("ok"));
  ASSERT_NE(Back->get("none"), nullptr);
  EXPECT_TRUE(Back->get("none")->isNull());
  ASSERT_NE(Back->get("list"), nullptr);
  ASSERT_EQ(Back->get("list")->size(), 2u);
  EXPECT_EQ(Back->get("list")->at(1).asDouble(), 2.5);
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  JsonValue O = JsonValue::makeObject();
  O.set("zebra", JsonValue(1));
  O.set("alpha", JsonValue(2));
  O.set("mid", JsonValue(3));
  EXPECT_EQ(O.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // Re-setting a key updates in place, it does not reorder.
  O.set("alpha", JsonValue(9));
  EXPECT_EQ(O.dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(JsonValue, IntegersStayIntegers) {
  EXPECT_EQ(JsonValue(3.0).dump(), "3");
  EXPECT_EQ(JsonValue(-17).dump(), "-17");
  EXPECT_EQ(JsonValue(0.25).dump(), "0.25");
}

TEST(JsonValue, ParseErrorsCarryOffsets) {
  std::string Error;
  EXPECT_FALSE(JsonValue::parse("{\"a\": }", &Error).has_value());
  EXPECT_NE(Error.find("offset"), std::string::npos);
  EXPECT_FALSE(JsonValue::parse("[1, 2] trailing", &Error).has_value());
  EXPECT_NE(Error.find("trailing"), std::string::npos);
  EXPECT_FALSE(JsonValue::parse("\"unterminated", &Error).has_value());
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(Tracer, DrainReturnsTimeSortedRecords) {
  Tracer T(64);
  T.recordAt(3.0, TraceKind::Decision, "late");
  T.recordAt(1.0, TraceKind::Decision, "early");
  T.recordAt(2.0, TraceKind::Decision, "middle");

  std::vector<TraceRecord> Records = T.drain();
  ASSERT_EQ(Records.size(), 3u);
  EXPECT_EQ(Records[0].Name, "early");
  EXPECT_EQ(Records[1].Name, "middle");
  EXPECT_EQ(Records[2].Name, "late");
  // Drain clears.
  EXPECT_TRUE(T.drain().empty());
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer T(16); // capacity floor is 16
  for (int I = 0; I != 40; ++I)
    T.recordAt(static_cast<double>(I), TraceKind::Counter, "c",
               static_cast<double>(I));
  EXPECT_EQ(T.recordedTotal(), 40u);
  EXPECT_EQ(T.droppedRecords(), 24u);

  std::vector<TraceRecord> Records = T.drain();
  ASSERT_EQ(Records.size(), 16u);
  // The survivors are the newest 16, still in order.
  EXPECT_EQ(Records.front().A, 24.0);
  EXPECT_EQ(Records.back().A, 39.0);
}

TEST(Tracer, PerThreadBuffersGetDistinctTids) {
  Tracer T(256);
  constexpr int Threads = 4, PerThread = 50;
  std::vector<std::thread> Workers;
  for (int W = 0; W != Threads; ++W)
    Workers.emplace_back([&T] {
      for (int I = 0; I != PerThread; ++I)
        T.record(TraceKind::Counter, "w");
    });
  for (std::thread &W : Workers)
    W.join();

  std::vector<TraceRecord> Records = T.drain();
  ASSERT_EQ(Records.size(),
            static_cast<size_t>(Threads) * PerThread);
  std::set<uint32_t> Tids;
  for (const TraceRecord &R : Records)
    Tids.insert(R.Tid);
  EXPECT_EQ(Tids.size(), static_cast<size_t>(Threads));
  EXPECT_EQ(T.droppedRecords(), 0u);
}

TEST(Tracer, ClockRetargeting) {
  Tracer T(64);
  double VirtualNow = 12.5;
  T.setClock([&VirtualNow] { return VirtualNow; });
  T.record(TraceKind::Counter, "a");
  VirtualNow = 99.0;
  T.record(TraceKind::Counter, "b");
  T.setClock({}); // back to native

  std::vector<TraceRecord> Records = T.drain();
  ASSERT_EQ(Records.size(), 2u);
  EXPECT_EQ(Records[0].Time, 12.5);
  EXPECT_EQ(Records[1].Time, 99.0);
}

TEST(Tracer, ActiveSlotClearedOnDestruction) {
  Tracer *Before = Tracer::active();
  {
    Tracer T(64);
    Tracer::setActive(&T);
    EXPECT_EQ(Tracer::active(), &T);
  }
  EXPECT_EQ(Tracer::active(), nullptr);
  Tracer::setActive(Before);
}

TEST(Tracer, LoggingMirrorsIntoActiveTracer) {
  Tracer T(64);
  T.setClock([] { return 7.0; });
  Tracer *Before = Tracer::active();
  Tracer::setActive(&T);
  DOPE_LOG_ERROR("trace mirror check %d", 42);
  Tracer::setActive(Before);

  std::vector<TraceRecord> Records = T.drain();
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_EQ(Records[0].Kind, TraceKind::Log);
  EXPECT_EQ(Records[0].Time, 7.0);
  EXPECT_NE(Records[0].Detail.find("trace mirror check 42"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

static std::vector<TraceRecord> sampleRecords() {
  std::vector<TraceRecord> Records;
  TraceRecord R;
  R.Time = 0.5;
  R.Kind = TraceKind::TaskBegin;
  R.Tid = 1;
  R.Name = "rank";
  R.A = 2;
  Records.push_back(R);
  R.Time = 0.75;
  R.Kind = TraceKind::Decision;
  R.Name = "TBF";
  R.A = 8;
  R.B = 1;
  R.Detail = "<(1, PIPE <(1, PAR), (7, PAR)>)>";
  Records.push_back(R);
  R.Time = 0.9;
  R.Kind = TraceKind::TaskEnd;
  R.Name = "rank";
  R.A = 2;
  R.B = 0.4;
  R.Detail.clear();
  Records.push_back(R);
  return Records;
}

TEST(TraceExport, JsonlRoundTrip) {
  const std::vector<TraceRecord> Records = sampleRecords();
  std::stringstream SS;
  writeTraceJsonl(Records, SS);

  std::string Error;
  std::optional<std::vector<TraceRecord>> Back = readTraceJsonl(SS, &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  ASSERT_EQ(Back->size(), Records.size());
  for (size_t I = 0; I != Records.size(); ++I) {
    EXPECT_EQ((*Back)[I].Time, Records[I].Time);
    EXPECT_EQ((*Back)[I].Kind, Records[I].Kind);
    EXPECT_EQ((*Back)[I].Tid, Records[I].Tid);
    EXPECT_EQ((*Back)[I].Name, Records[I].Name);
    EXPECT_EQ((*Back)[I].A, Records[I].A);
    EXPECT_EQ((*Back)[I].B, Records[I].B);
    EXPECT_EQ((*Back)[I].Detail, Records[I].Detail);
  }
}

TEST(TraceExport, JsonlRejectsUnknownKind) {
  std::stringstream SS("{\"t\":1,\"kind\":\"nonsense\",\"name\":\"x\"}\n");
  std::string Error;
  EXPECT_FALSE(readTraceJsonl(SS, &Error).has_value());
  EXPECT_NE(Error.find("nonsense"), std::string::npos);
}

TEST(TraceExport, LeaseProtocolKindsRoundTrip) {
  std::vector<TraceRecord> Records;
  TraceRecord R;
  R.Time = 5.0;
  R.Kind = TraceKind::LeaseExpire;
  R.Name = "tenant-a";
  R.A = 0;
  R.B = 6;
  R.Detail = "ttl";
  Records.push_back(R);
  R.Time = 5.5;
  R.Kind = TraceKind::Heartbeat;
  R.Name = "tenant-b";
  R.A = 4;
  R.B = 30.0;
  R.Detail = "saturated";
  Records.push_back(R);
  R.Time = 6.0;
  R.Kind = TraceKind::ComplianceVerdict;
  R.Name = "tenant-c";
  R.A = 4.0;
  R.B = 2.0;
  R.Detail = "envelope-exceeded";
  Records.push_back(R);

  std::stringstream SS;
  writeTraceJsonl(Records, SS);
  std::string Error;
  std::optional<std::vector<TraceRecord>> Back = readTraceJsonl(SS, &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  ASSERT_EQ(Back->size(), 3u);
  EXPECT_EQ((*Back)[0].Kind, TraceKind::LeaseExpire);
  EXPECT_EQ((*Back)[0].Detail, "ttl");
  EXPECT_EQ((*Back)[1].Kind, TraceKind::Heartbeat);
  EXPECT_EQ((*Back)[1].Detail, "saturated");
  EXPECT_EQ((*Back)[2].Kind, TraceKind::ComplianceVerdict);
  EXPECT_EQ((*Back)[2].B, 2.0);
}

TEST(TraceExport, LenientReaderSkipsCorruptionWithHonestCounts) {
  // A crashed writer's file: valid records, a corrupt interior line (a
  // foreign tool interleaved), and a torn final record.
  std::stringstream SS;
  SS << "{\"t\":1,\"kind\":\"heartbeat\",\"name\":\"a\",\"a\":4}\n"
     << "not json at all\n"
     << "{\"t\":2,\"kind\":\"lease-grant\",\"name\":\"a\",\"a\":6}\n"
     << "{\"t\":3,\"kind\":\"lease-revoke\",\"na";

  TraceReadStats Stats;
  const std::vector<TraceRecord> Records = readTraceJsonlLenient(SS, &Stats);
  ASSERT_EQ(Records.size(), 2u);
  EXPECT_EQ(Records[0].Kind, TraceKind::Heartbeat);
  EXPECT_EQ(Records[1].Kind, TraceKind::LeaseGrant);
  EXPECT_EQ(Stats.Parsed, 2u);
  EXPECT_EQ(Stats.Skipped, 2u);
  EXPECT_EQ(Stats.FirstSkippedLine, 2u);
  EXPECT_FALSE(Stats.FirstError.empty());

  // A clean stream reports zero skips.
  std::stringstream Clean;
  writeTraceJsonl(sampleRecords(), Clean);
  TraceReadStats CleanStats;
  EXPECT_EQ(readTraceJsonlLenient(Clean, &CleanStats).size(), 3u);
  EXPECT_EQ(CleanStats.Skipped, 0u);
}

TEST(TraceExport, ChromeTraceIsWellFormedJson) {
  std::stringstream SS;
  writeChromeTrace(sampleRecords(), SS);
  std::string Error;
  std::optional<JsonValue> Doc = JsonValue::parse(SS.str(), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  ASSERT_TRUE(Doc->isArray());
  ASSERT_EQ(Doc->size(), 3u);
  // Begin/end become B/E duration events; microsecond timestamps.
  EXPECT_EQ(Doc->at(0).getString("ph"), "B");
  EXPECT_EQ(Doc->at(0).getNumber("ts"), 0.5e6);
  EXPECT_EQ(Doc->at(2).getString("ph"), "E");
  // The decision is an instant event with the config in args.
  EXPECT_EQ(Doc->at(1).getString("ph"), "i");
  const JsonValue *Args = Doc->at(1).get("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_NE(Args->getString("detail").find("PIPE"), std::string::npos);
}

TEST(TraceExport, WriteTraceFilePicksFormatByExtension) {
  const std::string Base = ::testing::TempDir() + "dope_trace_test";
  const std::string JsonlPath = Base + ".jsonl";
  const std::string ChromePath = Base + ".json";
  std::string Error;
  ASSERT_TRUE(writeTraceFile(sampleRecords(), JsonlPath, &Error)) << Error;
  ASSERT_TRUE(writeTraceFile(sampleRecords(), ChromePath, &Error)) << Error;

  std::ifstream Jsonl(JsonlPath);
  std::optional<std::vector<TraceRecord>> Back = readTraceJsonl(Jsonl);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->size(), 3u);

  std::ifstream Chrome(ChromePath);
  std::stringstream Contents;
  Contents << Chrome.rdbuf();
  std::optional<JsonValue> Doc = JsonValue::parse(Contents.str());
  ASSERT_TRUE(Doc.has_value());
  EXPECT_TRUE(Doc->isArray());

  std::remove(JsonlPath.c_str());
  std::remove(ChromePath.c_str());
}

//===----------------------------------------------------------------------===//
// Stream / decision serialization and diffing
//===----------------------------------------------------------------------===//

static FeatureStream sampleStream() {
  FeatureStream S;
  S.Name = "sample";
  S.Kind = FeatureStream::GraphKind::Pipeline;
  S.MaxThreads = 6;
  S.PowerBudgetWatts = 120.0;
  S.Stages = {{"read", false}, {"work", true}};
  S.FusedStages = {{"fused", true}};
  ReplayStep Step;
  Step.Time = 0.5;
  Step.Features = {{"SystemPower", 80.0}, {"LiveContexts", 6.0}};
  Step.ExecTime = {0.1, 0.9};
  Step.Load = {2.0, 5.0};
  Step.FusedExecTime = {0.7};
  Step.FusedLoad = {3.0};
  S.Steps.push_back(Step);
  Step.Time = 1.0;
  Step.Features.clear();
  S.Steps.push_back(Step);
  return S;
}

TEST(ReplayIo, FeatureStreamRoundTrip) {
  const FeatureStream S = sampleStream();
  std::stringstream SS;
  writeFeatureStream(S, SS);

  std::string Error;
  std::optional<FeatureStream> Back = readFeatureStream(SS, &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->Name, S.Name);
  EXPECT_EQ(Back->Kind, S.Kind);
  EXPECT_EQ(Back->MaxThreads, S.MaxThreads);
  EXPECT_EQ(Back->PowerBudgetWatts, S.PowerBudgetWatts);
  ASSERT_EQ(Back->Stages.size(), 2u);
  EXPECT_EQ(Back->Stages[0].Name, "read");
  EXPECT_FALSE(Back->Stages[0].Parallel);
  ASSERT_EQ(Back->FusedStages.size(), 1u);
  ASSERT_EQ(Back->Steps.size(), 2u);
  EXPECT_EQ(Back->Steps[0].Features, S.Steps[0].Features);
  EXPECT_EQ(Back->Steps[0].ExecTime, S.Steps[0].ExecTime);
  EXPECT_EQ(Back->Steps[0].FusedLoad, S.Steps[0].FusedLoad);
  EXPECT_TRUE(Back->Steps[1].Features.empty());
}

TEST(ReplayIo, DecisionsRoundTripAndDiff) {
  ReplayDecision D1;
  D1.Step = 3;
  D1.Time = 1.5;
  D1.Config = "<(2, PAR)>";
  D1.TotalThreads = 2;
  D1.Budget = 8;
  D1.Extents = {2};
  ReplayDecision D2 = D1;
  D2.Step = 7;
  D2.Time = 3.5;
  D2.Config = "<(4, PAR)>";
  D2.TotalThreads = 4;
  D2.Extents = {4};

  std::stringstream SS;
  writeDecisions({D1, D2}, SS);
  std::optional<std::vector<ReplayDecision>> Back = readDecisions(SS);
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->size(), 2u);
  EXPECT_EQ((*Back)[0], D1);
  EXPECT_EQ((*Back)[1], D2);

  // Identical sequences: no report.
  EXPECT_FALSE(diffDecisions({D1, D2}, {D1, D2}).has_value());

  // A divergent decision names its index and both renderings.
  ReplayDecision Wrong = D2;
  Wrong.TotalThreads = 5;
  std::optional<std::string> Report = diffDecisions({D1, D2}, {D1, Wrong});
  ASSERT_TRUE(Report.has_value());
  EXPECT_NE(Report->find("decision 1"), std::string::npos);
  EXPECT_NE(Report->find("threads=4"), std::string::npos);
  EXPECT_NE(Report->find("threads=5"), std::string::npos);

  // Length mismatch reports the end of the shorter sequence.
  Report = diffDecisions({D1, D2}, {D1});
  ASSERT_TRUE(Report.has_value());
  EXPECT_NE(Report->find("end of sequence"), std::string::npos);
}

TEST(ReplayIo, FeatureStreamToleratesATornFinalRecord) {
  const FeatureStream S = sampleStream();
  std::stringstream Whole;
  writeFeatureStream(S, Whole);
  const std::string Text = Whole.str();

  // Chop the final record mid-line: the writer died there. The intact
  // prefix must load, with the torn tail reported.
  const size_t LastLine = Text.rfind('\n', Text.size() - 2);
  ASSERT_NE(LastLine, std::string::npos);
  std::stringstream Torn(Text.substr(0, LastLine + 1 + 20));
  std::string Error;
  bool TornTail = false;
  std::optional<FeatureStream> Back =
      readFeatureStream(Torn, &Error, &TornTail);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_TRUE(TornTail);
  EXPECT_EQ(Back->Steps.size(), S.Steps.size() - 1);

  // Corruption that is NOT the tail still fails the whole read: the
  // suffix after the bad line proves the file did not end there.
  std::stringstream Interior(std::string("garbage\n") + Text);
  TornTail = false;
  EXPECT_FALSE(readFeatureStream(Interior, &Error, &TornTail).has_value());
  EXPECT_FALSE(TornTail);
}

TEST(ReplayIo, DecisionsTolerateATornFinalRecord) {
  ReplayDecision D1;
  D1.Step = 1;
  D1.Config = "<(2, PAR)>";
  D1.TotalThreads = 2;
  D1.Extents = {2};
  ReplayDecision D2 = D1;
  D2.Step = 2;

  std::stringstream Whole;
  writeDecisions({D1, D2}, Whole);
  const std::string Text = Whole.str();
  const size_t LastLine = Text.rfind('\n', Text.size() - 2);
  ASSERT_NE(LastLine, std::string::npos);

  std::stringstream Torn(Text.substr(0, LastLine + 1 + 10));
  std::string Error;
  bool TornTail = false;
  std::optional<std::vector<ReplayDecision>> Back =
      readDecisions(Torn, &Error, &TornTail);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_TRUE(TornTail);
  ASSERT_EQ(Back->size(), 1u);
  EXPECT_EQ((*Back)[0], D1);
}

//===----------------------------------------------------------------------===//
// Replay harness + mechanism-context tracing
//===----------------------------------------------------------------------===//

TEST(ReplayHarness, RecordsFeatureReadsAndDecisions) {
  FeatureStream S;
  S.Name = "wqth-trace";
  S.Kind = FeatureStream::GraphKind::ServerNest;
  S.MaxThreads = 8;
  S.Stages = {{"server", true}};
  for (int I = 0; I != 3; ++I) {
    ReplayStep Step;
    Step.Time = 0.25 * (I + 1);
    Step.ExecTime = {1.0, 0.5};
    Step.Load = {2.0, 2.0};
    S.Steps.push_back(Step);
  }

  WqtHParams Params;
  WqtHMechanism Mech(Params);
  Tracer Trace(256);
  ReplayMechanismHarness Harness(S);
  const ReplayResult Result = Harness.run(Mech, &Trace);
  EXPECT_EQ(Result.InvalidProposals, 0u);
  // WQT-H proposes <(8, PAR)> immediately; the later steps repeat it.
  ASSERT_EQ(Result.Decisions.size(), 1u);
  EXPECT_EQ(Result.Decisions[0].Step, 0u);
  EXPECT_EQ(Result.Decisions[0].TotalThreads, 8u);

  // Every consult left a Decision record stamped with stream time; only
  // the first one is an accepted change (B = 1).
  std::vector<TraceRecord> Records = Trace.drain();
  std::vector<const TraceRecord *> Decisions;
  for (const TraceRecord &R : Records)
    if (R.Kind == TraceKind::Decision)
      Decisions.push_back(&R);
  ASSERT_EQ(Decisions.size(), 3u);
  EXPECT_EQ(Decisions[0]->Time, 0.25);
  EXPECT_EQ(Decisions[0]->B, 1.0);
  EXPECT_EQ(Decisions[1]->B, 0.0);
  EXPECT_EQ(Decisions[2]->B, 0.0);
}

TEST(MechanismContext, FeatureReadsAreTracedWithFallbacks) {
  FeatureRegistry Registry;
  Registry.registerFeature("LiveContexts", [] { return 5.0; });
  Tracer Trace(64);

  MechanismContext Ctx;
  Ctx.MaxThreads = 8;
  Ctx.Features = &Registry;
  Ctx.NowSeconds = 2.0;
  Ctx.Trace = &Trace;
  EXPECT_EQ(Ctx.feature("LiveContexts", 0.0), 5.0);
  EXPECT_EQ(Ctx.feature("SystemPower", 42.0), 42.0); // unregistered
  EXPECT_EQ(Ctx.effectiveThreads(), 5u);

  std::vector<TraceRecord> Records = Trace.drain();
  std::vector<const TraceRecord *> Reads;
  for (const TraceRecord &R : Records)
    if (R.Kind == TraceKind::FeatureRead)
      Reads.push_back(&R);
  ASSERT_GE(Reads.size(), 2u);
  EXPECT_EQ(Reads[0]->Name, "LiveContexts");
  EXPECT_EQ(Reads[0]->A, 5.0);
  EXPECT_EQ(Reads[0]->Time, 2.0);
  EXPECT_EQ(Reads[1]->Name, "SystemPower");
  EXPECT_EQ(Reads[1]->A, 42.0);
}

TEST(FeatureRegistryTrace, FreshSamplesOnly) {
  FeatureRegistry Registry;
  int Calls = 0;
  Registry.registerFeature("Queue", [&Calls] {
    ++Calls;
    return static_cast<double>(Calls);
  }, /*MinSampleIntervalSeconds=*/1.0);
  Tracer Trace(64);
  Registry.setTracer(&Trace);

  EXPECT_TRUE(Registry.getValue("Queue", 0.0).has_value());
  // Within the sampling interval: served from cache, no new sample.
  EXPECT_TRUE(Registry.getValue("Queue", 0.5).has_value());
  EXPECT_TRUE(Registry.getValue("Queue", 1.5).has_value());
  Registry.setTracer(nullptr);

  std::vector<TraceRecord> Records = Trace.drain();
  size_t Samples = 0;
  for (const TraceRecord &R : Records)
    if (R.Kind == TraceKind::FeatureSample)
      ++Samples;
  EXPECT_EQ(Samples, 2u);
  EXPECT_EQ(Calls, 2);
}

TEST(TimeSeriesTrace, AppendToEmitsCounters) {
  TimeSeries Series("throughput");
  Series.addPoint(1.0, 10.0);
  Series.addPoint(2.0, 12.0);
  Tracer Trace(64);
  Series.appendTo(Trace);

  std::vector<TraceRecord> Records = Trace.drain();
  ASSERT_EQ(Records.size(), 2u);
  EXPECT_EQ(Records[0].Kind, TraceKind::Counter);
  EXPECT_EQ(Records[0].Name, "throughput");
  EXPECT_EQ(Records[0].Time, 1.0);
  EXPECT_EQ(Records[1].A, 12.0);
}

//===----------------------------------------------------------------------===//
// Executive + simulator wiring
//===----------------------------------------------------------------------===//

TEST(ExecutiveTrace, TaskLifecycleLandsInTraceFile) {
  const std::string Path = ::testing::TempDir() + "dope_exec_trace.jsonl";
  {
    TaskGraph Graph;
    std::atomic<int> Remaining{50};
    TaskFn Fn = [&](TaskRuntime &RT) {
      if (RT.begin() == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      if (Remaining.fetch_sub(1) <= 0)
        return TaskStatus::Finished;
      if (RT.end() == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      return TaskStatus::Executing;
    };
    Task *Work = Graph.createTask("work", Fn, LoadFn(),
                                  Graph.parDescriptor());
    ParDescriptor *Root = Graph.createRegion({Work});

    DopeOptions Opts;
    Opts.MaxThreads = 2;
    Opts.TraceFile = Path;
    RegionConfig Config;
    TaskConfig TC;
    TC.Extent = 2;
    Config.Tasks.push_back(TC);
    Opts.InitialConfig = Config;
    std::unique_ptr<Dope> D = Dope::create(Root, std::move(Opts));
    D->wait();
  } // destructor flushes the trace

  std::ifstream IS(Path);
  ASSERT_TRUE(IS.good());
  std::string Error;
  std::optional<std::vector<TraceRecord>> Records =
      readTraceJsonl(IS, &Error);
  ASSERT_TRUE(Records.has_value()) << Error;
  size_t Begins = 0, Ends = 0;
  for (const TraceRecord &R : *Records) {
    Begins += R.Kind == TraceKind::TaskBegin;
    Ends += R.Kind == TraceKind::TaskEnd;
    if (R.Kind == TraceKind::TaskBegin || R.Kind == TraceKind::TaskEnd) {
      EXPECT_EQ(R.Name, "work");
    }
  }
  EXPECT_GT(Begins, 0u);
  EXPECT_GT(Ends, 0u);
  std::remove(Path.c_str());
}

TEST(SimTrace, NestSimRecordsDecisionsInVirtualTime) {
  NestAppModel App;
  App.SeqServiceSeconds = 0.4;
  App.Curve = SpeedupCurve(0.05, 0.0);

  NestSimOptions Opts;
  Opts.Contexts = 8;
  Opts.NumTransactions = 120;
  Opts.Seed = 7;
  Tracer Trace(1 << 16);
  Opts.TraceSink = &Trace;

  NestServerSim Sim(App, Opts);
  WqtHParams Params;
  Params.MMax = 4;
  WqtHMechanism Mech(Params);
  const NestSimResult Result = Sim.run(&Mech, 8, 1);

  // The run restored the tracer's native clock and the active slot.
  EXPECT_EQ(Tracer::active(), nullptr);

  std::vector<TraceRecord> Records = Trace.drain();
  size_t Decisions = 0, Queues = 0, Reconfigs = 0;
  double LastTime = 0.0;
  for (const TraceRecord &R : Records) {
    Decisions += R.Kind == TraceKind::Decision;
    Queues += R.Kind == TraceKind::QueueDepth;
    Reconfigs += R.Kind == TraceKind::Reconfig;
    EXPECT_GE(R.Time, LastTime);
    LastTime = R.Time;
  }
  EXPECT_GT(Decisions, 0u);
  EXPECT_GT(Queues, 0u);
  EXPECT_EQ(Reconfigs, Result.Reconfigurations);
  // Virtual timestamps: bounded by the simulated duration.
  EXPECT_LE(LastTime, Result.TotalSeconds + 1e-9);
}

TEST(SimTrace, PipelineSimRecordsDecisionsInVirtualTime) {
  PipelineAppModel App;
  App.Stages = {{"in", true, 0.05, 0.1},
                {"work", true, 0.4, 0.1},
                {"out", true, 0.05, 0.1}};

  PipelineSimOptions Opts;
  Opts.Contexts = 8;
  Opts.NumItems = 300;
  Opts.Seed = 11;
  Tracer Trace(1 << 16);
  Opts.TraceSink = &Trace;

  PipelineSim Sim(App, Opts);
  TbfMechanism Mech((TbfParams()));
  const PipelineSimResult Result = Sim.run(&Mech);
  EXPECT_EQ(Tracer::active(), nullptr);

  std::vector<TraceRecord> Records = Trace.drain();
  size_t Decisions = 0, Queues = 0, Reconfigs = 0;
  for (const TraceRecord &R : Records) {
    Decisions += R.Kind == TraceKind::Decision;
    Queues += R.Kind == TraceKind::QueueDepth;
    Reconfigs += R.Kind == TraceKind::Reconfig;
  }
  EXPECT_GT(Decisions, 0u);
  EXPECT_GT(Queues, 0u);
  EXPECT_EQ(Reconfigs, Result.Reconfigurations);
}

//===- apps/RecursiveApps.h - Native recursive-tree examples ---*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Native recursive divide-and-conquer examples on the work-stealing
/// TreeEngine (core/TaskTree.h) — the app-split style, where the body
/// forks data-dependent subranges through TreeContext::spawn and uses
/// TreeContext::grain() as its sequential-cutoff threshold:
///
///   * parallelQuicksort — Hoare-partition quicksort over a shared
///     vector; the larger partition is forked (that is what thieves
///     want), the smaller is processed in place;
///   * parallelTreeSearch — exhaustive search of an implicit binary
///     tree of hashed node scores: subtrees at most grain nodes run
///     sequentially, larger ones fork their left child's subtree and
///     descend right.
///
/// Both produce results that are independent of the steal schedule
/// (sortedness / commutative reductions), so tests verify that the
/// runtime never loses or duplicates a task at any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_APPS_RECURSIVEAPPS_H
#define DOPE_APPS_RECURSIVEAPPS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dope {

/// Deterministic shuffled input for the sort examples.
std::vector<uint32_t> makeSortInput(size_t N, uint64_t Seed);

/// Sorts \p Data in place on the work-stealing tree runtime with
/// \p Workers OS threads and sequential cutoff \p Grain elements.
void parallelQuicksort(std::vector<uint32_t> &Data, unsigned Workers,
                       unsigned Grain, uint64_t Seed = 0x9e3779b9ull);

/// Result of a tree search: commutative reductions, so identical for
/// every steal schedule.
struct TreeSearchResult {
  /// Nodes whose score passed the match filter.
  uint64_t Matches = 0;
  /// The minimum score over the whole tree...
  uint64_t BestScore = ~0ull;
  /// ...and the smallest node id achieving it (deterministic tie-break).
  uint64_t BestNode = 0;
};

/// Searches the implicit complete binary tree of \p Depth levels (nodes
/// 1 .. 2^Depth - 1, score = mix(Seed, node)) with \p Workers threads;
/// subtrees of at most \p Grain nodes run sequentially.
TreeSearchResult parallelTreeSearch(unsigned Depth, uint64_t Seed,
                                    unsigned Workers, unsigned Grain);

/// Single-threaded oracle for parallelTreeSearch (tests).
TreeSearchResult sequentialTreeSearch(unsigned Depth, uint64_t Seed);

} // namespace dope

#endif // DOPE_APPS_RECURSIVEAPPS_H

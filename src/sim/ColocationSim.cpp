//===- sim/ColocationSim.cpp - Multi-tenant platform simulator -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Execution model (see DESIGN.md §14): the simulation runs on the
// conservative sharded engine. Tenants are partitioned round-robin
// across shards; each shard advances the fixed-step fluid model for its
// tenants through one arbiter epoch (the lookahead window), then all
// shards meet at a barrier whose serial section is the *coordinator*:
// it alone owns the arbiter, the protocol journal, the fault injector,
// and the outage schedule, and it processes tenants in spec order — so
// the decision stream is byte-identical to the historical sequential
// loop no matter how many shards ran the windows.
//
// Cross-tenant coupling inside a window is limited to the per-step
// contention factor, which is a pure function of (a) the control state
// every tenant had at the last barrier (granted threads, eviction,
// self-floor) and (b) the statically known crash schedule. Each shard
// therefore recomputes the global thread sum locally from the published
// control mirror without communicating. Everything else crosses shards
// only through mailboxes collected at the barrier in canonical
// (time, source shard, sequence) order.
//
//===----------------------------------------------------------------------===//

#include "sim/ColocationSim.h"

#include "sim/CrossShardMailbox.h"
#include "sim/ShardedSim.h"
#include "support/Random.h"
#include "support/RingDeque.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

using namespace dope;

const char *dope::toString(ColocationPolicy Policy) {
  switch (Policy) {
  case ColocationPolicy::Arbiter:
    return "arbiter";
  case ColocationPolicy::StaticSplit:
    return "static-split";
  case ColocationPolicy::Oversubscribed:
    return "oversubscribed";
  }
  return "?";
}

namespace {

/// Pipeline throughput at \p K threads: greedy replication — grow the
/// bottleneck parallel stage until threads run out; below one thread
/// per stage the pipeline time-multiplexes and throughput is
/// CPU-bound at K / sum(s_i).
double pipelineCapacity(const PipelineAppModel &M, unsigned K) {
  if (K == 0 || M.Stages.empty())
    return 0.0;
  double TotalService = 0.0;
  for (const PipelineStageSpec &S : M.Stages)
    TotalService += S.ServiceSeconds;
  if (TotalService <= 0.0)
    return 0.0;
  const unsigned NumStages = static_cast<unsigned>(M.Stages.size());
  if (K < NumStages) {
    // Time-multiplexed: CPU-bound at K / sum(s_i), but never above what
    // the one-replica-per-stage pipeline sustains — keeps capacity
    // monotone across the K == NumStages boundary.
    double MinStageRate = std::numeric_limits<double>::infinity();
    for (const PipelineStageSpec &S : M.Stages)
      MinStageRate = std::min(MinStageRate, 1.0 / S.ServiceSeconds);
    return std::min(static_cast<double>(K) / TotalService, MinStageRate);
  }

  std::vector<unsigned> Extent(M.Stages.size(), 1);
  for (unsigned Spare = K - NumStages; Spare != 0; --Spare) {
    size_t Bottleneck = M.Stages.size();
    double WorstRate = std::numeric_limits<double>::infinity();
    for (size_t I = 0; I != M.Stages.size(); ++I) {
      if (!M.Stages[I].Parallel)
        continue;
      const double Rate = Extent[I] / M.Stages[I].ServiceSeconds;
      if (Rate < WorstRate) {
        WorstRate = Rate;
        Bottleneck = I;
      }
    }
    if (Bottleneck == M.Stages.size())
      break; // all stages sequential; extra threads are useless
    ++Extent[Bottleneck];
  }
  double Rate = std::numeric_limits<double>::infinity();
  for (size_t I = 0; I != M.Stages.size(); ++I)
    Rate = std::min(Rate, Extent[I] / M.Stages[I].ServiceSeconds);
  return Rate;
}

/// Nested-parallel server throughput at \p K threads: pick the inner
/// extent m maximizing (K / m) * S(m) concurrent streams of 1/T1 each.
double nestCapacity(const NestAppModel &M, unsigned K, unsigned *BestM) {
  if (K == 0 || M.SeqServiceSeconds <= 0.0)
    return 0.0;
  double Best = 0.0;
  unsigned BestExtent = 1;
  for (unsigned Mi = 1; Mi <= K; ++Mi) {
    const double Streams = static_cast<double>(K) / Mi;
    const double Rate =
        Streams * M.Curve.speedup(Mi) / M.SeqServiceSeconds;
    if (Rate > Best) {
      Best = Rate;
      BestExtent = Mi;
    }
  }
  if (BestM)
    *BestM = BestExtent;
  return Best;
}

double percentileOf(std::vector<double> Values, double Q) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  const double Pos = Q * static_cast<double>(Values.size() - 1);
  const size_t Lo = static_cast<size_t>(Pos);
  const size_t Hi = std::min(Lo + 1, Values.size() - 1);
  const double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

/// Shard-local state of one tenant. Everything here is touched only by
/// the owning shard's worker between barriers.
struct TenantRuntime {
  const ColocationTenantSpec *Spec = nullptr;
  double ServiceCredit = 0.0;
  double PausedUntil = 0.0;
  RingDeque<double> Queue; // arrival timestamps
  Rng Arrivals{1};

  // Per-epoch telemetry window.
  uint64_t WindowArrived = 0;
  uint64_t WindowCompleted = 0;
  std::vector<double> WindowResponses;

  /// Process died (statically scheduled); the owning shard flips this
  /// at the crossing step, the coordinator mirrors it for journaling.
  bool Crashed = false;
  uint64_t EpochIndex = 0;

  TenantStats Stats;

  // Cached per-(policy, lease) capacity/latency.
  double Capacity = 0.0;
  double Latency = 0.0;
};

/// Control-plane state of one tenant, published by the coordinator at
/// barriers and read-only to every shard during a window. This mirror —
/// not the shard-local runtime — is what contention sums read, so the
/// sum is identical no matter which shard computes it.
struct TenantControl {
  unsigned Granted = 0;
  bool Evicted = false;   // containment killed it; never comes back
  bool SelfFloor = false; // lease expired while alive: serving at floor
};

/// Shard → coordinator: one tenant's epoch telemetry.
struct EpochReport {
  uint32_t SpecIndex = 0;
  TenantSample Sample;
  /// Tenant was alive and non-silent this epoch; the coordinator still
  /// owns the injector's heartbeat-drop draw (shared RNG stream, spec
  /// order) so the draw sequence matches the sequential sim exactly.
  bool SentCandidate = false;
};

/// Coordinator → shard: re-derive the tenant's cached curves from the
/// updated control mirror, and apply the lease-change side effects the
/// sequential sim performed inline.
struct TenantDirective {
  uint32_t SpecIndex = 0;
  bool CountLeaseChange = false;
  bool Pause = false;
};

/// One run of the colocation model on the sharded engine. Borrows specs
/// and options from ColocationSim; lives for a single run().
class ColocationEngine {
public:
  ColocationEngine(const std::vector<ColocationTenantSpec> &Specs,
                   const ColocationSimOptions &Opts)
      : Specs(Specs), Opts(Opts), N(Specs.size()),
        Shards(std::max(1u, Opts.Shards)), Trace(Opts.TraceSink),
        Dt(Opts.StepSeconds),
        OversubFactor(1.0 + Opts.OversubPenalty *
                                (static_cast<double>(N) - 1.0)),
        Reports(Shards) {
    ArbOpts = Opts.Arbiter;
    ArbOpts.TotalThreads = Opts.Contexts;
    ArbOpts.Trace = Trace;
    EpochLen = ArbOpts.EpochSeconds;
  }

  ColocationSimResult run();

private:
  //===--------------------------------------------------------------===//
  // Shared read-only helpers (pure functions of published state)
  //===--------------------------------------------------------------===//

  bool crashedAt(size_t I, double StepEnd) const {
    const double At = Specs[I].Misbehavior.CrashSeconds;
    return At >= 0.0 && StepEnd > At;
  }

  /// Lease-derived thread demand ignoring liveness.
  unsigned baseUsed(size_t I) const {
    unsigned Base = Control[I].Granted;
    if (Base == 0 && Control[I].SelfFloor)
      Base = std::max(1u, Specs[I].Tenant.MinThreads);
    if (Base > 0)
      Base += Specs[I].Misbehavior.EnvelopeViolationThreads;
    return Base;
  }

  /// Threads tenant I occupies during the step ending at \p StepEnd:
  /// zero once dead or evicted; the self-preservation floor while its
  /// lease is expired but the process lives; its violation surplus on
  /// top of any live lease. Usable for *any* tenant from *any* shard:
  /// liveness comes from the static crash schedule, everything else
  /// from the barrier-published control mirror.
  unsigned usedThreadsAt(size_t I, double StepEnd) const {
    if (Control[I].Evicted || crashedAt(I, StepEnd))
      return 0;
    return baseUsed(I);
  }

  /// Same, from the owning shard's live crash flag (valid only on the
  /// owner between the crash transition and the next barrier).
  unsigned usedThreadsLive(size_t I) const {
    if (Run[I].Crashed || Control[I].Evicted)
      return 0;
    return baseUsed(I);
  }

  /// Same, from the coordinator's crash mirror (valid inside the serial
  /// section, where the mirror has replayed the closing window).
  unsigned usedThreadsCoord(size_t I) const {
    if (CrashedMirror[I] || Control[I].Evicted)
      return 0;
    return baseUsed(I);
  }

  /// Serial-section publish of the contention inputs for the opening
  /// window (see PublishedTotalUsed). Equivalent to summing
  /// usedThreadsAt over all tenants at any step of the window: a
  /// tenant already dead by the mirror (or evicted) is excluded
  /// outright, and one whose crash lies ahead contributes until the
  /// first step with StepEnd > CrashSeconds — exactly crashedAt's
  /// strict crossing — via the sorted pending list.
  void publishContention() {
    unsigned Total = 0;
    PendingCrashes.clear();
    for (size_t I = 0; I != N; ++I) {
      if (Control[I].Evicted || CrashedMirror[I])
        continue;
      const unsigned Used = baseUsed(I);
      Total += Used;
      const double At = Specs[I].Misbehavior.CrashSeconds;
      if (At >= 0.0 && Used > 0)
        PendingCrashes.push_back({At, Used});
    }
    std::sort(PendingCrashes.begin(), PendingCrashes.end());
    PublishedTotalUsed = Total;
  }

  void refreshCurves(size_t I) {
    TenantRuntime &T = Run[I];
    const unsigned Used = usedThreadsLive(I);
    T.Capacity =
        Used == 0 ? 0.0 : ColocationSim::capacity(*T.Spec, Used);
    T.Latency = ColocationSim::serviceLatency(*T.Spec, std::max(1u, Used));
    if (Opts.Policy == ColocationPolicy::Oversubscribed) {
      T.Capacity /= OversubFactor;
      T.Latency *= static_cast<double>(N) * OversubFactor;
    }
  }

  //===--------------------------------------------------------------===//
  // Shard side: one epoch window of fluid steps
  //===--------------------------------------------------------------===//

  void runShardEpoch(ShardContext &Ctx);
  /// Advances every owned tenant of \p Shard through the step ending at
  /// \p StepEnd. Crash transitions and the contention scale are handled
  /// by the caller's window loop, which hoists them off the per-step
  /// path.
  void stepShard(unsigned Shard, double StepEnd, double Contention);

  //===--------------------------------------------------------------===//
  // Coordinator side: the barrier serial section
  //===--------------------------------------------------------------===//

  bool coordinatorBarrier();
  void applyChanges(const std::vector<LeaseChange> &Changes, double Now);
  void restartArbiter(double Now);

  void journalRecord(double Time, TraceKind Kind, const std::string &Name,
                     double A, double B, std::string Detail) {
    TraceRecord R;
    R.Time = Time;
    R.Kind = Kind;
    R.Name = Name;
    R.A = A;
    R.B = B;
    R.Detail = std::move(Detail);
    Result.ProtocolJournal.push_back(std::move(R));
  }

  void setup();

  //===--------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------===//

  const std::vector<ColocationTenantSpec> &Specs;
  const ColocationSimOptions &Opts;
  const size_t N;
  const unsigned Shards;
  Tracer *Trace;
  const double Dt;
  double EpochLen = 0.0;
  const double OversubFactor;
  ArbiterOptions ArbOpts;

  // Partition: spec index -> owning shard, and the inverse lists.
  std::vector<uint32_t> OwnerOf;
  std::vector<std::vector<uint32_t>> Owned;

  /// Per shard: any owned tenant carries a crash schedule. Lets the
  /// window loop skip the per-step crash scan entirely in the common
  /// all-honest case.
  std::vector<char> CrashWatch;

  /// Barrier-published contention inputs: the all-tenant used-thread
  /// sum as of the opening window, plus the (time, contribution) of
  /// every still-alive tenant whose crash schedule lies ahead, sorted
  /// by time. Shards derive the step's contention from these in O(own
  /// pending crossings) instead of rescanning all N tenants — the scan
  /// happens once per epoch in the serial section, not once per shard.
  unsigned PublishedTotalUsed = 0;
  std::vector<std::pair<double, unsigned>> PendingCrashes;

  // Shard-local tenant state (indexed by spec; each entry touched only
  // by its owner between barriers) and the published control mirror
  // (written only in the serial section).
  std::vector<TenantRuntime> Run;
  std::vector<TenantControl> Control;

  /// Per-shard window clock. Every shard advances the same float
  /// accumulators (Now += Dt, NextEpoch += EpochLen) from zero, so step
  /// and boundary times are bit-identical across shard counts.
  struct ShardClock {
    double Now = 0.0;
    double NextEpoch = 0.0;
    bool Done = false;
    uint64_t SimEvents = 0;

    /// Cached contention sum (all-tenant used threads). The sum is a
    /// pure step function of time — it moves only when a crash schedule
    /// crosses or the barrier republishes the control mirror — so each
    /// shard recomputes the O(N) scan only when its step passes
    /// UsedValidUntil instead of at every step. Keeping shards at
    /// O(own tenants) per step is what makes the 8-shard configuration
    /// scale (bench shard_scaling.speedup_8_over_1).
    unsigned TotalUsedCache = 0;
    double UsedValidUntil = -1.0;
    /// Contention scale derived from TotalUsedCache; refreshed on the
    /// same cadence.
    double Contention = 1.0;
  };
  std::vector<ShardClock> Clocks;

  // Mailboxes: telemetry up, lease directives down.
  CrossShardMailbox<EpochReport> Reports;
  std::vector<std::unique_ptr<CrossShardMailbox<TenantDirective>>> Directives;

  // Coordinator-only state (serial section + pre/post-run setup).
  std::unique_ptr<Arbiter> Arb;
  std::vector<TenantId> Ids;
  std::vector<char> CrashedMirror; // journal-order crash flags
  double CoordNow = 0.0;
  double NextEpoch = 0.0;
  uint64_t TotalLeaseChanges = 0;
  bool ArbKilled = false;
  bool ArbRestarted = false;
  std::string SnapshotJson; // taken at kill time for Snapshot restarts
  ColocationSimResult Result;
};

void ColocationEngine::setup() {
  OwnerOf.resize(N);
  Owned.resize(Shards);
  for (size_t I = 0; I != N; ++I) {
    OwnerOf[I] = static_cast<uint32_t>(I % Shards);
    Owned[OwnerOf[I]].push_back(static_cast<uint32_t>(I));
  }
  CrashWatch.assign(Shards, 0);
  for (size_t I = 0; I != N; ++I)
    if (Specs[I].Misbehavior.CrashSeconds >= 0.0)
      CrashWatch[OwnerOf[I]] = 1;
  Run.resize(N);
  Control.resize(N);
  Ids.resize(N, 0);
  CrashedMirror.assign(N, 0);
  Clocks.resize(Shards);
  Directives.reserve(Shards);
  for (unsigned S = 0; S != Shards; ++S)
    Directives.emplace_back(
        std::make_unique<CrossShardMailbox<TenantDirective>>(1));

  if (Opts.Policy == ColocationPolicy::Arbiter)
    Arb = std::make_unique<Arbiter>(ArbOpts);

  for (size_t I = 0; I != N; ++I) {
    TenantRuntime &T = Run[I];
    T.Spec = &Specs[I];
    T.Arrivals = Rng(Opts.Seed + 0x9e37 * (I + 1));
    T.Stats.Name = Specs[I].Tenant.Name;
    T.Stats.LatencySensitive =
        Specs[I].Tenant.Goal == TenantGoal::ResponseTime;
    T.Stats.Weight = Specs[I].Tenant.Weight;
    T.Stats.SloSeconds = Specs[I].Tenant.SloSeconds;

    switch (Opts.Policy) {
    case ColocationPolicy::Arbiter:
      Ids[I] = Arb->addTenant(Specs[I].Tenant, 0.0);
      break;
    case ColocationPolicy::StaticSplit: {
      const unsigned Equal =
          std::max(1u, Opts.Contexts / static_cast<unsigned>(N));
      Control[I].Granted =
          I < Opts.StaticShares.size() && Opts.StaticShares[I] > 0
              ? Opts.StaticShares[I]
              : Equal;
      break;
    }
    case ColocationPolicy::Oversubscribed:
      // Fair-share slice of the thrashing machine.
      Control[I].Granted =
          std::max(1u, Opts.Contexts / static_cast<unsigned>(N));
      break;
    }
  }
  // Read seats only after every tenant has joined — each join re-splits
  // the pool, so earlier reads would hold stale (overcommitted) grants.
  if (Opts.Policy == ColocationPolicy::Arbiter) {
    for (size_t I = 0; I != N; ++I) {
      Control[I].Granted = Arb->leaseOf(Ids[I]).Threads;
      journalRecord(0.0, TraceKind::LeaseGrant, Run[I].Stats.Name,
                    static_cast<double>(Control[I].Granted), 0.0, "join");
    }
  }
  for (size_t I = 0; I != N; ++I)
    refreshCurves(I);
  if (Opts.Policy == ColocationPolicy::Arbiter) {
    AllocationSample Seat;
    Seat.Time = 0.0;
    for (size_t I = 0; I != N; ++I)
      Seat.Granted.push_back(Control[I].Granted);
    Result.AllocationTimeline.push_back(std::move(Seat));
  }

  NextEpoch = EpochLen;
  for (ShardClock &C : Clocks)
    C.NextEpoch = EpochLen;
  publishContention();
}

void ColocationEngine::runShardEpoch(ShardContext &Ctx) {
  const unsigned S = Ctx.shard();
  ShardClock &C = Clocks[S];

  // Deliver the previous barrier's lease directives before the window
  // opens — exactly where the sequential loop applied them.
  for (auto &Env : Directives[S]->collect()) {
    const TenantDirective &D = Env.Payload;
    TenantRuntime &T = Run[D.SpecIndex];
    if (D.Pause)
      T.PausedUntil = Env.Time + Opts.ReconfigPauseSeconds;
    if (D.CountLeaseChange)
      ++T.Stats.LeaseChanges;
    refreshCurves(D.SpecIndex);
  }
  // The barrier may have republished the control mirror; the contention
  // cache must not carry across it.
  C.UsedValidUntil = -1.0;
  if (C.Done)
    return;

  // One window of fixed steps. The loop structure (duration check
  // before the step, epoch check after) mirrors the sequential loop so
  // the step grid and boundary decisions are float-identical. The step
  // itself is a direct call: routing it through the shard's event queue
  // (schedule + wheel advance + dispatch per step) is a fixed per-step
  // cost each shard pays in full, and it was the largest remaining
  // O(shards) term in the scaling bench. The queue is drained only when
  // a model actually scheduled something into it.
  for (;;) {
    if (C.Now >= Opts.DurationSeconds - 1e-12) {
      C.Done = true;
      return; // mid-window end: no epoch processing, like the old loop
    }
    const double StepEnd = C.Now + Dt;

    // Own-tenant crash transitions (capacity only; the coordinator
    // emits the journal/trace records at the barrier, in spec order).
    // Skipped wholesale when no owned tenant has a crash schedule.
    if (CrashWatch[S])
      for (uint32_t I : Owned[S]) {
        TenantRuntime &T = Run[I];
        if (!T.Crashed && crashedAt(I, StepEnd)) {
          T.Crashed = true;
          refreshCurves(I);
        }
      }

    // The step's contention scale: when misbehaving tenants occupy
    // more contexts than exist, everyone's capacity shrinks pro rata.
    // Every shard derives the same global sum from the barrier's
    // published contention inputs (publishContention): the serial
    // section pays the O(all tenants) scan once per epoch, and each
    // shard just folds in any crash crossings. The value is cached
    // with an exact validity horizon — for any StepEnd' <=
    // UsedValidUntil no pending crossing (strict StepEnd >
    // CrashSeconds) can have fired, and the published inputs are
    // fixed until NextEpoch. The reset above forces a roll on the
    // window's first step, so Contention is always fresh before use.
    if (StepEnd > C.UsedValidUntil) {
      unsigned Total = PublishedTotalUsed;
      double Valid = C.NextEpoch;
      for (const auto &Pending : PendingCrashes) {
        if (StepEnd > Pending.first) {
          Total -= Pending.second;
        } else {
          Valid = std::min(Valid, Pending.first);
          break;
        }
      }
      C.TotalUsedCache = Total;
      C.UsedValidUntil = Valid;
      C.Contention = Total > Opts.Contexts
                         ? static_cast<double>(Opts.Contexts) / Total
                         : 1.0;
    }

    stepShard(S, StepEnd, C.Contention);
    if (!Ctx.events().empty())
      Ctx.runEventsUntil(StepEnd);
    C.Now += Dt;
    if (StepEnd + 1e-12 >= C.NextEpoch)
      break;
  }

  // Epoch boundary: post this shard's telemetry and reset windows. The
  // coordinator journals, feeds the arbiter, and rebalances in spec
  // order at the barrier.
  const double E = C.NextEpoch;
  for (uint32_t I : Owned[S]) {
    TenantRuntime &T = Run[I];
    const TenantMisbehavior &M = T.Spec->Misbehavior;
    EpochReport R;
    R.SpecIndex = I;
    if (Opts.Policy == ColocationPolicy::Arbiter) {
      // GrantedThreads is filled by the coordinator: the boundary's
      // outage kill/restart runs before sampling and can change grants,
      // and the sequential sim sampled the post-transition value.
      R.Sample.Time = E;
      R.Sample.Throughput = static_cast<double>(T.WindowCompleted) / EpochLen;
      R.Sample.OfferedRate = static_cast<double>(T.WindowArrived) / EpochLen;
      R.Sample.P95ResponseSeconds = percentileOf(T.WindowResponses, 0.95);
      R.Sample.QueueDepth = static_cast<double>(T.Queue.size());
      if (M.byzantineAt(E)) {
        R.Sample.Throughput *= M.ReportedRateFactor;
        R.Sample.OfferedRate *= M.ReportedRateFactor;
        if (M.NonMonotoneClock && (T.EpochIndex & 1))
          R.Sample.Time = E - 1.5 * EpochLen;
      }
      R.SentCandidate = !T.Crashed && !Control[I].Evicted && !M.silentAt(E);
    } else {
      R.Sample.QueueDepth = static_cast<double>(T.Queue.size());
    }
    Reports.post(S, E, std::move(R));
    T.WindowArrived = 0;
    T.WindowCompleted = 0;
    T.WindowResponses.clear();
    ++T.EpochIndex;
  }
  C.NextEpoch += EpochLen;
}

void ColocationEngine::stepShard(unsigned Shard, double StepEnd,
                                 double Contention) {
  ShardClock &C = Clocks[Shard];
  const double Now = C.Now; // step begin, accumulated — not StepEnd - Dt
  const bool Measured = StepEnd > Opts.WarmupSeconds;

  for (uint32_t I : Owned[Shard]) {
    TenantRuntime &T = Run[I];
    const ColocationTenantSpec &S = *T.Spec;
    ++C.SimEvents; // the tenant-step update itself

    // Arrivals over this step (users keep sending to dead tenants).
    const double Load = S.ArrivalSchedule.phaseCount() == 0
                            ? 1.0
                            : S.ArrivalSchedule.loadFactorAt(Now);
    const double Rate = S.ArrivalRate * Load;
    const uint64_t Arrived =
        Rate > 0.0 ? T.Arrivals.poisson(Rate * Dt) : 0;
    C.SimEvents += Arrived;
    for (uint64_t A = 0; A != Arrived; ++A) {
      ++T.WindowArrived;
      if (Measured)
        ++T.Stats.Arrived;
      if (S.AdmissionLimit != 0 && T.Queue.size() >= S.AdmissionLimit) {
        if (Measured)
          ++T.Stats.Shed;
        continue;
      }
      T.Queue.push_back(Now);
    }

    // Service: fluid capacity accrues credit; whole items complete.
    const double Cap =
        (StepEnd <= T.PausedUntil ? 0.0 : T.Capacity) * Contention;
    T.ServiceCredit += Cap * Dt;
    while (T.ServiceCredit >= 1.0 && !T.Queue.empty()) {
      T.ServiceCredit -= 1.0;
      const double Arrival = T.Queue.front();
      T.Queue.pop_front();
      const double Completion = StepEnd + T.Latency;
      const double Response = Completion - Arrival;
      ++T.WindowCompleted;
      ++C.SimEvents;
      T.WindowResponses.push_back(Response);
      if (Measured) {
        ++T.Stats.Completed;
        T.Stats.Responses.recordTransaction(Arrival, StepEnd, Completion);
        if (T.Stats.SloSeconds > 0.0 && Response <= T.Stats.SloSeconds)
          ++T.Stats.SloHits;
        else if (T.Stats.SloSeconds <= 0.0)
          ++T.Stats.SloHits; // no SLO: every completion counts
      }
    }
    if (T.Queue.empty())
      T.ServiceCredit = std::min(T.ServiceCredit, 1.0);

    T.Stats.ThreadSeconds += usedThreadsLive(I) * Dt;
  }
}

bool ColocationEngine::coordinatorBarrier() {
  // Replay the window's step grid for crash journaling: the same float
  // accumulation and loop structure as the shards (and the historical
  // sequential loop), so crossings land on identical steps and the
  // journal keeps its (crossing step, spec index) order.
  bool Crossed = false;
  while (CoordNow < Opts.DurationSeconds - 1e-12) {
    const double StepEnd = CoordNow + Dt;
    for (size_t I = 0; I != N; ++I) {
      if (!CrashedMirror[I] && crashedAt(I, StepEnd)) {
        CrashedMirror[I] = 1;
        const double At = Specs[I].Misbehavior.CrashSeconds;
        journalRecord(At, TraceKind::Fault, Specs[I].Tenant.Name, 0.0, 0.0,
                      "tenant-crash");
        if (Trace)
          Trace->recordAt(At, TraceKind::Fault,
                          "crash:" + Specs[I].Tenant.Name);
      }
    }
    CoordNow += Dt;
    if (StepEnd + 1e-12 >= NextEpoch) {
      Crossed = true;
      break;
    }
  }
  if (!Crossed)
    return false; // duration exhausted mid-window: the run is over

  const double E = NextEpoch;

  // Arbiter outage transitions happen on the boundary, before any
  // reporting: a killed arbiter hears nothing this epoch.
  if (Opts.Policy == ColocationPolicy::Arbiter && Opts.Outage.enabled()) {
    if (!ArbKilled && E + 1e-12 >= Opts.Outage.KillSeconds) {
      SnapshotJson = Arb->snapshot().dump();
      Arb.reset();
      ArbKilled = true;
      journalRecord(E, TraceKind::Fault, "arbiter", 0.0, 0.0, "kill");
      if (Trace)
        Trace->recordAt(E, TraceKind::Fault, "arbiter-kill");
    }
    if (ArbKilled && !ArbRestarted && Opts.Outage.RestartSeconds >= 0.0 &&
        E + 1e-12 >= Opts.Outage.RestartSeconds) {
      restartArbiter(E);
      ArbRestarted = true;
    }
  }
  const bool ArbUp =
      Opts.Policy == ColocationPolicy::Arbiter && Arb != nullptr;

  // Collect every shard's telemetry (canonical mailbox order), then
  // process tenants in spec order — the order the sequential loop used,
  // and the order the injector's shared RNG stream must be consumed in.
  std::vector<ShardEnvelope<EpochReport>> Envs = Reports.collect();
  std::vector<const EpochReport *> BySpec(N, nullptr);
  for (const ShardEnvelope<EpochReport> &Env : Envs)
    BySpec[Env.Payload.SpecIndex] = &Env.Payload;

  for (size_t I = 0; I != N; ++I) {
    const EpochReport *R = BySpec[I];
    if (!R)
      throw std::logic_error(
          "ColocationSim: missing epoch report for tenant " +
          Specs[I].Tenant.Name);
    if (Opts.Policy == ColocationPolicy::Arbiter) {
      TenantSample Sample = R->Sample;
      // Grants as of this boundary — after any kill/restart transition,
      // exactly what the sequential sim sampled.
      Sample.GrantedThreads = usedThreadsCoord(I);
      bool Sent = R->SentCandidate;
      if (Sent && Opts.Faults && Opts.Faults->dropHeartbeat())
        Sent = false;
      if (Sent)
        // The host journals every report the tenant emits, even while
        // the arbiter is down — this is what a WarmTrace restart
        // replays.
        journalRecord(Sample.Time, TraceKind::Heartbeat, Run[I].Stats.Name,
                      static_cast<double>(Sample.GrantedThreads),
                      Sample.Throughput,
                      Sample.OfferedRate > Sample.Throughput ||
                              Sample.QueueDepth > 0.0
                          ? "saturated"
                          : "");
      if (Sent && ArbUp)
        Arb->reportSample(Ids[I], Sample);
    }
    if (Trace) {
      Trace->recordAt(E, TraceKind::Counter, "threads:" + Run[I].Stats.Name,
                      static_cast<double>(Control[I].Granted));
      Trace->recordAt(E, TraceKind::Counter, "queue:" + Run[I].Stats.Name,
                      R->Sample.QueueDepth);
    }
  }

  if (ArbUp)
    applyChanges(Arb->rebalance(E), E);

  if (Opts.Policy == ColocationPolicy::Arbiter) {
    AllocationSample Alloc;
    Alloc.Time = E;
    for (size_t I = 0; I != N; ++I)
      Alloc.Granted.push_back(Control[I].Granted);
    Result.AllocationTimeline.push_back(std::move(Alloc));
  }
  NextEpoch += EpochLen;
  publishContention();
  return true;
}

void ColocationEngine::applyChanges(const std::vector<LeaseChange> &Changes,
                                    double Now) {
  TotalLeaseChanges += Changes.size();
  for (const LeaseChange &Ch : Changes) {
    for (size_t I = 0; I != N; ++I) {
      if (Run[I].Stats.Name != Ch.Tenant)
        continue;
      Control[I].Granted = Ch.NewThreads;
      if (Ch.Reason == "evict") {
        // Containment: the platform kills the tenant's workers.
        Control[I].Evicted = true;
        Control[I].SelfFloor = false;
      } else if (Ch.Reason == "expire") {
        // A live tenant whose lease expired (heartbeats lost in
        // transit) shrinks itself to its floor, like a Dope executive
        // whose envelope TTL lapsed; a dead one is simply gone.
        Control[I].SelfFloor = !CrashedMirror[I];
      } else if (Ch.NewThreads > 0) {
        Control[I].SelfFloor = false;
      }
      TenantDirective D;
      D.SpecIndex = static_cast<uint32_t>(I);
      D.CountLeaseChange = true;
      D.Pause = !CrashedMirror[I] && !Control[I].Evicted;
      Directives[OwnerOf[I]]->post(0, Now, D);
      journalRecord(Now,
                    Ch.Reason == "expire" ? TraceKind::LeaseExpire
                    : Ch.isGrant()        ? TraceKind::LeaseGrant
                                          : TraceKind::LeaseRevoke,
                    Ch.Tenant, static_cast<double>(Ch.NewThreads),
                    static_cast<double>(Ch.OldThreads), Ch.Reason);
    }
  }
}

void ColocationEngine::restartArbiter(double Now) {
  Arb = std::make_unique<Arbiter>(ArbOpts);
  bool Restored = false;
  if (Opts.Outage.Mode == ArbiterOutage::RestartMode::Snapshot) {
    std::string Err;
    const std::optional<JsonValue> Snap =
        JsonValue::parse(SnapshotJson, &Err);
    Restored = Snap.has_value() && Arb->restore(*Snap);
  }
  if (!Restored) {
    // Cold and WarmTrace paths: live tenants re-register. WarmTrace
    // then replays the host journal so the arbiter re-learns utility
    // curves and the actual holdings instead of starting from an
    // equal split; Cold really does start from the naive re-split
    // (that is the slow path warm restarts are measured against).
    const bool Warm =
        Opts.Outage.Mode == ArbiterOutage::RestartMode::WarmTrace;
    // Tenants that died during the outage are gone for good: the
    // reborn arbiter never hears of them, so release their journaled
    // leases before the survivors are seated.
    for (size_t I = 0; I != N; ++I) {
      if ((CrashedMirror[I] || Control[I].Evicted) &&
          Control[I].Granted > 0) {
        journalRecord(Now, TraceKind::LeaseExpire, Run[I].Stats.Name, 0.0,
                      static_cast<double>(Control[I].Granted), "restart-gc");
        Control[I].Granted = 0;
        TenantDirective D;
        D.SpecIndex = static_cast<uint32_t>(I);
        Directives[OwnerOf[I]]->post(0, Now, D);
      }
    }
    for (size_t I = 0; I != N; ++I) {
      if (CrashedMirror[I] || Control[I].Evicted)
        continue;
      Ids[I] = Arb->addTenant(Specs[I].Tenant, Now, nullptr);
      if (Warm)
        // Re-registering is itself proof of liveness; journal it so a
        // (later) warm restart and the invariant checker see it.
        journalRecord(Now, TraceKind::Heartbeat, Run[I].Stats.Name,
                      static_cast<double>(Control[I].Granted), 0.0,
                      "re-register");
    }
    if (Warm)
      Arb->warmStart(Result.ProtocolJournal);
    // Transition runtime holdings to the reborn arbiter's seats as
    // one batch, revocations first, so the hand-over never
    // overcommits the platform. Under WarmTrace the seats were
    // re-aligned with the journal and the batch is usually empty.
    std::vector<LeaseChange> Shrink, Grow;
    for (size_t I = 0; I != N; ++I) {
      if (CrashedMirror[I] || Control[I].Evicted)
        continue;
      const unsigned New = Arb->leaseOf(Ids[I]).Threads;
      if (New == Control[I].Granted)
        continue;
      LeaseChange C;
      C.Tenant = Run[I].Stats.Name;
      C.Time = Now;
      C.OldThreads = Control[I].Granted;
      C.NewThreads = New;
      C.Reason = "restart";
      (New < Control[I].Granted ? Shrink : Grow).push_back(std::move(C));
    }
    applyChanges(Shrink, Now);
    applyChanges(Grow, Now);
  }
  journalRecord(Now, TraceKind::Fault, "arbiter", 0.0, 0.0,
                Restored ? "restart:snapshot"
                : Opts.Outage.Mode == ArbiterOutage::RestartMode::WarmTrace
                    ? "restart:warm-trace"
                    : "restart:cold");
  if (Trace)
    Trace->recordAt(Now, TraceKind::Fault, "arbiter-restart");
}

ColocationSimResult ColocationEngine::run() {
  setup();

  ShardedSimOptions EngineOpts;
  EngineOpts.Shards = Shards;
  EngineOpts.Threads = Opts.ShardThreads;
  EngineOpts.LookaheadSeconds = EpochLen;
  EngineOpts.Seed = Opts.Seed;
  ShardedSim Engine(
      EngineOpts, [this](ShardContext &Ctx) { runShardEpoch(Ctx); },
      [this](double) { return coordinatorBarrier(); });
  Engine.run();

  Result.DurationSeconds = Opts.DurationSeconds;
  Result.LeaseChanges = TotalLeaseChanges;
  for (size_t I = 0; I != N; ++I)
    Result.Tenants.push_back(std::move(Run[I].Stats));
  Result.Fairness = summarizeTenants(Result.Tenants);
  for (const ShardClock &C : Clocks)
    Result.SimulatedEvents += C.SimEvents;
  return Result;
}

} // namespace

double ColocationSim::capacity(const ColocationTenantSpec &Spec,
                               unsigned Threads) {
  if (Spec.Kind == ColocationTenantSpec::AppKind::Pipeline)
    return pipelineCapacity(Spec.Pipeline, Threads);
  return nestCapacity(Spec.Nest, Threads, nullptr);
}

double ColocationSim::serviceLatency(const ColocationTenantSpec &Spec,
                                     unsigned Threads) {
  if (Spec.Kind == ColocationTenantSpec::AppKind::Pipeline) {
    double Total = 0.0;
    for (const PipelineStageSpec &S : Spec.Pipeline.Stages)
      Total += S.ServiceSeconds;
    return Total;
  }
  unsigned BestM = 1;
  nestCapacity(Spec.Nest, std::max(1u, Threads), &BestM);
  return Spec.Nest.SeqServiceSeconds / Spec.Nest.Curve.speedup(BestM);
}

ColocationSim::ColocationSim(std::vector<ColocationTenantSpec> Tenants,
                             ColocationSimOptions Options)
    : Specs(std::move(Tenants)), Opts(std::move(Options)) {
  assert(!Specs.empty() && "colocation needs at least one tenant");
  assert(Opts.Contexts >= Specs.size() && "a thread per tenant, minimum");
  assert(Opts.StepSeconds > 0.0 && Opts.DurationSeconds > 0.0);
}

ColocationSimResult ColocationSim::run() {
  ColocationEngine Engine(Specs, Opts);
  return Engine.run();
}

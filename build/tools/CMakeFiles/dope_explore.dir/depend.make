# Empty dependencies file for dope_explore.
# This may be replaced when dependencies are built.

//===- tests/ChaosInvariantsTest.cpp - Protocol invariant checker tests ----===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The checker itself must be trustworthy before the chaos soak can lean
// on it: hand-built journals with known defects must trip exactly the
// intended invariant, and known-clean journals (including the join batch
// and arbiter-down windows the rules deliberately exempt) must pass.
//
//===----------------------------------------------------------------------===//

#include "sim/ChaosInvariants.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

TraceRecord rec(double Time, TraceKind Kind, const char *Name, double A,
                double B, const char *Detail = "") {
  TraceRecord R;
  R.Time = Time;
  R.Kind = Kind;
  R.Name = Name;
  R.A = A;
  R.B = B;
  R.Detail = Detail;
  return R;
}

ChaosInvariantOptions options(unsigned Budget = 8, double Ttl = 5.0) {
  ChaosInvariantOptions Opts;
  Opts.PlatformThreads = Budget;
  Opts.LeaseTtlSeconds = Ttl;
  return Opts;
}

TEST(ChaosInvariants, CleanJournalPasses) {
  std::vector<TraceRecord> J = {
      rec(0.0, TraceKind::LeaseGrant, "a", 4, 0, "join"),
      rec(0.0, TraceKind::LeaseGrant, "b", 4, 0, "join"),
      rec(2.0, TraceKind::Heartbeat, "a", 4, 30.0),
      rec(2.0, TraceKind::Heartbeat, "b", 4, 30.0),
      rec(2.0, TraceKind::LeaseRevoke, "b", 2, 4, "rebalance"),
      rec(2.0, TraceKind::LeaseGrant, "a", 6, 4, "rebalance"),
  };
  const ChaosInvariantReport Report = checkChaosInvariants(J, options());
  EXPECT_TRUE(Report.ok()) << (Report.Violations.empty()
                                   ? ""
                                   : Report.Violations.front().Message);
  EXPECT_EQ(Report.LeaseRecords, 4u);
  EXPECT_EQ(Report.HeartbeatRecords, 2u);
}

TEST(ChaosInvariants, BudgetOvercommitIsCaught) {
  std::vector<TraceRecord> J = {
      rec(0.0, TraceKind::LeaseGrant, "a", 6, 0, "join"),
      rec(0.0, TraceKind::LeaseGrant, "b", 6, 0, "join"), // 12 > 8
  };
  const ChaosInvariantReport Report = checkChaosInvariants(J, options());
  ASSERT_EQ(Report.Violations.size(), 1u);
  EXPECT_EQ(Report.Violations[0].Invariant, "budget");
  EXPECT_EQ(Report.Violations[0].RecordIndex, 1u);
}

TEST(ChaosInvariants, GrantOrderedBeforeRevokeIsCaught) {
  // Same-timestamp decision batch applied in journal order: the grant
  // lands while b still holds its old lease, transiently overcommitting
  // a host that applies sequentially — even though the end state fits.
  std::vector<TraceRecord> J = {
      rec(0.0, TraceKind::LeaseGrant, "a", 4, 0, "join"),
      rec(0.0, TraceKind::LeaseGrant, "b", 4, 0, "join"),
      rec(2.0, TraceKind::LeaseGrant, "a", 6, 4, "rebalance"),
      rec(2.0, TraceKind::LeaseRevoke, "b", 2, 4, "rebalance"),
  };
  const ChaosInvariantReport Report = checkChaosInvariants(J, options());
  bool SawOrder = false;
  for (const ChaosViolation &V : Report.Violations)
    SawOrder |= V.Invariant == "revoke-order";
  EXPECT_TRUE(SawOrder);
}

TEST(ChaosInvariants, JoinBatchesAreExemptFromOrdering) {
  // Initial seating is grants-only by construction; the ordering rule
  // must not fire on it, in any order, nor across later joins.
  std::vector<TraceRecord> J = {
      rec(0.0, TraceKind::LeaseGrant, "a", 5, 0, "join"),
      rec(0.0, TraceKind::LeaseGrant, "b", 3, 0, "join"),
      rec(4.0, TraceKind::Heartbeat, "a", 5, 30.0),
      rec(4.0, TraceKind::Heartbeat, "b", 3, 30.0),
      rec(4.0, TraceKind::LeaseRevoke, "a", 3, 5, "rebalance"),
      rec(4.0, TraceKind::LeaseGrant, "c", 2, 0, "join"),
  };
  const ChaosInvariantReport Report = checkChaosInvariants(J, options());
  EXPECT_TRUE(Report.ok()) << (Report.Violations.empty()
                                   ? ""
                                   : Report.Violations.front().Message);
}

TEST(ChaosInvariants, ZombieLeaseIsCaughtAtTheNextDecision) {
  // b never heartbeats after joining at t=0; by the t=10 decision batch
  // (ttl 5) its 4 threads are a zombie lease the arbiter failed to
  // reclaim.
  std::vector<TraceRecord> J = {
      rec(0.0, TraceKind::LeaseGrant, "a", 4, 0, "join"),
      rec(0.0, TraceKind::LeaseGrant, "b", 4, 0, "join"),
      rec(10.0, TraceKind::Heartbeat, "a", 4, 30.0),
      rec(10.0, TraceKind::LeaseGrant, "a", 4, 4, "rebalance"),
  };
  const ChaosInvariantReport Report = checkChaosInvariants(J, options());
  ASSERT_FALSE(Report.ok());
  EXPECT_EQ(Report.Violations[0].Invariant, "zombie-lease");

  // The same journal with the lease properly expired passes.
  std::vector<TraceRecord> Fixed = J;
  Fixed.insert(Fixed.begin() + 2,
               rec(5.0, TraceKind::LeaseExpire, "b", 0, 4, "ttl"));
  EXPECT_TRUE(checkChaosInvariants(Fixed, options()).ok());
}

TEST(ChaosInvariants, QuietWindowsAreNotZombieChecked) {
  // Heartbeat-only batches while the arbiter is down cannot revoke
  // anything; the zombie rule only fires once a lease decision lands.
  std::vector<TraceRecord> J = {
      rec(0.0, TraceKind::LeaseGrant, "a", 4, 0, "join"),
      rec(0.0, TraceKind::LeaseGrant, "b", 4, 0, "join"),
      rec(12.0, TraceKind::Heartbeat, "a", 4, 30.0), // b long dead, no
      rec(14.0, TraceKind::Heartbeat, "a", 4, 30.0), // decisions though
  };
  EXPECT_TRUE(checkChaosInvariants(J, options()).ok());
}

TEST(ChaosInvariants, TtlZeroDisablesZombieCheck) {
  std::vector<TraceRecord> J = {
      rec(0.0, TraceKind::LeaseGrant, "a", 4, 0, "join"),
      rec(50.0, TraceKind::LeaseGrant, "a", 4, 4, "rebalance"),
  };
  EXPECT_TRUE(checkChaosInvariants(J, options(8, 0.0)).ok());
}

//===----------------------------------------------------------------------===//
// Recovery metrics
//===----------------------------------------------------------------------===//

ColocationSimResult timeline(
    std::vector<std::pair<double, std::vector<unsigned>>> Points) {
  ColocationSimResult R;
  for (auto &[T, G] : Points)
    R.AllocationTimeline.push_back({T, std::move(G)});
  return R;
}

TEST(ChaosInvariants, RecoveryCountsRoundsFromTheRestartEpoch) {
  const ColocationSimResult Base = timeline(
      {{0, {4, 4}}, {2, {5, 3}}, {4, {5, 3}}, {6, {5, 3}}, {8, {5, 3}}});
  const ColocationSimResult Chaos = timeline(
      {{0, {4, 4}}, {2, {8, 0}}, {4, {8, 0}}, {6, {6, 2}}, {8, {5, 3}}});

  const RecoveryMetrics R = allocationRecovery(Base, Chaos, 4.0, 1);
  ASSERT_TRUE(R.recovered());
  // Epochs compared: t=4 (dist 6), t=6 (dist 2), t=8 (dist 0) — round 3.
  EXPECT_EQ(R.RoundsToRecover, 3);
  EXPECT_DOUBLE_EQ(R.TimeToRecoverSeconds, 4.0);
  EXPECT_EQ(R.FinalDistance, 0u);
}

TEST(ChaosInvariants, RecoveryMustBeSticky) {
  const ColocationSimResult Base =
      timeline({{0, {5, 3}}, {2, {5, 3}}, {4, {5, 3}}, {6, {5, 3}}});
  // Converges at t=2, diverges again at t=4: the t=2 touch is not
  // recovery.
  const ColocationSimResult Flappy =
      timeline({{0, {5, 3}}, {2, {5, 3}}, {4, {8, 0}}, {6, {5, 3}}});
  const RecoveryMetrics R = allocationRecovery(Base, Flappy, 0.0, 1);
  ASSERT_TRUE(R.recovered());
  EXPECT_EQ(R.RoundsToRecover, 4);

  const ColocationSimResult Never =
      timeline({{0, {5, 3}}, {2, {8, 0}}, {4, {8, 0}}, {6, {8, 0}}});
  const RecoveryMetrics N = allocationRecovery(Base, Never, 0.0, 1);
  EXPECT_FALSE(N.recovered());
  EXPECT_EQ(N.RoundsToRecover, -1);
  EXPECT_EQ(N.FinalDistance, 6u);
}

TEST(ChaosInvariants, WeightedAttainmentSelectsNamedTenants) {
  ColocationSimResult R;
  TenantStats A;
  A.Name = "a";
  A.Weight = 2.0;
  A.Arrived = 100;
  A.Completed = 100; // attainment 1.0
  TenantStats B;
  B.Name = "b";
  B.Weight = 1.0;
  B.Arrived = 100;
  B.Completed = 50; // attainment 0.5
  TenantStats C;
  C.Name = "ignored";
  C.Weight = 10.0;
  C.Arrived = 100;
  C.Completed = 0;
  R.Tenants = {A, B, C};

  EXPECT_DOUBLE_EQ(weightedAttainmentOf(R, {"a", "b"}), 2.0 * 1.0 + 0.5);
  EXPECT_DOUBLE_EQ(weightedAttainmentOf(R, {"b"}), 0.5);
}

TEST(ChaosInvariants, AttainmentRetainedIsAWellFormedFraction) {
  // Plain retention: post/pre.
  EXPECT_DOUBLE_EQ(attainmentRetained(2.0, 1.5), 0.75);
  EXPECT_DOUBLE_EQ(attainmentRetained(1.0, 1.0), 1.0);

  // Regression: the containment bench once reported 1.044 because a
  // post-fault window was divided by a *different run's* fault-free
  // attainment. A fault can perturb allocations in the honest tenants'
  // favor, but "fraction retained" must still cap at whole.
  EXPECT_DOUBLE_EQ(attainmentRetained(2.0, 2.088), 1.0);

  // Degenerate inputs stay in [0, 1].
  EXPECT_DOUBLE_EQ(attainmentRetained(2.0, -0.5), 0.0);
  EXPECT_DOUBLE_EQ(attainmentRetained(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(attainmentRetained(-1.0, 0.5), 1.0);
}

} // namespace

//===- mechanisms/Tbf.h - Throughput Balance with Fusion -------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TBF (paper Sec. 7.2): records a moving average of each task's
/// throughput (the inverse of its execution time) and, at each
/// reconfiguration, assigns every parallel task a DoP extent inversely
/// proportional to its average throughput — i.e. proportional to its
/// per-item execution time — so slower stages get more threads.
///
/// If the imbalance between stage throughputs exceeds a threshold
/// (paper value: 0.5), TBF *fuses* the pipeline by switching the driver
/// task to a registered fused alternative (the application exposes the
/// fused task through the TaskDescriptor's choice of ParDescriptors;
/// DoPE spawns it automatically). The rationale: a heavily unbalanced
/// pipeline pays communication and synchronization costs for little
/// benefit.
///
/// DoPE-TB is the same mechanism with fusion disabled, isolating the
/// benefit of fusion in the Table 15 reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_TBF_H
#define DOPE_MECHANISMS_TBF_H

#include "core/Mechanism.h"

namespace dope {

/// Tuning parameters of TBF.
struct TbfParams {
  /// Imbalance threshold above which fusion is triggered (paper: 0.5).
  double FusionThreshold = 0.5;
  /// Enables task fusion (TBF); disabled gives the TB variant.
  bool EnableFusion = true;
  /// Fully-measured decisions required before fusion may trigger: the
  /// imbalance test runs on *moving averages* of stage throughput, so
  /// the mechanism first lets the balanced assignment settle. This also
  /// produces the visible search-then-stabilize staircase of Fig. 13.
  unsigned FusionWarmupDecisions = 4;
};

/// Throughput Balance with Fusion.
class TbfMechanism : public Mechanism {
public:
  explicit TbfMechanism(TbfParams Params = TbfParams());

  std::string name() const override {
    return Params.EnableFusion ? "TBF" : "TB";
  }

  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx)
      override;

  void reset() override {
    Fused = false;
    MeasuredDecisions = 0;
    // The hint is configuration, not adaptation state: re-arm it so a
    // restart proposes the predicted optimum again.
    HintPending = Hint.has_value();
  }

  /// Accepts a warm-start hint and proposes it at the first decision of
  /// each run, before any stage has been measured: either the hinted
  /// fused alternative (AltIndex) or the hinted per-stage extents.
  /// Ordinary throughput balancing takes over from the next measured
  /// decision, so a wrong prediction is simply rebalanced away.
  void seedWarmStart(const WarmStartHint &Hint) override;

  /// Computes the imbalance metric over stage capacities: 1 - min/max
  /// over the per-stage throughputs of a balanced assignment. Exposed for
  /// tests and the ablation bench.
  static double imbalance(const std::vector<double> &StageCapacities);

  bool fused() const { return Fused; }

private:
  TbfParams Params;
  bool Fused = false;
  unsigned MeasuredDecisions = 0;
  /// Warm-start hint; survives reset() like a tuning parameter.
  std::optional<WarmStartHint> Hint;
  /// True while the hinted configuration has not been proposed yet this
  /// run; rearmed by reset().
  bool HintPending = false;
};

} // namespace dope

#endif // DOPE_MECHANISMS_TBF_H

// DL002 fixture: raw RNG primitives outside support/Random.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <cstdlib>
#include <random>

int legacyRoll() { return rand() % 6; }

int modernRoll() {
  std::mt19937 Gen(std::random_device{}());
  return static_cast<int>(Gen() % 6);
}

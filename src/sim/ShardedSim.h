//===- sim/ShardedSim.h - Conservative sharded simulation core -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conservative time-barrier parallel simulation engine in the classic
/// PDES mold: the model is partitioned into N shards, each owning its
/// own EventQueue and RNG stream, and all shards advance in lockstep
/// epochs of width LookaheadSeconds. Within an epoch a shard touches
/// only its own state plus read-only control state published at the
/// previous barrier; anything cross-shard travels through seq-numbered
/// CrossShardMailbox messages that the coordinator delivers inside the
/// barrier's serial section.
///
/// The lookahead window is the model's minimum cross-shard latency —
/// for the colocation simulator, one arbiter epoch: lease grants,
/// revocations, and heartbeats only take effect at epoch boundaries, so
/// no event produced inside an epoch can affect another shard within
/// the same epoch, and each shard may safely advance a full window
/// between barriers.
///
/// Determinism contract: given the same seed and model, every run
/// produces bit-identical shard-local state regardless of shard count
/// or worker-thread interleaving, provided the client keeps shard work
/// a function of (own state, published control state) and routes all
/// cross-shard effects through mailboxes processed in canonical order.
/// Shards == 1 runs inline on the caller's thread with no worker
/// threads — the oracle configuration the differential tests pin.
///
/// Execution resources are decoupled from the partition: a thread team
/// of ShardedSimOptions::Threads workers multiplexes the shards
/// (round-robin by index), so many-shard models scale down to few-core
/// hosts — a team of one degenerates to the inline loop, with no
/// threads or barrier at all, instead of thrashing N blocked threads
/// through every epoch.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_SHARDEDSIM_H
#define DOPE_SIM_SHARDEDSIM_H

#include "sim/EventQueue.h"
#include "sim/ShardBarrier.h"
#include "support/Random.h"

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace dope {

struct ShardedSimOptions {
  /// Number of shards — the model partition. Independent of the worker
  /// thread count below: shard count fixes the determinism domain,
  /// Threads fixes the execution resources.
  unsigned Shards = 1;

  /// Worker threads driving the shards (the thread team). 0 = auto:
  /// min(Shards, hardware concurrency), so an 8-shard model on a
  /// single-core host multiplexes inline instead of thrashing eight
  /// blocked threads through the barrier. A team of 1 runs every shard
  /// on the caller's thread with no worker threads or synchronization
  /// at all; teams larger than the shard count are clamped. Results are
  /// bit-identical for every team size (the epoch function touches only
  /// shard-local state, so execution order within an epoch is
  /// immaterial).
  unsigned Threads = 0;

  /// Epoch width: the conservative lookahead window, in virtual
  /// seconds. Must be strictly positive — zero lookahead would let
  /// cross-shard effects land inside the epoch that produced them,
  /// voiding the determinism argument; the constructor rejects it.
  double LookaheadSeconds = 1.0;

  /// Seeds the per-shard RNG streams (shard i draws from an independent
  /// stream derived from Seed and i).
  uint64_t Seed = 42;
};

/// Per-shard execution state handed to the client's epoch function.
/// Owned by the engine; valid for the duration of run().
class ShardContext {
public:
  unsigned shard() const { return Index; }
  unsigned shardCount() const { return Count; }

  /// Bounds of the epoch currently executing: [epochBegin, epochEnd).
  double epochBegin() const { return Begin; }
  double epochEnd() const { return End; }

  /// The shard's private event queue. An event scheduled exactly at
  /// epochEnd() fires in this epoch (EventQueue::runUntil is
  /// inclusive), not the next — the boundary belongs to the epoch it
  /// closes.
  EventQueue &events() { return Events; }

  /// The shard's private RNG stream.
  Rng &rng() { return Random; }

  /// Dispatches pending events up to \p EndTime, accumulating the
  /// shard's dispatch count. Prefer this over events().runUntil so
  /// dispatched() stays accurate.
  uint64_t runEventsUntil(double EndTime) {
    const uint64_t K = Events.runUntil(EndTime);
    Dispatched += K;
    return K;
  }

  /// Events dispatched by this shard so far.
  uint64_t dispatched() const { return Dispatched; }

private:
  friend class ShardedSim;
  ShardContext(unsigned Index, unsigned Count, uint64_t Seed)
      : Index(Index), Count(Count), Random(Seed) {}

  const unsigned Index;
  const unsigned Count;
  double Begin = 0.0;
  double End = 0.0;
  EventQueue Events;
  Rng Random;
  uint64_t Dispatched = 0;
};

class ShardedSim {
public:
  /// Runs one epoch of one shard: advance the shard's state to
  /// Ctx.epochEnd(), posting any cross-shard effects to mailboxes.
  /// Called concurrently across shards; must touch only shard-local
  /// state and barrier-published read-only state.
  using EpochFn = std::function<void(ShardContext &Ctx)>;

  /// The coordinator's serial section, run by exactly one thread at
  /// each barrier after every shard finished the epoch ending at
  /// \p EpochEnd. Collect mailboxes, advance global state, publish
  /// control state for the next epoch. Returns false to stop the run
  /// after this barrier.
  using BarrierFn = std::function<bool(double EpochEnd)>;

  /// Throws std::invalid_argument on zero shards or non-positive
  /// lookahead.
  ShardedSim(ShardedSimOptions Options, EpochFn Epoch, BarrierFn Barrier);

  /// Runs epochs until the coordinator stops the run. With a team of
  /// one (including the single-shard oracle) everything executes inline
  /// on the calling thread; otherwise each team thread drives its
  /// statically assigned shards (round-robin by index). Client
  /// exceptions stop the run at the next barrier and are rethrown here
  /// (first one wins).
  void run();

  ShardContext &shard(unsigned Index) { return *Contexts[Index]; }
  unsigned shardCount() const { return Opts.Shards; }

  /// The resolved thread-team size in [1, shardCount()].
  unsigned teamSize() const { return Team; }

  /// Sum of every shard's event dispatch count (stable only outside
  /// run()).
  uint64_t totalDispatched() const;

private:
  /// Runs one epoch of every shard owned by team thread \p Tid (shard
  /// indices congruent to Tid modulo the team size, ascending).
  void runOwnedShards(unsigned Tid);
  void workerLoop(unsigned Tid);
  /// The serial section: runs the coordinator callback and opens the
  /// next epoch. Must execute with all shards quiescent.
  void coordinate();

  ShardedSimOptions Opts;
  EpochFn Epoch;
  BarrierFn Barrier;
  /// Resolved team size (see ShardedSimOptions::Threads).
  unsigned Team = 1;
  std::vector<std::unique_ptr<ShardContext>> Contexts;
  ShardBarrier Sync;

  // Epoch bookkeeping, written only in the serial section (or inline
  // single-shard loop) and read by workers after the barrier releases
  // them — the barrier mutex orders every access.
  double EpochBegin = 0.0;
  double EpochEnd = 0.0;
  bool KeepGoing = true;

  // Failure plumbing: any worker may fail before the barrier, so the
  // flag is atomic; the first exception is kept and rethrown by run().
  std::atomic<bool> Failed{false};
  std::mutex ErrorMutex;
  std::exception_ptr FirstError;
};

} // namespace dope

#endif // DOPE_SIM_SHARDEDSIM_H

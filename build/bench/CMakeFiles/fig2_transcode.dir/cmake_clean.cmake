file(REMOVE_RECURSE
  "CMakeFiles/fig2_transcode.dir/fig2_transcode.cpp.o"
  "CMakeFiles/fig2_transcode.dir/fig2_transcode.cpp.o.d"
  "fig2_transcode"
  "fig2_transcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_transcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- support/Compiler.h - Portability helpers ---------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros used across the DoPE libraries.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_COMPILER_H
#define DOPE_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

/// Marks a monitoring hot-path function: Task::begin/Task::end, LoadCB
/// sampling, the WorkQueue lock-free readers, and Tracer::record. The
/// `dope_lint` hot-path purity checks (HP001-HP003, DESIGN.md §12)
/// verify that the *direct body* of an annotated function takes no
/// mutex, performs no explicit allocation (new / make_unique /
/// make_shared / malloc), and calls no non-hot virtual. Annotate both
/// the declaration and the out-of-line definition — the checks are
/// token-level and look at whichever they scan.
#if defined(__clang__)
#define DOPE_HOT __attribute__((annotate("dope_hot")))
#else
#define DOPE_HOT
#endif

/// Marks a deliberate cold path reachable from a DOPE_HOT function:
/// ring growth, parking-lot wakes, one-time registration. The
/// interprocedural purity check (HP004) stops its call-chain traversal
/// at a DOPE_COLD callee — the annotation is the reviewed statement
/// that the hot caller only reaches it on a slow path. Annotate the
/// definition; the checks are token-level.
#if defined(__clang__)
#define DOPE_COLD __attribute__((annotate("dope_cold")))
#else
#define DOPE_COLD
#endif

/// Marks a point in control flow that must never be reached. Prints the
/// message and aborts; mirrors llvm_unreachable semantics in a dependency
/// free form.
#define DOPE_UNREACHABLE(Msg)                                                  \
  do {                                                                         \
    std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", __FILE__,      \
                 __LINE__, (Msg));                                             \
    std::abort();                                                              \
  } while (false)

#endif // DOPE_SUPPORT_COMPILER_H

file(REMOVE_RECURSE
  "CMakeFiles/fig12_ferret_response.dir/fig12_ferret_response.cpp.o"
  "CMakeFiles/fig12_ferret_response.dir/fig12_ferret_response.cpp.o.d"
  "fig12_ferret_response"
  "fig12_ferret_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ferret_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- tests/SpeedupCurveFitTest.cpp - Curve fitting on noisy samples ------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/SpeedupCurve.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dope;

namespace {

std::vector<SpeedupSample> sampleCurve(const SpeedupCurve &Curve,
                                       double BaseRate, unsigned MaxExtent,
                                       double NoiseFraction, Rng &R) {
  std::vector<SpeedupSample> Samples;
  for (unsigned M = 1; M <= MaxExtent; ++M) {
    const double True = BaseRate * Curve.speedup(M);
    const double Noise = 1.0 + NoiseFraction * (2.0 * R.uniform() - 1.0);
    Samples.push_back({M, True * Noise});
  }
  return Samples;
}

TEST(SpeedupCurveFit, RecoversCleanCurve) {
  const SpeedupCurve Truth(0.08, 0.15);
  std::vector<SpeedupSample> Samples;
  for (unsigned M = 1; M <= 16; ++M)
    Samples.push_back({M, 5.0 * Truth.speedup(M)});

  const SpeedupCurveFit Fit = fitSpeedupCurve(Samples);
  ASSERT_GT(Fit.BaseRate, 0.0);
  EXPECT_NEAR(Fit.BaseRate, 5.0, 0.25);
  // Parameters are only identifiable up to prediction equivalence, so
  // judge the fit by its predictions.
  for (unsigned M = 1; M <= 16; ++M)
    EXPECT_NEAR(Fit.predictRate(M), 5.0 * Truth.speedup(M),
                0.05 * 5.0 * Truth.speedup(M))
        << "at extent " << M;
  EXPECT_LT(Fit.Rmse, 0.5);
}

TEST(SpeedupCurveFit, RecoversUnderNoise) {
  // Seeded noise: reproduce any failure with DOPE_TEST_SEED=<seed>.
  Rng R(testing_helpers::loggedSeed(0xc0ffee));
  const SpeedupCurve Truth(0.05, 0.2);
  const double BaseRate = 12.0;

  for (int Trial = 0; Trial != 20; ++Trial) {
    const std::vector<SpeedupSample> Samples =
        sampleCurve(Truth, BaseRate, 24, /*NoiseFraction=*/0.1, R);
    const SpeedupCurveFit Fit = fitSpeedupCurve(Samples);
    ASSERT_GT(Fit.BaseRate, 0.0);
    EXPECT_EQ(Fit.SampleCount, 24u);
    // 10% multiplicative noise: predictions should still land within
    // 20% of truth across the whole range.
    for (unsigned M = 1; M <= 24; M += 3) {
      const double True = BaseRate * Truth.speedup(M);
      EXPECT_NEAR(Fit.predictRate(M), True, 0.2 * True)
          << "trial " << Trial << " extent " << M;
    }
  }
}

TEST(SpeedupCurveFit, MonotonePredictionsForConcaveTruth) {
  Rng R(testing_helpers::loggedSeed(42));
  const SpeedupCurve Truth(0.1, 0.1);
  const std::vector<SpeedupSample> Samples =
      sampleCurve(Truth, 4.0, 16, 0.05, R);
  const SpeedupCurveFit Fit = fitSpeedupCurve(Samples);
  ASSERT_GT(Fit.BaseRate, 0.0);
  // The fitted family is monotone in m for alpha < 1, so marginal rates
  // are non-negative — what the arbiter's bidding relies on.
  for (unsigned M = 1; M < 24; ++M)
    EXPECT_GE(Fit.predictRate(M + 1) + 1e-9, Fit.predictRate(M));
}

TEST(SpeedupCurveFit, NoHistoryFallbacks) {
  // Empty, single-sample, and single-extent inputs all report BaseRate
  // 0 — the "no history" signal the arbiter maps to equal-share bids.
  EXPECT_EQ(fitSpeedupCurve({}).BaseRate, 0.0);
  EXPECT_EQ(fitSpeedupCurve({{4, 10.0}}).BaseRate, 0.0);
  EXPECT_EQ(fitSpeedupCurve({{4, 10.0}, {4, 11.0}, {4, 9.5}}).BaseRate, 0.0);
  // Non-positive rates and zero extents are discarded, not fitted.
  EXPECT_EQ(fitSpeedupCurve({{1, -5.0}, {2, 0.0}, {0, 3.0}}).BaseRate, 0.0);
}

TEST(SpeedupCurveFit, Deterministic) {
  Rng R(testing_helpers::loggedSeed(7));
  const std::vector<SpeedupSample> Samples =
      sampleCurve(SpeedupCurve(0.07, 0.3), 9.0, 12, 0.15, R);
  const SpeedupCurveFit A = fitSpeedupCurve(Samples);
  const SpeedupCurveFit B = fitSpeedupCurve(Samples);
  EXPECT_EQ(A.BaseRate, B.BaseRate);
  EXPECT_EQ(A.Curve.alpha(), B.Curve.alpha());
  EXPECT_EQ(A.Curve.fixedCost(), B.Curve.fixedCost());
  EXPECT_EQ(A.Rmse, B.Rmse);
}

TEST(SpeedupCurveFit, SaturatingCurveBeatsLinearExtrapolation) {
  // Samples from a heavily saturating app (cap 4x): the fit must not
  // predict meaningful gains past the knee.
  const SpeedupCurve Truth(0.3, 0.2, 4.0);
  std::vector<SpeedupSample> Samples;
  for (unsigned M = 1; M <= 16; ++M)
    Samples.push_back({M, 2.0 * Truth.speedup(M)});
  const SpeedupCurveFit Fit = fitSpeedupCurve(Samples);
  ASSERT_GT(Fit.BaseRate, 0.0);
  const double GainAtTail = Fit.predictRate(24) - Fit.predictRate(16);
  EXPECT_LT(GainAtTail, 0.35 * Fit.predictRate(16))
      << "fit extrapolates saturating app as if it kept scaling";
}

} // namespace

//===- tests/FaultInjectorTest.cpp - Deterministic fault injection tests ---===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Chaos results are only debuggable if fault placement is a pure
// function of the seed: the same plan + seed must produce the same
// fault stream standalone, across repeated full simulations, and
// regardless of how many worker threads a sweep fans runs across.
//
//===----------------------------------------------------------------------===//

#include "sim/FaultInjector.h"

#include "ParallelSweep.h"
#include "sim/ColocationSim.h"

#include <gtest/gtest.h>

#include <vector>

using namespace dope;
using dope::bench::parallelSweep;

namespace {

FaultPlan heartbeatPlan(double P) {
  FaultPlan Plan;
  Plan.HeartbeatDropProbability = P;
  return Plan;
}

TEST(FaultInjector, SameSeedSameStream) {
  FaultPlan Plan = heartbeatPlan(0.3);
  Plan.StragglerProbability = 0.2;
  Plan.HandoffDropProbability = 0.1;
  FaultInjector A(Plan, 1234), B(Plan, 1234);
  for (int I = 0; I != 2000; ++I) {
    EXPECT_EQ(A.dropHeartbeat(), B.dropHeartbeat());
    EXPECT_EQ(A.dropHandoff(), B.dropHandoff());
    EXPECT_DOUBLE_EQ(A.stragglerScale(), B.stragglerScale());
    EXPECT_EQ(A.pickVictim(17), B.pickVictim(17));
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector A(heartbeatPlan(0.5), 1), B(heartbeatPlan(0.5), 2);
  int Differing = 0;
  for (int I = 0; I != 1000; ++I)
    Differing += A.dropHeartbeat() != B.dropHeartbeat();
  EXPECT_GT(Differing, 0);
}

TEST(FaultInjector, HeartbeatDropRespectsProbabilityEndpoints) {
  FaultInjector Never(heartbeatPlan(0.0), 7);
  FaultInjector Always(heartbeatPlan(1.0), 7);
  for (int I = 0; I != 500; ++I) {
    EXPECT_FALSE(Never.dropHeartbeat());
    EXPECT_TRUE(Always.dropHeartbeat());
  }
}

//===----------------------------------------------------------------------===//
// Determinism through a full chaos simulation
//===----------------------------------------------------------------------===//

bool journalsEqual(const std::vector<TraceRecord> &A,
                   const std::vector<TraceRecord> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Time != B[I].Time || A[I].Kind != B[I].Kind ||
        A[I].Name != B[I].Name || A[I].A != B[I].A || A[I].B != B[I].B ||
        A[I].Detail != B[I].Detail)
      return false;
  return true;
}

/// A small chaos colocation: two pipeline tenants, one crashing, lossy
/// heartbeats, and an arbiter kill/restart — everything that could go
/// nondeterministic if fault placement leaked state.
ColocationSimResult chaosRun(uint64_t Seed) {
  auto tenant = [](const char *Name, double Rate) {
    ColocationTenantSpec T;
    T.Tenant.Name = Name;
    T.Tenant.Goal = TenantGoal::Throughput;
    T.Kind = ColocationTenantSpec::AppKind::Pipeline;
    T.Pipeline.Name = Name;
    T.Pipeline.Stages = {{"in", true, 0.02, 0.1}, {"work", true, 0.08, 0.1}};
    T.ArrivalRate = Rate;
    return T;
  };
  std::vector<ColocationTenantSpec> Tenants = {tenant("a", 60.0),
                                               tenant("b", 40.0)};
  Tenants[1].Misbehavior.CrashSeconds = 30.0;

  ColocationSimOptions Opts;
  Opts.Contexts = 8;
  Opts.Seed = Seed;
  Opts.DurationSeconds = 48.0;
  Opts.StepSeconds = 0.05;
  Opts.Policy = ColocationPolicy::Arbiter;
  Opts.Arbiter.EpochSeconds = 2.0;
  Opts.Arbiter.LeaseTtlSeconds = 5.0;
  Opts.Outage.KillSeconds = 16.0;
  Opts.Outage.RestartSeconds = 22.0;
  Opts.Outage.Mode = ArbiterOutage::RestartMode::Snapshot;

  FaultInjector Faults(heartbeatPlan(0.1), Seed);
  Opts.Faults = &Faults;

  ColocationSim Sim(std::move(Tenants), Opts);
  return Sim.run();
}

TEST(FaultInjector, ChaosRunsAreReproducibleUnderOneSeed) {
  const ColocationSimResult First = chaosRun(99);
  const ColocationSimResult Again = chaosRun(99);
  EXPECT_TRUE(journalsEqual(First.ProtocolJournal, Again.ProtocolJournal));
  ASSERT_EQ(First.AllocationTimeline.size(), Again.AllocationTimeline.size());
  for (size_t I = 0; I != First.AllocationTimeline.size(); ++I)
    EXPECT_EQ(First.AllocationTimeline[I].Granted,
              Again.AllocationTimeline[I].Granted);
}

TEST(FaultInjector, ChaosSweepIsIdenticalAcrossJobCounts) {
  constexpr size_t Seeds = 6;
  auto Point = [](size_t I) { return chaosRun(500 + I); };
  const std::vector<ColocationSimResult> Sequential =
      parallelSweep<ColocationSimResult>(Seeds, 1, Point);
  const std::vector<ColocationSimResult> Fanned =
      parallelSweep<ColocationSimResult>(Seeds, 4, Point);
  ASSERT_EQ(Sequential.size(), Fanned.size());
  for (size_t I = 0; I != Seeds; ++I)
    EXPECT_TRUE(journalsEqual(Sequential[I].ProtocolJournal,
                              Fanned[I].ProtocolJournal))
        << "seed point " << I << " depends on sweep parallelism";
}

} // namespace

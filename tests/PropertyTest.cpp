//===- tests/PropertyTest.cpp - Property-based invariant sweeps --------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized (TEST_P) sweeps over the invariants the system's
/// correctness rests on: allocator arithmetic, curve monotonicity,
/// configuration validity, mechanism outputs staying within budget, and
/// conservation laws of the simulators.
///
//===----------------------------------------------------------------------===//

#include "apps/NestApps.h"
#include "apps/PipelineApps.h"
#include "core/Placement.h"
#include "core/Replay.h"
#include "mechanisms/Dpm.h"
#include "mechanisms/Factory.h"
#include "mechanisms/Fdp.h"
#include "mechanisms/Seda.h"
#include "mechanisms/ServerNest.h"
#include "mechanisms/Tpc.h"
#include "mechanisms/Tbf.h"
#include "mechanisms/WqLinear.h"
#include "sim/NestServerSim.h"
#include "sim/PipelineSim.h"
#include "support/MathUtils.h"
#include "support/Random.h"
#include "support/SpeedupCurve.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

//===----------------------------------------------------------------------===
// Allocator invariants over random instances
//===----------------------------------------------------------------------===

class AllocatorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorProperty, ProportionalSplitConserves) {
  Rng R(loggedSeed(GetParam()));
  const size_t N = 1 + R.uniformInt(8);
  const unsigned Total =
      static_cast<unsigned>(N + R.uniformInt(64));
  std::vector<double> Weights;
  for (size_t I = 0; I != N; ++I)
    Weights.push_back(R.uniform(0.0, 10.0));

  const std::vector<unsigned> Split = proportionalSplit(Total, Weights, 1);
  const unsigned Sum = std::accumulate(Split.begin(), Split.end(), 0u);
  EXPECT_EQ(Sum, Total);
  for (unsigned S : Split)
    EXPECT_GE(S, 1u);
}

TEST_P(AllocatorProperty, WaterfillConservesAndDominatesProportional) {
  Rng R(loggedSeed(GetParam()) ^ 0xabcdULL);
  const size_t N = 2 + R.uniformInt(6);
  std::vector<double> Costs;
  for (size_t I = 0; I != N; ++I)
    Costs.push_back(R.uniform(0.1, 10.0));
  const unsigned Total = static_cast<unsigned>(N + R.uniformInt(40));

  const std::vector<unsigned> Water = waterfillSplit(Total, Costs);
  EXPECT_EQ(std::accumulate(Water.begin(), Water.end(), 0u), Total);

  auto MinCapacity = [&](const std::vector<unsigned> &Units) {
    double Min = 1e300;
    for (size_t I = 0; I != N; ++I)
      Min = std::min(Min, Units[I] / Costs[I]);
    return Min;
  };
  const std::vector<unsigned> Proportional =
      proportionalSplit(Total, Costs, 1);
  EXPECT_GE(MinCapacity(Water) + 1e-12, MinCapacity(Proportional));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, AllocatorProperty,
                         ::testing::Range<uint64_t>(0, 25));

//===----------------------------------------------------------------------===
// Speedup curve invariants across the parameter grid
//===----------------------------------------------------------------------===

struct CurveParams {
  double Alpha;
  double FixedCost;
  double Cap;
};

class CurveProperty : public ::testing::TestWithParam<CurveParams> {};

TEST_P(CurveProperty, Invariants) {
  const CurveParams P = GetParam();
  SpeedupCurve C(P.Alpha, P.FixedCost, P.Cap);
  EXPECT_DOUBLE_EQ(C.speedup(1), 1.0);
  double Previous = 1.0;
  for (unsigned M = 2; M <= 48; ++M) {
    const double S = C.speedup(M);
    EXPECT_GT(S, 0.0);
    EXPECT_LE(S, P.Cap + 1e-12);
    // The raw curve is increasing in m, and min with a constant keeps
    // monotonicity except across the m=1 fixed-cost cliff.
    if (M > 2)
      EXPECT_GE(S + 1e-12, Previous);
    EXPECT_LE(C.efficiency(M), 1.0 + 1e-12);
    Previous = S;
  }
  const unsigned DopMin = C.dopMin();
  if (DopMin != 0) {
    EXPECT_GT(C.speedup(DopMin), 1.0);
    if (DopMin > 2)
      EXPECT_LE(C.speedup(DopMin - 1), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CurveProperty,
    ::testing::Values(CurveParams{0.0, 0.0, 1e30},
                      CurveParams{0.02, 0.0, 18.0},
                      CurveParams{0.033, 0.0, 6.3},
                      CurveParams{0.3, 1.4, 8.0},
                      CurveParams{0.09, 0.0, 10.0},
                      CurveParams{0.5, 3.0, 4.0},
                      CurveParams{0.0, 0.5, 2.0}));

//===----------------------------------------------------------------------===
// Server-nest configuration validity across the (outer, inner) grid
//===----------------------------------------------------------------------===

class ServerConfigProperty
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(ServerConfigProperty, AlwaysValidAndAccountable) {
  const auto [Outer, Inner] = GetParam();
  ServerNestGraph G = makeServerNestGraph();
  const RegionConfig Config = makeServerConfig(*G.Root, Outer, Inner);
  std::string Error;
  EXPECT_TRUE(validateConfig(*G.Root, Config, &Error)) << Error;
  EXPECT_EQ(serverOuterExtent(Config), Outer);
  EXPECT_EQ(serverInnerExtent(Config), std::max(1u, Inner));
  EXPECT_EQ(totalThreads(*G.Root, Config),
            Outer * std::max(1u, Inner));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ServerConfigProperty,
    ::testing::Values(std::pair<unsigned, unsigned>{1, 1},
                      std::pair<unsigned, unsigned>{24, 1},
                      std::pair<unsigned, unsigned>{3, 8},
                      std::pair<unsigned, unsigned>{12, 2},
                      std::pair<unsigned, unsigned>{6, 4},
                      std::pair<unsigned, unsigned>{1, 24},
                      std::pair<unsigned, unsigned>{24, 8}));

//===----------------------------------------------------------------------===
// WQ-Linear decision function properties
//===----------------------------------------------------------------------===

class WqLinearProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(WqLinearProperty, ExtentMonotoneNonincreasingInOccupancy) {
  const unsigned MMax = GetParam();
  WqLinearMechanism M({1, MMax, 16.0, 0, 0});
  unsigned Previous = MMax + 1;
  for (double Occupancy = 0.0; Occupancy <= 40.0; Occupancy += 0.5) {
    const unsigned Extent = M.extentForOccupancy(Occupancy);
    EXPECT_GE(Extent, 1u);
    EXPECT_LE(Extent, MMax);
    EXPECT_LE(Extent, Previous);
    Previous = Extent;
  }
  EXPECT_EQ(M.extentForOccupancy(0.0), MMax);
  EXPECT_EQ(M.extentForOccupancy(1000.0), 1u);
}

INSTANTIATE_TEST_SUITE_P(MmaxGrid, WqLinearProperty,
                         ::testing::Values(2u, 4u, 6u, 8u, 12u));

//===----------------------------------------------------------------------===
// Simulator conservation laws
//===----------------------------------------------------------------------===

class NestSimProperty : public ::testing::TestWithParam<double> {};

TEST_P(NestSimProperty, EveryTransactionCompletesExactlyOnce) {
  const double Load = GetParam();
  NestAppBundle App = makeX264App();
  NestSimOptions Opts;
  Opts.Contexts = 24;
  Opts.LoadFactor = Load;
  Opts.NumTransactions = 300;
  Opts.Seed = 1234;
  NestServerSim Sim(App.Model, Opts);

  for (unsigned Inner : {1u, 4u, 8u}) {
    NestSimResult R =
        Sim.run(nullptr, outerExtentFor(24, Inner), Inner);
    EXPECT_EQ(R.Stats.count(), 300u) << "load " << Load << " m " << Inner;
    // Throughput can never exceed the offered load (open loop) nor the
    // platform's maximum.
    EXPECT_LE(R.Throughput, Sim.maxThroughput() * 1.05);
  }

  WqLinearMechanism Wq(App.WqLinear);
  NestSimResult R = Sim.run(&Wq, 24, 1);
  EXPECT_EQ(R.Stats.count(), 300u);
}

INSTANTIATE_TEST_SUITE_P(LoadGrid, NestSimProperty,
                         ::testing::Values(0.1, 0.4, 0.7, 0.9, 1.0));

class PipelineSimProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineSimProperty, ItemConservationAndBoundedThroughput) {
  const uint64_t Seed = loggedSeed(GetParam());
  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions Opts;
  Opts.Contexts = 24;
  Opts.Seed = Seed;
  Opts.NumItems = 500;
  PipelineSim Sim(App, Opts);

  const std::vector<std::vector<unsigned>> Configs = {
      {1, 1, 1, 1, 1, 1},
      {1, 6, 6, 5, 5, 1},
      {1, 2, 14, 2, 4, 1},
      {1, 24, 24, 24, 24, 1},
  };
  for (const std::vector<unsigned> &Extents : Configs) {
    PipelineSimResult R = Sim.run(nullptr, Extents);
    EXPECT_EQ(R.ItemsCompleted, 500u);
    const double Bound = Sim.analyticThroughput(Extents);
    EXPECT_LE(R.Throughput, Bound * 1.1)
        << "seed " << Seed << " extents[1] " << Extents[1];
  }

  TbfMechanism Tbf;
  PipelineSimResult R = Sim.run(&Tbf, {});
  EXPECT_EQ(R.ItemsCompleted, 500u);
}

INSTANTIATE_TEST_SUITE_P(SeedGrid, PipelineSimProperty,
                         ::testing::Values(1, 2, 3, 7, 1234));

//===----------------------------------------------------------------------===
// RNG bounds across ranges
//===----------------------------------------------------------------------===

class RngProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngProperty, UniformIntStrictlyBounded) {
  const uint64_t N = GetParam();
  Rng R(N * 7919 + 1);
  for (int I = 0; I != 2000; ++I)
    EXPECT_LT(R.uniformInt(N), N);
}

INSTANTIATE_TEST_SUITE_P(RangeGrid, RngProperty,
                         ::testing::Values(1, 2, 3, 10, 1000, 1ull << 40));

//===----------------------------------------------------------------------===
// Placement invariants across topologies
//===----------------------------------------------------------------------===

struct TopoParams {
  unsigned Sockets;
  unsigned Cores;
};

class PlacementProperty : public ::testing::TestWithParam<TopoParams> {};

TEST_P(PlacementProperty, AllPoliciesProduceValidAssignments) {
  const TopoParams TP = GetParam();
  Topology Topo(TP.Sockets, TP.Cores, 3.0);
  const std::vector<std::vector<unsigned>> ExtentSets = {
      {1, 1}, {1, 6, 6, 5, 5, 1}, {4, 4, 4}, {24, 24}, {2, 14, 2, 4}};
  for (const std::vector<unsigned> &Extents : ExtentSets) {
    for (const Placement &P :
         {placePartitioned(Topo, Extents), placeStriped(Topo, Extents),
          placeContiguous(Topo, Extents)}) {
      ASSERT_EQ(P.Cores.size(), Extents.size());
      unsigned Total = 0;
      for (size_t S = 0; S != Extents.size(); ++S) {
        EXPECT_EQ(P.Cores[S].size(), Extents[S]);
        Total += Extents[S];
        for (unsigned Core : P.Cores[S])
          EXPECT_LT(Core, Topo.totalCores());
      }
      EXPECT_EQ(P.totalReplicas(), Total);
      // Hand-off costs are within the metric's range.
      for (size_t S = 0; S + 1 < P.Cores.size(); ++S) {
        for (RoutingPolicy R :
             {RoutingPolicy::Uniform, RoutingPolicy::LocalityPreferring}) {
          const double Cost = stageHandoffCost(Topo, P, S, R);
          EXPECT_GE(Cost, 0.0);
          EXPECT_LE(Cost, Topo.crossSocketFactor() + 1e-12);
        }
      }
      // Locality routing never costs more than uniform routing on the
      // partitioned placement.
    }
    const Placement Part = placePartitioned(Topo, Extents);
    for (size_t S = 0; S + 1 < Part.Cores.size(); ++S)
      EXPECT_LE(stageHandoffCost(Topo, Part, S,
                                 RoutingPolicy::LocalityPreferring),
                stageHandoffCost(Topo, Part, S, RoutingPolicy::Uniform) +
                    1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(TopoGrid, PlacementProperty,
                         ::testing::Values(TopoParams{1, 4},
                                           TopoParams{2, 2},
                                           TopoParams{4, 6},
                                           TopoParams{8, 3}));

//===----------------------------------------------------------------------===
// Every throughput mechanism respects the thread budget on every decision
//===----------------------------------------------------------------------===

class MechanismBudgetProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(MechanismBudgetProperty, ConfigsStayWithinBudget) {
  const unsigned Budget = GetParam();
  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions Opts;
  Opts.Contexts = Budget;
  Opts.Seed = 11;
  Opts.NumItems = 400;
  PipelineSim Sim(App, Opts);

  TbfMechanism Tbf;
  FdpMechanism Fdp;
  DpmMechanism Dpm;
  std::vector<Mechanism *> Mechanisms = {&Tbf, &Fdp, &Dpm};
  for (Mechanism *M : Mechanisms) {
    PipelineSimResult R = Sim.run(M, {});
    EXPECT_EQ(R.ItemsCompleted, 400u) << M->name();
    unsigned Total = 0;
    for (unsigned E : R.FinalExtents)
      Total += E;
    EXPECT_LE(Total, Budget) << M->name() << " budget " << Budget;
  }
}

INSTANTIATE_TEST_SUITE_P(BudgetGrid, MechanismBudgetProperty,
                         ::testing::Values(6u, 8u, 12u, 24u, 48u));

//===----------------------------------------------------------------------===
// Replay invariants: budget discipline on randomized feature streams
//===----------------------------------------------------------------------===
//
// The replay harness deliberately does NOT clamp proposals to the thread
// budget (core/Replay.h): budget discipline is a property of the
// mechanisms themselves, and these sweeps are where it is checked, on
// streams no golden file ever pinned down. Streams keep "LiveContexts"
// constant so the budget in force is unambiguous per run.

/// A randomized driver-wrapped pipeline stream. \p Live (the
/// "LiveContexts" platform feature) is held constant across steps.
FeatureStream randomPipelineStream(Rng &R, unsigned &LiveOut) {
  FeatureStream S;
  S.Name = "random-pipeline";
  S.Kind = FeatureStream::GraphKind::Pipeline;
  const size_t NumStages = 2 + R.uniformInt(3);
  for (size_t I = 0; I != NumStages; ++I)
    S.Stages.push_back({"s" + std::to_string(I), true});
  // Budget always admits driver + one thread per stage.
  S.MaxThreads = static_cast<unsigned>(NumStages) + 2 +
                 static_cast<unsigned>(R.uniformInt(12));
  const unsigned Live = static_cast<unsigned>(NumStages) + 2 +
                        static_cast<unsigned>(R.uniformInt(
                            S.MaxThreads - NumStages - 1));
  LiveOut = std::min(Live, S.MaxThreads);

  const size_t NumSteps = 8 + R.uniformInt(9);
  double Time = 0.0;
  for (size_t I = 0; I != NumSteps; ++I) {
    ReplayStep Step;
    Time += 0.25 + R.uniform(0.0, 0.5);
    Step.Time = Time;
    Step.Features.push_back({"LiveContexts", static_cast<double>(LiveOut)});
    for (size_t St = 0; St != NumStages; ++St) {
      Step.ExecTime.push_back(R.uniform(0.02, 1.0));
      Step.Load.push_back(R.uniform(0.0, 12.0));
    }
    S.Steps.push_back(std::move(Step));
  }
  return S;
}

/// A randomized server-nest stream. LiveContexts stays at or above the
/// work-queue mechanisms' canonical MMax (8) so their inner extent is
/// always representable within the budget.
FeatureStream randomNestStream(Rng &R, unsigned &LiveOut) {
  FeatureStream S;
  S.Name = "random-nest";
  S.Kind = FeatureStream::GraphKind::ServerNest;
  S.Stages.push_back({"server", true});
  S.MaxThreads = 8 + static_cast<unsigned>(R.uniformInt(17));
  LiveOut = 8 + static_cast<unsigned>(R.uniformInt(S.MaxThreads - 7));

  const size_t NumSteps = 10 + R.uniformInt(11);
  double Time = 0.0;
  for (size_t I = 0; I != NumSteps; ++I) {
    ReplayStep Step;
    Time += 0.25 + R.uniform(0.0, 0.5);
    Step.Time = Time;
    Step.Features.push_back({"LiveContexts", static_cast<double>(LiveOut)});
    Step.ExecTime.push_back(0.2 + R.uniform(0.0, 1.0));
    Step.Load.push_back(R.uniform(0.0, 20.0));
    S.Steps.push_back(std::move(Step));
  }
  return S;
}

/// Asserts the budget invariants on every decision of one replay.
void expectBudgetDiscipline(const ReplayResult &Result, unsigned Live,
                            const std::string &Who) {
  EXPECT_EQ(Result.InvalidProposals, 0u) << Who;
  for (const ReplayDecision &D : Result.Decisions) {
    // The budget the harness recorded is the one the stream pinned.
    EXPECT_EQ(D.Budget, Live) << Who << " decision at step " << D.Step;
    // No single task is ever wider than the budget...
    for (unsigned E : D.Extents)
      EXPECT_LE(E, D.Budget)
          << Who << " decision at step " << D.Step << ": " << D.Config;
    // ...and the extents sum within it.
    EXPECT_LE(D.TotalThreads, D.Budget)
        << Who << " decision at step " << D.Step << ": " << D.Config;
  }
}

class ReplayBudgetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplayBudgetProperty, PipelineMechanismsStayWithinBudget) {
  Rng R(loggedSeed(GetParam()) ^ 0x9e3779b97f4a7c15ULL);
  unsigned Live = 0;
  const FeatureStream Stream = randomPipelineStream(R, Live);

  for (const char *Name : {"TBF", "TB", "FDP"}) {
    std::unique_ptr<Mechanism> Mech = createMechanismByName(Name);
    ASSERT_NE(Mech, nullptr) << Name;
    ReplayMechanismHarness Harness(Stream);
    expectBudgetDiscipline(Harness.run(*Mech), Live, Name);
  }

  // The faithful SEDA controller is uncoordinated by design; the clamped
  // variant must obey the global budget like everything else.
  SedaMechanism Seda({/*HighWatermark=*/6.0, /*LowWatermark=*/1.0,
                      /*PerStageCap=*/0, /*ClampTotal=*/true});
  ReplayMechanismHarness Harness(Stream);
  expectBudgetDiscipline(Harness.run(Seda), Live, "SEDA-clamped");
}

TEST_P(ReplayBudgetProperty, NestMechanismsStayWithinBudget) {
  Rng R(loggedSeed(GetParam()) ^ 0xc2b2ae3d27d4eb4fULL);
  unsigned Live = 0;
  const FeatureStream Stream = randomNestStream(R, Live);

  for (const char *Name : {"WQT-H", "WQ-Linear"}) {
    std::unique_ptr<Mechanism> Mech = createMechanismByName(Name);
    ASSERT_NE(Mech, nullptr) << Name;
    ReplayMechanismHarness Harness(Stream);
    expectBudgetDiscipline(Harness.run(*Mech), Live, Name);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedGrid, ReplayBudgetProperty,
                         ::testing::Range<uint64_t>(0, 12));

//===----------------------------------------------------------------------===
// TPC power-cap invariants under a closed-loop replay
//===----------------------------------------------------------------------===

class TpcPowerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TpcPowerProperty, NeverGrowsUnderOvershootAndSettlesWithinCap) {
  Rng R(loggedSeed(GetParam()) ^ 0xd6e8feb86659fd93ULL);

  // Linear platform power model: idle floor plus a per-thread increment.
  // The cap sits halfway between two achievable totals, strictly below
  // what the thread budget alone would allow, so power is the binding
  // constraint and an overshoot genuinely occurs mid-ramp.
  const double IdleWatts = R.uniform(5.0, 15.0);
  const double WattsPerThread = R.uniform(4.0, 8.0);
  const unsigned FeasibleTotal = 4 + static_cast<unsigned>(R.uniformInt(5));
  const double CapWatts =
      IdleWatts + WattsPerThread * (FeasibleTotal + 0.5);

  FeatureStream S;
  S.Name = "tpc-closed-loop";
  S.Kind = FeatureStream::GraphKind::Pipeline;
  const size_t NumStages = 2 + R.uniformInt(2);
  for (size_t I = 0; I != NumStages; ++I)
    S.Stages.push_back({"s" + std::to_string(I), true});
  S.MaxThreads = FeasibleTotal + 4; // threads alone would over-draw power
  S.PowerBudgetWatts = CapWatts;

  // Constant per-stage service times: throughput then depends only on
  // the extents TPC itself chooses, so Stable does not re-open the
  // search from workload drift and the run converges.
  std::vector<double> Exec;
  for (size_t I = 0; I != NumStages; ++I)
    Exec.push_back(0.1 + R.uniform(0.0, 0.4));
  for (size_t I = 0; I != 30; ++I) {
    ReplayStep Step;
    Step.Time = 0.5 * static_cast<double>(I + 1);
    Step.ExecTime = Exec;
    Step.Load.assign(NumStages, 2.0);
    S.Steps.push_back(std::move(Step));
  }

  TpcMechanism Tpc;
  ReplayMechanismHarness Harness(std::move(S));
  const ParDescriptor &Root = Harness.root();

  // Close the loop: each step observes the power the *currently applied*
  // configuration draws under the linear model.
  Harness.setStepHook([&](size_t, const RegionConfig &Current,
                          std::map<std::string, double> &Features) {
    Features["SystemPower"] =
        IdleWatts + WattsPerThread * totalThreads(Root, Current);
  });

  const ReplayResult Result = Harness.run(Tpc);
  EXPECT_EQ(Result.InvalidProposals, 0u);
  EXPECT_FALSE(Result.Decisions.empty());

  auto ModelWatts = [&](unsigned Threads) {
    return IdleWatts + WattsPerThread * Threads;
  };
  // The configuration in force before each decision; replay starts from
  // the all-ones default (driver + one thread per stage).
  unsigned CurrentTotal = static_cast<unsigned>(NumStages) + 1;
  for (const ReplayDecision &D : Result.Decisions) {
    EXPECT_LE(D.TotalThreads, D.Budget)
        << "step " << D.Step << ": " << D.Config;
    // Ramp grows one thread at a time and only while under the cap, so
    // no accepted configuration overshoots by more than one increment.
    EXPECT_LE(ModelWatts(D.TotalThreads), CapWatts + WattsPerThread + 1e-9)
        << "step " << D.Step << ": " << D.Config;
    // A decision taken while the observed power exceeds the cap must
    // shed threads, never grow.
    if (ModelWatts(CurrentTotal) > CapWatts) {
      EXPECT_LT(D.TotalThreads, CurrentTotal)
          << "step " << D.Step << " grew under overshoot: " << D.Config;
    }
    CurrentTotal = D.TotalThreads;
  }

  // The controller settles, and what it settles on respects the cap.
  EXPECT_LE(ModelWatts(totalThreads(Root, Result.FinalConfig)),
            CapWatts + 1e-9);
  EXPECT_EQ(Tpc.phase(), TpcMechanism::Phase::Stable);
}

INSTANTIATE_TEST_SUITE_P(SeedGrid, TpcPowerProperty,
                         ::testing::Range<uint64_t>(0, 10));

} // namespace

//===- tests/QueueTest.cpp - Concurrent queue tests -------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "queue/BoundedQueue.h"
#include "queue/SpscRing.h"
#include "queue/WorkQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

using namespace dope;

namespace {

TEST(WorkQueue, FifoOrder) {
  WorkQueue<int> Q;
  for (int I = 0; I != 5; ++I)
    Q.push(I);
  for (int I = 0; I != 5; ++I) {
    auto Item = Q.tryPop();
    ASSERT_TRUE(Item.has_value());
    EXPECT_EQ(*Item, I);
  }
  EXPECT_FALSE(Q.tryPop().has_value());
}

TEST(WorkQueue, OccupancyTracksState) {
  WorkQueue<int> Q;
  EXPECT_EQ(Q.size(), 0u);
  Q.push(1);
  Q.push(2);
  EXPECT_EQ(Q.size(), 2u);
  Q.tryPop();
  EXPECT_EQ(Q.size(), 1u);
  EXPECT_EQ(Q.totalPushed(), 2u);
  EXPECT_EQ(Q.totalPopped(), 1u);
}

TEST(WorkQueue, CloseReleasesBlockedConsumer) {
  WorkQueue<int> Q;
  std::atomic<bool> GotNull{false};
  std::thread Consumer([&] {
    auto Item = Q.waitAndPop();
    GotNull.store(!Item.has_value());
  });
  // Give the consumer a chance to block, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Q.close();
  Consumer.join();
  EXPECT_TRUE(GotNull.load());
}

TEST(WorkQueue, CloseDrainsBacklogFirst) {
  WorkQueue<int> Q;
  Q.push(7);
  Q.close();
  auto First = Q.waitAndPop();
  ASSERT_TRUE(First.has_value());
  EXPECT_EQ(*First, 7);
  EXPECT_FALSE(Q.waitAndPop().has_value());
}

TEST(WorkQueue, PushAfterCloseRejected) {
  WorkQueue<int> Q;
  Q.close();
  EXPECT_FALSE(Q.push(1));
  Q.reopen();
  EXPECT_TRUE(Q.push(2));
  EXPECT_TRUE(Q.tryPop().has_value());
}

TEST(WorkQueue, MpmcDeliversEverythingOnce) {
  WorkQueue<int> Q;
  constexpr int PerProducer = 5000;
  constexpr int Producers = 3;
  constexpr int Consumers = 3;
  std::atomic<long long> Sum{0};
  std::atomic<int> Count{0};

  std::vector<std::thread> Threads;
  for (int P = 0; P != Producers; ++P)
    Threads.emplace_back([&, P] {
      for (int I = 0; I != PerProducer; ++I)
        Q.push(P * PerProducer + I);
    });
  for (int C = 0; C != Consumers; ++C)
    Threads.emplace_back([&] {
      for (;;) {
        auto Item = Q.waitAndPop();
        if (!Item)
          return;
        Sum.fetch_add(*Item);
        Count.fetch_add(1);
      }
    });
  for (int P = 0; P != Producers; ++P)
    Threads[static_cast<size_t>(P)].join();
  Q.close();
  for (size_t T = Producers; T != Threads.size(); ++T)
    Threads[T].join();

  const long long N = PerProducer * Producers;
  EXPECT_EQ(Count.load(), N);
  EXPECT_EQ(Sum.load(), N * (N - 1) / 2);
}

TEST(WorkQueue, MultiProducerStressWithLockFreeReaders) {
  // Producers and consumers hammer the queue while reader threads spin
  // on the lock-free monitoring accessors (size/empty/totalPushed/
  // totalPopped) — the LoadCB path, which must never take the mutex or
  // observe counters moving backwards.
  WorkQueue<int> Q;
  constexpr int PerProducer = 20000;
  constexpr int Producers = 4;
  constexpr int Consumers = 4;
  std::atomic<long long> Sum{0};
  std::atomic<int> Count{0};
  std::atomic<bool> Done{false};
  std::atomic<bool> ReaderOk{true};

  std::vector<std::thread> Readers;
  for (int R = 0; R != 2; ++R)
    Readers.emplace_back([&] {
      size_t LastPushed = 0, LastPopped = 0;
      while (!Done.load(std::memory_order_relaxed)) {
        const size_t Pushed = Q.totalPushed();
        const size_t Popped = Q.totalPopped();
        // Lifetime counters are monotone; each is read atomically.
        if (Pushed < LastPushed || Popped < LastPopped)
          ReaderOk.store(false, std::memory_order_relaxed);
        LastPushed = Pushed;
        LastPopped = Popped;
        (void)Q.size();
        (void)Q.empty();
      }
    });

  std::vector<std::thread> Threads;
  for (int P = 0; P != Producers; ++P)
    Threads.emplace_back([&, P] {
      for (int I = 0; I != PerProducer; ++I)
        Q.push(P * PerProducer + I);
    });
  for (int C = 0; C != Consumers; ++C)
    Threads.emplace_back([&] {
      for (;;) {
        auto Item = Q.waitAndPop();
        if (!Item)
          return;
        Sum.fetch_add(*Item);
        Count.fetch_add(1);
      }
    });
  for (int P = 0; P != Producers; ++P)
    Threads[static_cast<size_t>(P)].join();
  Q.close();
  for (size_t T = Producers; T != Threads.size(); ++T)
    Threads[T].join();
  Done.store(true);
  for (std::thread &R : Readers)
    R.join();

  const long long N = static_cast<long long>(PerProducer) * Producers;
  EXPECT_EQ(Count.load(), N);
  EXPECT_EQ(Sum.load(), N * (N - 1) / 2);
  EXPECT_TRUE(ReaderOk.load());
  EXPECT_EQ(Q.totalPushed(), static_cast<size_t>(N));
  EXPECT_EQ(Q.totalPopped(), static_cast<size_t>(N));
  EXPECT_EQ(Q.size(), 0u);
  EXPECT_TRUE(Q.empty());
}

TEST(BoundedQueue, CapacityEnforcedByTryPush) {
  BoundedQueue<int> Q(2);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_FALSE(Q.tryPush(3));
  EXPECT_TRUE(Q.full());
  Q.tryPop();
  EXPECT_TRUE(Q.tryPush(3));
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> Q(1);
  ASSERT_TRUE(Q.push(1));
  std::atomic<bool> Pushed{false};
  std::thread Producer([&] {
    Q.push(2);
    Pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(Pushed.load());
  EXPECT_EQ(*Q.waitAndPop(), 1);
  Producer.join();
  EXPECT_TRUE(Pushed.load());
  EXPECT_EQ(*Q.waitAndPop(), 2);
}

TEST(BoundedQueue, CloseReleasesBlockedProducer) {
  BoundedQueue<int> Q(1);
  ASSERT_TRUE(Q.push(1));
  std::atomic<bool> Returned{false};
  std::atomic<bool> Result{true};
  std::thread Producer([&] {
    Result.store(Q.push(2));
    Returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Q.close();
  Producer.join();
  EXPECT_TRUE(Returned.load());
  EXPECT_FALSE(Result.load());
}

TEST(BoundedQueue, PipelineTransfersAllItems) {
  BoundedQueue<int> Q(4);
  constexpr int N = 20000;
  long long Sum = 0;
  std::thread Producer([&] {
    for (int I = 0; I != N; ++I)
      Q.push(I);
    Q.close();
  });
  for (;;) {
    auto Item = Q.waitAndPop();
    if (!Item)
      break;
    Sum += *Item;
  }
  Producer.join();
  EXPECT_EQ(Sum, static_cast<long long>(N) * (N - 1) / 2);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> R(5);
  EXPECT_EQ(R.capacity(), 8u);
}

TEST(SpscRing, PushPopOrder) {
  SpscRing<int> R(4);
  EXPECT_TRUE(R.push(1));
  EXPECT_TRUE(R.push(2));
  EXPECT_EQ(R.size(), 2u);
  EXPECT_EQ(*R.pop(), 1);
  EXPECT_EQ(*R.pop(), 2);
  EXPECT_FALSE(R.pop().has_value());
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> R(2);
  EXPECT_TRUE(R.push(1));
  EXPECT_TRUE(R.push(2));
  EXPECT_FALSE(R.push(3));
  R.pop();
  EXPECT_TRUE(R.push(3));
}

TEST(SpscRing, TwoThreadStress) {
  SpscRing<int> R(64);
  // Modest N: on a single hardware context this test is a ping-pong of
  // spin loops, so large counts burn wall clock without adding coverage.
  constexpr int N = 20000;
  long long Sum = 0;
  std::thread Producer([&] {
    for (int I = 0; I != N;) {
      if (R.push(I))
        ++I;
    }
  });
  for (int Got = 0; Got != N;) {
    if (auto Item = R.pop()) {
      Sum += *Item;
      ++Got;
    }
  }
  Producer.join();
  EXPECT_EQ(Sum, static_cast<long long>(N) * (N - 1) / 2);
}

} // namespace

//===- sim/ReferenceEventQueue.h - Heap-based event queue ------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-timing-wheel event queue: a binary heap of `std::function`
/// payloads with an `unordered_set` of lazily skipped cancellations.
/// Kept verbatim as (a) the differential-testing oracle for the wheel's
/// dispatch-order contract — identical (time, schedule-order) dispatch
/// under arbitrary schedule/cancel interleavings — and (b) the baseline
/// the perf suite's events/sec comparison is measured against.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_REFERENCEEVENTQUEUE_H
#define DOPE_SIM_REFERENCEEVENTQUEUE_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace dope {

/// Virtual-time event queue with the same contract as EventQueue, kept
/// as a reference implementation. Ids are the raw schedule sequence.
class ReferenceEventQueue {
public:
  using Id = uint64_t;

  ReferenceEventQueue() = default;
  ReferenceEventQueue(const ReferenceEventQueue &) = delete;
  ReferenceEventQueue &operator=(const ReferenceEventQueue &) = delete;

  double now() const { return Now; }

  Id scheduleAt(double Time, std::function<void()> Fn) {
    assert(Fn && "scheduling empty event");
    assert(Time >= Now && "scheduling into the past");
    const Id NewId = NextId++;
    Heap.push({Time, NewId, std::move(Fn)});
    ++Live;
    return NewId;
  }

  Id scheduleAfter(double Delay, std::function<void()> Fn) {
    assert(Delay >= 0.0 && "negative delay");
    return scheduleAt(Now + Delay, std::move(Fn));
  }

  void cancel(Id Which) {
    if (Which == 0 || Which >= NextId)
      return;
    if (Cancelled.insert(Which).second && Live > 0)
      --Live;
  }

  bool step(double EndTime) {
    while (!Heap.empty()) {
      const Entry &Top = Heap.top();
      if (Cancelled.count(Top.Sequence)) {
        Cancelled.erase(Top.Sequence);
        Heap.pop();
        continue;
      }
      if (Top.Time > EndTime)
        return false;
      std::function<void()> Fn = std::move(const_cast<Entry &>(Top).Fn);
      Now = Top.Time;
      Heap.pop();
      --Live;
      Fn();
      return true;
    }
    return false;
  }

  uint64_t runUntil(double EndTime) {
    uint64_t Dispatched = 0;
    while (step(EndTime))
      ++Dispatched;
    if (Now < EndTime)
      Now = EndTime;
    return Dispatched;
  }

  bool empty() const { return Live == 0; }
  size_t pendingEvents() const { return Live; }

private:
  struct Entry {
    double Time;
    Id Sequence;
    std::function<void()> Fn;
  };
  struct Later {
    bool operator()(const Entry &A, const Entry &B) const {
      if (A.Time != B.Time)
        return A.Time > B.Time;
      return A.Sequence > B.Sequence;
    }
  };

  double Now = 0.0;
  Id NextId = 1;
  size_t Live = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> Heap;
  std::unordered_set<Id> Cancelled;
};

} // namespace dope

#endif // DOPE_SIM_REFERENCEEVENTQUEUE_H

//===- mechanisms/Tpc.cpp - Throughput Power Controller --------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Tpc.h"

#include "mechanisms/PipelineView.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dope;

TpcMechanism::TpcMechanism(TpcParams Params) : Params(Params) {}

void TpcMechanism::reset() {
  State = Phase::Init;
  History.clear();
  LastKey.clear();
  PreOvershootKey.clear();
  ExploreTried = 0;
  StableThroughput = 0.0;
}

static std::vector<unsigned> extentsOf(const PipelineView &View) {
  std::vector<unsigned> Extents;
  for (const StageView &SV : View.stages())
    Extents.push_back(SV.Extent);
  return Extents;
}

static unsigned totalOf(const std::vector<unsigned> &Extents) {
  unsigned Total = 0;
  for (unsigned E : Extents)
    Total += E;
  return Total;
}

std::optional<RegionConfig>
TpcMechanism::reconfigure(const ParDescriptor &Region,
                          const RegionSnapshot &Root,
                          const RegionConfig &Current,
                          const MechanismContext &Ctx) {
  std::optional<PipelineView> View =
      PipelineView::resolve(Region, Root, Current);
  if (!View)
    return std::nullopt;

  const std::vector<StageView> &Stages = View->stages();
  const size_t N = Stages.size();
  std::vector<unsigned> Extents = extentsOf(*View);

  // Phase Init: start from all-ones regardless of the initial config.
  if (State == Phase::Init) {
    State = Phase::Ramp;
    LastKey.assign(N, 1);
    return View->makeConfig(LastKey);
  }

  if (!View->fullyMeasured())
    return std::nullopt;

  const double Power = Ctx.feature(PowerFeatureName, 0.0);
  const double Budget = Ctx.PowerBudgetWatts;
  const bool HasBudget = Budget > 0.0;
  const double Throughput = View->systemThroughput();

  // Record what the current configuration delivers.
  History[Extents] = {Throughput, Power};
  const bool Overshoot = HasBudget && Power > Budget;

  auto BestFeasible = [&]() -> Key {
    Key Best;
    double BestThroughput = -1.0;
    for (const auto &[K, R] : History) {
      if (HasBudget && R.Power > Budget)
        continue;
      if (R.Throughput > BestThroughput) {
        Best = K;
        BestThroughput = R.Throughput;
      }
    }
    return Best.empty() ? Key(N, 1) : Best;
  };

  switch (State) {
  case Phase::Init:
    break; // handled above

  case Phase::Ramp: {
    if (Overshoot) {
      // Back off to the configuration prior to the overshoot and explore
      // its same-total neighbourhood.
      PreOvershootKey = BestFeasible();
      ExploreTried = 0;
      State = Phase::Explore;
      LastKey = PreOvershootKey;
      return View->makeConfig(PreOvershootKey);
    }
    if (totalOf(Extents) >= Ctx.effectiveThreads()) {
      State = Phase::Stable;
      StableThroughput = Throughput;
      return std::nullopt;
    }
    // Grow the least-throughput task (paper Sec. 7.3).
    const size_t Bottleneck = View->bottleneckStage();
    if (Bottleneck == PipelineView::npos || !Stages[Bottleneck].IsParallel) {
      // A sequential stage limits throughput; nothing to grow.
      State = Phase::Stable;
      StableThroughput = Throughput;
      return std::nullopt;
    }
    Key Next = Extents;
    ++Next[Bottleneck];
    if (History.count(Next)) {
      // Already evaluated; if it wasn't better, settle.
      if (History[Next].Throughput <=
          Throughput * (1.0 + Params.TargetMargin)) {
        State = Phase::Stable;
        StableThroughput = Throughput;
        return std::nullopt;
      }
    }
    LastKey = Next;
    return View->makeConfig(Next);
  }

  case Phase::Explore: {
    [[maybe_unused]] const unsigned Total = totalOf(PreOvershootKey);
    if (ExploreTried < Params.ExploreBudget) {
      // Generate an untried same-total redistribution: move one thread
      // between a pair of parallel stages.
      for (size_t From = 0; From != N; ++From) {
        if (!Stages[From].IsParallel || PreOvershootKey[From] <= 1)
          continue;
        for (size_t To = 0; To != N; ++To) {
          if (To == From || !Stages[To].IsParallel)
            continue;
          Key Candidate = PreOvershootKey;
          --Candidate[From];
          ++Candidate[To];
          assert(totalOf(Candidate) == Total && "explore changed total");
          if (History.count(Candidate))
            continue;
          ++ExploreTried;
          LastKey = Candidate;
          return View->makeConfig(Candidate);
        }
      }
    }
    // Exploration exhausted: settle on the best recorded feasible
    // configuration.
    const Key Best = BestFeasible();
    State = Phase::Stable;
    StableThroughput = History.count(Best) ? History[Best].Throughput : 0.0;
    LastKey = Best;
    return View->makeConfig(Best);
  }

  case Phase::Stable: {
    if (Overshoot) {
      // Shed a thread from the stage with the most slack.
      size_t Donor = PipelineView::npos;
      double BestCapacity = -1.0;
      for (size_t I = 0; I != N; ++I) {
        if (!Stages[I].IsParallel || Extents[I] <= 1)
          continue;
        const double Capacity = Stages[I].capacity();
        if (Capacity > BestCapacity) {
          Donor = I;
          BestCapacity = Capacity;
        }
      }
      if (Donor == PipelineView::npos)
        return std::nullopt;
      Key Next = Extents;
      --Next[Donor];
      LastKey = Next;
      return View->makeConfig(Next);
    }
    // Throughput drifted: the workload changed — re-enter the loop.
    if (StableThroughput > 0.0 &&
        std::abs(Throughput - StableThroughput) >
            StableThroughput * Params.ReexploreDrift) {
      State = Phase::Ramp;
      return std::nullopt;
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

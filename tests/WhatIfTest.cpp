//===- tests/WhatIfTest.cpp - Causal what-if profiler tests ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The what-if analysis stack, bottom up: spawn-DAG reconstruction from
/// task-instance traces (including lenient reads of torn or garbage
/// lines and shard-merge order independence), critical-path attribution
/// on hand-built DAGs, the throughput projection against the simulator's
/// own analytic bound, recommendation determinism, and the committed
/// golden artifacts (trace, recommendations, warm-start hint, colocation
/// shares). Goldens regenerate via the whatif-regen target
/// (`dope_whatif regen --dir tests/golden`).
///
//===----------------------------------------------------------------------===//

#include "analysis/CriticalPath.h"
#include "analysis/Scenarios.h"
#include "analysis/TaskDag.h"
#include "analysis/WhatIf.h"
#include "core/WarmStart.h"
#include "sim/PipelineSim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

using namespace dope;

#ifndef DOPE_GOLDEN_DIR
#error "DOPE_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(DOPE_GOLDEN_DIR) + "/" + Name;
}

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  std::ostringstream OS;
  OS << IS.rdbuf();
  return OS.str();
}

/// The scenario's canonical task-instance records (deterministic).
std::vector<TraceRecord> scenarioRecords() {
  return runWhatifPipelineScenario(whatifPipelineScenario()).second;
}

/// Structural DAG equality: same instances in the same order with the
/// same parent links.
void expectSameDag(const TaskDag &A, const TaskDag &B) {
  ASSERT_EQ(A.size(), B.size());
  ASSERT_EQ(A.roots(), B.roots());
  ASSERT_EQ(A.taskNames(), B.taskNames());
  for (size_t I = 0; I != A.size(); ++I) {
    const TaskInstance &X = A.instances()[I];
    const TaskInstance &Y = B.instances()[I];
    EXPECT_EQ(X.Task, Y.Task) << "instance " << I;
    EXPECT_EQ(X.Id, Y.Id) << "instance " << I;
    EXPECT_EQ(X.Parent, Y.Parent) << "instance " << I;
    EXPECT_DOUBLE_EQ(X.BeginTime, Y.BeginTime) << "instance " << I;
    EXPECT_DOUBLE_EQ(X.EndTime, Y.EndTime) << "instance " << I;
  }
}

/// A tiny hand-built trace: root "a" [0,1], then "b" spawned by it
/// waiting 0.5 s [1.5, 2.5], then two overlapping "c" children of b.
std::vector<TraceRecord> handBuiltRecords() {
  std::vector<TraceRecord> R;
  auto Begin = [&](double T, const char *Name, double Id, double SpawnerId,
                   const char *Spawner) {
    R.push_back({T, TraceKind::TaskBegin, 0, Name, Id, SpawnerId, Spawner});
  };
  auto End = [&](double T, const char *Name, double Id, double Elapsed) {
    R.push_back({T, TraceKind::TaskEnd, 0, Name, Id, Elapsed, ""});
  };
  Begin(0.0, "a", 1, 0, "");
  End(1.0, "a", 1, 1.0);
  Begin(1.5, "b", 1, 1, "a");
  End(2.5, "b", 1, 1.0);
  Begin(2.5, "c", 1, 1, "b");
  Begin(2.5, "c", 2, 1, "b");
  End(3.0, "c", 1, 0.5);
  End(3.5, "c", 2, 1.0);
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// TaskDag reconstruction
//===----------------------------------------------------------------------===//

TEST(TaskDag, ReconstructsPipelineParentage) {
  const TaskDag Dag = TaskDag::build(scenarioRecords());

  // 400 items through 4 stages, all completed.
  EXPECT_EQ(Dag.size(), 1600u);
  EXPECT_EQ(Dag.completedCount(), 1600u);
  EXPECT_EQ(Dag.openCount(), 0u);

  // Stage order recovered from first appearance.
  const std::vector<std::string> Expected = {"load", "rank", "compress",
                                             "write"};
  EXPECT_EQ(Dag.taskNames(), Expected);

  // Only the first stage's instances are roots.
  EXPECT_EQ(Dag.roots().size(), 400u);
  for (size_t Root : Dag.roots())
    EXPECT_EQ(Dag.instances()[Root].Task, "load");

  // Every non-root descends from the upstream stage's instance for the
  // same item id.
  for (const TaskInstance &Inst : Dag.instances()) {
    if (Inst.Parent == TaskInstance::npos) {
      EXPECT_EQ(Inst.Task, "load");
      continue;
    }
    const TaskInstance &Parent = Dag.instances()[Inst.Parent];
    EXPECT_EQ(Parent.Id, Inst.Id);
    const auto It = std::find(Expected.begin(), Expected.end(), Inst.Task);
    ASSERT_NE(It, Expected.begin());
    EXPECT_EQ(Parent.Task, *(It - 1));
  }
}

TEST(TaskDag, OrderInvariantUnderShuffleAndShardMerge) {
  std::vector<TraceRecord> Records = scenarioRecords();
  const TaskDag Oracle = TaskDag::build(Records);

  // A seeded shuffle: any permutation of the multiset is the same DAG.
  std::vector<TraceRecord> Shuffled = Records;
  std::mt19937 Rng(7);
  std::shuffle(Shuffled.begin(), Shuffled.end(), Rng);
  expectSameDag(Oracle, TaskDag::build(std::move(Shuffled)));

  // A sharded run's post-merge trace: records dealt round-robin to three
  // shards, then concatenated shard by shard (per-shard order intact,
  // global order scrambled).
  std::vector<TraceRecord> Merged;
  for (size_t Shard = 0; Shard != 3; ++Shard)
    for (size_t I = Shard; I < Records.size(); I += 3)
      Merged.push_back(Records[I]);
  expectSameDag(Oracle, TaskDag::build(std::move(Merged)));
}

TEST(TaskDag, LenientReaderSkipsGarbageLines) {
  std::vector<TraceRecord> Records = scenarioRecords();
  const TaskDag Oracle = TaskDag::build(Records);

  std::ostringstream OS;
  writeTraceJsonl(Records, OS);
  std::string Text = OS.str();

  // Wedge a non-JSON line and a non-object line into the middle.
  const size_t Mid = Text.find('\n', Text.size() / 2);
  ASSERT_NE(Mid, std::string::npos);
  Text.insert(Mid + 1, "{torn garbage not json\n[1,2,3]\n");

  std::istringstream IS(Text);
  TraceReadStats Stats;
  const TaskDag Dag = TaskDag::fromJsonl(IS, &Stats);
  EXPECT_EQ(Stats.Skipped, 2u);
  EXPECT_EQ(Stats.Parsed, Records.size());
  expectSameDag(Oracle, Dag);
}

TEST(TaskDag, TornFinalRecordLeavesInstanceOpen) {
  std::vector<TraceRecord> Records = scenarioRecords();
  const TaskDag Oracle = TaskDag::build(Records);

  std::ostringstream OS;
  writeTraceJsonl(Records, OS);
  std::string Text = OS.str();

  // A crash mid-write tears the final line (the last TaskEnd): cut it in
  // half. The reader skips it and the instance stays open.
  ASSERT_EQ(Text.back(), '\n');
  const size_t LastLine = Text.rfind('\n', Text.size() - 2);
  ASSERT_NE(LastLine, std::string::npos);
  const size_t Keep = LastLine + 1 + (Text.size() - LastLine) / 2;
  Text.resize(Keep);

  std::istringstream IS(Text);
  TraceReadStats Stats;
  const TaskDag Dag = TaskDag::fromJsonl(IS, &Stats);
  EXPECT_EQ(Stats.Skipped, 1u);
  EXPECT_EQ(Stats.Parsed, Records.size() - 1);
  EXPECT_EQ(Dag.size(), Oracle.size());
  EXPECT_EQ(Dag.openCount(), 1u);
  EXPECT_EQ(Dag.completedCount(), Oracle.completedCount() - 1);
}

//===----------------------------------------------------------------------===//
// Critical path
//===----------------------------------------------------------------------===//

TEST(CriticalPath, HandBuiltChainAttribution) {
  const TaskDag Dag = TaskDag::build(handBuiltRecords());
  ASSERT_EQ(Dag.size(), 4u);
  const CriticalPathProfile P = computeCriticalPath(Dag);

  // Work: 1 + 1 + 0.5 + 1.
  EXPECT_NEAR(P.TotalWorkSeconds, 3.5, 1e-12);
  EXPECT_NEAR(P.WallSeconds, 3.5, 1e-12);
  // Span: a(1) + wait(0.5) + b(1) + wait(0) + the slower c(1).
  EXPECT_NEAR(P.SpanSeconds, 3.5, 1e-12);
  const std::vector<std::string> Critical = {"a", "b", "c"};
  EXPECT_EQ(P.CriticalTasks, Critical);

  ASSERT_EQ(P.Stages.size(), 3u);
  EXPECT_EQ(P.Stages[0].Task, "a");
  EXPECT_NEAR(P.Stages[1].WaitSeconds, 0.5, 1e-12);
  EXPECT_EQ(P.Stages[0].MaxConcurrent, 1u);
  EXPECT_EQ(P.Stages[1].MaxConcurrent, 1u);
  // The two c instances overlap on [2.5, 3.0).
  EXPECT_EQ(P.Stages[2].MaxConcurrent, 2u);
  EXPECT_NEAR(P.Stages[2].WorkSeconds, 1.5, 1e-12);
}

TEST(CriticalPath, ScenarioProfileFindsTheStarvedStage) {
  const TaskDag Dag = TaskDag::build(scenarioRecords());
  const CriticalPathProfile P = computeCriticalPath(Dag);

  ASSERT_EQ(P.Stages.size(), 4u);
  // rank is the heavy stage: most work, essentially all the wait.
  const StageProfile &Rank = P.Stages[1];
  EXPECT_EQ(Rank.Task, "rank");
  for (const StageProfile &SP : P.Stages)
    EXPECT_GE(Rank.WorkSeconds, SP.WorkSeconds);
  EXPECT_GT(Rank.WaitSeconds, 100.0);
  // Its measured service time tracks the configured 0.24 s mean.
  EXPECT_NEAR(Rank.MeanExecSeconds, 0.24, 0.03);
  // The run admits far more parallelism than it achieved.
  EXPECT_GT(P.InherentParallelism, 2.0 * P.AchievedParallelism);
}

//===----------------------------------------------------------------------===//
// What-if model
//===----------------------------------------------------------------------===//

TEST(WhatIf, ProjectionMatchesSimAnalyticBound) {
  const WhatIfPipelineScenario Scenario = whatifPipelineScenario();
  const WhatIfModel Model =
      WhatIfModel::fromApp(Scenario.App, Scenario.Opts.Contexts);
  PipelineSim Sim(Scenario.App, Scenario.Opts);

  // With sequential stages at 1 the projection must reproduce the
  // simulator's own analytic fixed point exactly — prediction error then
  // measures model error, never solver divergence.
  const std::vector<std::vector<unsigned>> Cases = {
      {1, 1, 1, 1}, {1, 2, 2, 1}, {1, 8, 3, 1}, {1, 12, 5, 1}};
  for (const std::vector<unsigned> &E : Cases)
    EXPECT_NEAR(Model.projectThroughput(E),
                Sim.analyticThroughput(E, /*Fused=*/false), 1e-9);
}

TEST(WhatIf, FromProfileInfersParallelismFromOverlap) {
  const CriticalPathProfile P =
      computeCriticalPath(TaskDag::build(scenarioRecords()));
  const WhatIfModel Model = WhatIfModel::fromProfile(P, 24);

  // load/write ran at DoP 1 and never overlapped: the trace cannot prove
  // them parallelizable, so the model must not grow them. rank/compress
  // overlapped at 2.
  const std::vector<unsigned> Baseline = {1, 2, 2, 1};
  EXPECT_EQ(Model.BaselineExtents, Baseline);
  ASSERT_EQ(Model.Parallel.size(), 4u);
  EXPECT_FALSE(Model.Parallel[0]);
  EXPECT_TRUE(Model.Parallel[1]);
  EXPECT_TRUE(Model.Parallel[2]);
  EXPECT_FALSE(Model.Parallel[3]);
}

TEST(WhatIf, RecommendationsDeterministicAndRanked) {
  const CriticalPathProfile P =
      computeCriticalPath(TaskDag::build(scenarioRecords()));
  const WhatIfModel Model = WhatIfModel::fromProfile(P, 24);

  const std::vector<Recommendation> A = recommendExtents(Model, 24, 5);
  const std::vector<Recommendation> B = recommendExtents(Model, 24, 5);
  ASSERT_FALSE(A.empty());
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Extents, B[I].Extents);
    EXPECT_DOUBLE_EQ(A[I].PredictedThroughput, B[I].PredictedThroughput);
  }
  for (size_t I = 1; I != A.size(); ++I)
    EXPECT_GE(A[I - 1].PredictedThroughput, A[I].PredictedThroughput);

  // The winner grows only the observably-parallel stages and predicts a
  // real speedup over the measured baseline.
  EXPECT_EQ(A.front().Extents[0], 1u);
  EXPECT_EQ(A.front().Extents[3], 1u);
  EXPECT_GT(A.front().Extents[1], 2u);
  EXPECT_GT(A.front().PredictedSpeedup, 2.0);
}

TEST(WhatIf, TopRecommendationValidatesWithinBound) {
  const WhatIfPipelineScenario Scenario = whatifPipelineScenario();
  const CriticalPathProfile P =
      computeCriticalPath(TaskDag::build(scenarioRecords()));
  const WhatIfModel Model = WhatIfModel::fromProfile(
      P, Scenario.Opts.Contexts, Scenario.App.OversubPenalty,
      Scenario.App.ThreadOverheadPenalty);
  const std::vector<Recommendation> Recs =
      recommendExtents(Model, Scenario.Opts.Contexts, 1);
  ASSERT_FALSE(Recs.empty());

  PipelineSim Sim(Scenario.App, Scenario.Opts);
  const ValidationReport Report =
      validateRecommendation(Sim, Recs.front(), 0.15);
  EXPECT_TRUE(Report.Ok) << "predicted " << Report.Predicted << " actual "
                         << Report.Actual << " rel_error "
                         << Report.RelError;
  // And the recommendation actually helps: re-simulated throughput beats
  // the traced baseline run by a wide margin.
  const double Baseline =
      runWhatifPipelineScenario(Scenario).first.Throughput;
  EXPECT_GT(Report.Actual, 2.0 * Baseline);
}

TEST(WhatIf, ColocationSharesValidateWithinBound) {
  const WhatIfColocationScenario Scenario = whatifColocationScenario();
  const ShareRecommendation Rec =
      recommendShares(Scenario.Tenants, Scenario.Opts.Contexts);
  ASSERT_EQ(Rec.Shares.size(), Scenario.Tenants.size());
  unsigned Total = 0;
  for (unsigned S : Rec.Shares)
    Total += S;
  EXPECT_EQ(Total, Scenario.Opts.Contexts);

  const ValidationReport Report =
      validateShares(Scenario.Tenants, Scenario.Opts, Rec, 0.15);
  EXPECT_TRUE(Report.Ok) << "predicted " << Report.Predicted << " actual "
                         << Report.Actual << " rel_error "
                         << Report.RelError;
}

//===----------------------------------------------------------------------===//
// Committed goldens
//===----------------------------------------------------------------------===//

TEST(WhatIfGolden, TraceMatchesCommitted) {
  std::ostringstream OS;
  writeTraceJsonl(scenarioRecords(), OS);
  const std::string Committed =
      readFileOrEmpty(goldenPath("whatif-pipeline.trace.jsonl"));
  ASSERT_FALSE(Committed.empty())
      << "missing golden trace (run the whatif-regen target)";
  EXPECT_EQ(OS.str(), Committed)
      << "scenario trace drifted from the committed golden (intentional "
         "change? regenerate with the whatif-regen target)";
}

TEST(WhatIfGolden, RecommendationsMatchCommitted) {
  const WhatIfPipelineScenario Scenario = whatifPipelineScenario();
  const std::string Committed =
      readFileOrEmpty(goldenPath("whatif-pipeline.trace.jsonl"));
  ASSERT_FALSE(Committed.empty());

  // The committed recommendations must be reproducible from the
  // committed *trace* — the full offline path a user of dope_whatif
  // runs, not a shortcut through in-memory records.
  std::istringstream IS(Committed);
  TraceReadStats Stats;
  const TaskDag Dag = TaskDag::fromJsonl(IS, &Stats);
  EXPECT_EQ(Stats.Skipped, 0u);
  const WhatIfModel Model = WhatIfModel::fromProfile(
      computeCriticalPath(Dag), Scenario.Opts.Contexts,
      Scenario.App.OversubPenalty, Scenario.App.ThreadOverheadPenalty);
  const std::vector<Recommendation> Recs =
      recommendExtents(Model, Scenario.Opts.Contexts, 5);

  EXPECT_EQ(toJson(Recs).dump() + "\n",
            readFileOrEmpty(goldenPath("whatif-pipeline.recommend.json")))
      << "recommendations drifted from the committed golden (intentional "
         "change? regenerate with the whatif-regen target)";

  const WarmStartHint Hint = makeWarmStartHint("FDP", Recs.front());
  EXPECT_EQ(writeWarmStartHint(Hint) + "\n",
            readFileOrEmpty(goldenPath("whatif-pipeline.hint.json")));
}

TEST(WhatIfGolden, SharesMatchCommitted) {
  const WhatIfColocationScenario Scenario = whatifColocationScenario();
  const ShareRecommendation Rec =
      recommendShares(Scenario.Tenants, Scenario.Opts.Contexts);
  EXPECT_EQ(toJson(Rec).dump() + "\n",
            readFileOrEmpty(goldenPath("whatif-colocation.shares.json")))
      << "share split drifted from the committed golden (intentional "
         "change? regenerate with the whatif-regen target)";
}

//===- support/Table.cpp - Aligned text tables and CSV --------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>

using namespace dope;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {
  assert(!this->Header.empty() && "table needs at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

const std::vector<std::string> &Table::row(size_t Index) const {
  assert(Index < Rows.size() && "row index out of range");
  return Rows[Index];
}

std::string Table::renderText() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t C = 0; C != Row.size(); ++C) {
      Line += Row[C];
      if (C + 1 != Row.size())
        Line += std::string(Widths[C] - Row[C].size() + 2, ' ');
    }
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Header);
  size_t RuleWidth = 0;
  for (size_t C = 0; C != Widths.size(); ++C)
    RuleWidth += Widths[C] + (C + 1 != Widths.size() ? 2 : 0);
  Out += std::string(RuleWidth, '-') + '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

static std::string escapeCsvCell(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Out = "\"";
  for (char Ch : Cell) {
    if (Ch == '"')
      Out += '"';
    Out += Ch;
  }
  Out += '"';
  return Out;
}

std::string Table::renderCsv() const {
  auto RenderRow = [](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t C = 0; C != Row.size(); ++C) {
      Line += escapeCsvCell(Row[C]);
      if (C + 1 != Row.size())
        Line += ',';
    }
    Line += '\n';
    return Line;
  };
  std::string Out = RenderRow(Header);
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

std::string Table::formatDouble(double X, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, X);
  return Buffer;
}

std::string Table::formatInt(long long X) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%lld", X);
  return Buffer;
}

//===- apps/NestApps.h - Two-level nest application models -----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Calibrated models of the paper's online-service applications with
/// two-level loop nests (Table 4): video transcoding (x264), option
/// pricing (swaptions), data compression (bzip), and image editing
/// (gimp/oilify). Each model pairs a sequential per-transaction service
/// time T1 with an inner-parallelization speedup curve S(m), calibrated
/// against the numbers the paper reports:
///
///   * x264: T_exec improves up to 6.3x, achieved with 8 threads per
///     video (Sec. 2); best static "latency" config uses Mmax = 8.
///   * bzip: the minimum inner extent with any speedup is 4 (Table 4,
///     last column), which starves WQ-Linear of useful configurations
///     (Sec. 8.2.1).
///   * swaptions/gimp: DoPmin = 2, moderately scalable DOALL loops.
///
/// The real inputs (yuv4mpeg videos, SPEC ref input, PARSEC simlarge)
/// are not redistributable here; the substitution is documented in
/// DESIGN.md. Mechanisms only observe queue occupancy and per-task
/// execution times, and these models generate both with the paper's
/// reported shapes.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_APPS_NESTAPPS_H
#define DOPE_APPS_NESTAPPS_H

#include "mechanisms/WqLinear.h"
#include "mechanisms/WqtH.h"
#include "sim/NestServerSim.h"

#include <string>
#include <vector>

namespace dope {

/// A nest application model plus the administrator-facing tuning the
/// paper's evaluation used for it.
struct NestAppBundle {
  NestAppModel Model;
  /// Inner extent of the static "latency" configuration (the paper's
  /// Mmax: efficiency knee).
  unsigned MMax = 8;
  /// WQT-H tuning for this application.
  WqtHParams WqtH;
  /// WQ-Linear tuning for this application.
  WqLinearParams WqLinear;
};

/// Video transcoding (x264 on yuv4mpeg videos).
NestAppBundle makeX264App();

/// Option pricing via Monte Carlo simulation (swaptions).
NestAppBundle makeSwaptionsApp();

/// Data compression of the SPEC ref input (bzip).
NestAppBundle makeBzipApp();

/// Image editing with the oilify plugin (gimp).
NestAppBundle makeGimpApp();

/// All four response-time applications, in the paper's Fig. 11 order.
std::vector<NestAppBundle> allNestApps();

} // namespace dope

#endif // DOPE_APPS_NESTAPPS_H

//===- bench/micro_primitives.cpp - Runtime primitive microbenchmarks ------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the run-time primitives on the
/// executive's hot paths: queue operations (every pipeline item crosses
/// at least two), metric recording (every Task::begin/end pair), load
/// sampling, RNG draws, and configuration bookkeeping. These quantify
/// why full per-instance monitoring stays in the noise (Sec. 8.2).
///
//===----------------------------------------------------------------------===//

#include "core/Config.h"
#include "core/FeatureRegistry.h"
#include "core/Monitor.h"
#include "queue/BoundedQueue.h"
#include "queue/SpscRing.h"
#include "queue/WorkQueue.h"
#include "support/MathUtils.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace dope;

namespace {

void BM_WorkQueuePushPop(benchmark::State &State) {
  WorkQueue<int> Q;
  for (auto _ : State) {
    Q.push(1);
    benchmark::DoNotOptimize(Q.tryPop());
  }
}
BENCHMARK(BM_WorkQueuePushPop);

void BM_WorkQueueOccupancy(benchmark::State &State) {
  WorkQueue<int> Q;
  for (int I = 0; I != 64; ++I)
    Q.push(I);
  for (auto _ : State)
    benchmark::DoNotOptimize(Q.size());
}
BENCHMARK(BM_WorkQueueOccupancy);

void BM_BoundedQueuePushPop(benchmark::State &State) {
  BoundedQueue<int> Q(1024);
  for (auto _ : State) {
    Q.tryPush(1);
    benchmark::DoNotOptimize(Q.tryPop());
  }
}
BENCHMARK(BM_BoundedQueuePushPop);

void BM_SpscRingPushPop(benchmark::State &State) {
  SpscRing<int> R(1024);
  for (auto _ : State) {
    R.push(1);
    benchmark::DoNotOptimize(R.pop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_TaskMetricsRecord(benchmark::State &State) {
  TaskMetrics M;
  double T = 0.001;
  for (auto _ : State) {
    M.recordExecTime(T);
    T += 1e-9;
  }
  benchmark::DoNotOptimize(M.execTime());
}
BENCHMARK(BM_TaskMetricsRecord);

void BM_FeatureRegistryGet(benchmark::State &State) {
  FeatureRegistry R;
  R.registerFeature("SystemPower", [] { return 540.0; });
  double Now = 0.0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(R.getValue("SystemPower", Now));
    Now += 0.001;
  }
}
BENCHMARK(BM_FeatureRegistryGet);

void BM_RngLogNormal(benchmark::State &State) {
  Rng R(42);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.logNormal(1.0, 0.2));
}
BENCHMARK(BM_RngLogNormal);

void BM_WaterfillSplit(benchmark::State &State) {
  const std::vector<double> Costs = {0.0, 0.8, 8.0, 1.2, 2.0, 0.0};
  for (auto _ : State)
    benchmark::DoNotOptimize(waterfillSplit(24, Costs));
}
BENCHMARK(BM_WaterfillSplit);

void BM_ProportionalSplit(benchmark::State &State) {
  const std::vector<double> Weights = {0.8, 8.0, 1.2, 2.0};
  for (auto _ : State)
    benchmark::DoNotOptimize(proportionalSplit(24, Weights, 1));
}
BENCHMARK(BM_ProportionalSplit);

} // namespace

BENCHMARK_MAIN();

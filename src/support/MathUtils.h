//===- support/MathUtils.h - Small numeric helpers ------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Numeric helpers shared by mechanisms and the simulator: clamping,
/// proportional integer splits, and relative comparison.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_MATHUTILS_H
#define DOPE_SUPPORT_MATHUTILS_H

#include <cstddef>
#include <vector>

namespace dope {

/// Clamps \p X into [Lo, Hi].
double clampDouble(double X, double Lo, double Hi);

/// Clamps \p X into [Lo, Hi].
unsigned clampUnsigned(unsigned X, unsigned Lo, unsigned Hi);

/// Returns true when |A - B| <= Tol * max(|A|, |B|, 1).
bool approxEqual(double A, double B, double Tol = 1e-9);

/// Splits \p Total units across buckets proportionally to \p Weights using
/// largest-remainder apportionment, guaranteeing at least \p MinEach per
/// bucket when Total >= MinEach * Weights.size().
///
/// This is the core arithmetic behind the proportional mechanisms
/// (Fig. 10 of the paper assigns "DoP proportional to execution time").
/// Zero or negative weights are treated as zero; if all weights are zero
/// the split is even. The returned values sum to exactly \p Total unless
/// the minimum floor makes that impossible, in which case every bucket
/// gets \p MinEach.
std::vector<unsigned> proportionalSplit(unsigned Total,
                                        const std::vector<double> &Weights,
                                        unsigned MinEach = 0);

/// Integer max-min waterfilling: splits \p Total units so that the
/// minimum of N_i / UnitCost_i is maximized (each bucket's "capacity" is
/// its unit count divided by its per-unit cost). Buckets with
/// non-positive cost receive exactly \p PinnedUnits units and are
/// excluded from the optimization.
///
/// This is the integer-exact version of "assign DoP inversely
/// proportional to throughput": greedily handing each next thread to the
/// stage with the lowest capacity is optimal for the max-min objective.
/// Returns PinnedUnits for pinned buckets and >= 1 for the others
/// whenever Total allows.
std::vector<unsigned> waterfillSplit(unsigned Total,
                                     const std::vector<double> &UnitCosts,
                                     unsigned PinnedUnits = 1);

} // namespace dope

#endif // DOPE_SUPPORT_MATHUTILS_H

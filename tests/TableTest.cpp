//===- tests/TableTest.cpp - Table rendering tests --------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

TEST(Table, TextAlignsColumns) {
  Table T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer-name", "22"});
  const std::string Out = T.renderText();
  // Header, rule, two rows.
  EXPECT_NE(Out.find("name         value"), std::string::npos);
  EXPECT_NE(Out.find("longer-name  22"), std::string::npos);
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(Table, RowAccess) {
  Table T({"a"});
  T.addRow({"1"});
  T.addRow({"2"});
  EXPECT_EQ(T.rowCount(), 2u);
  EXPECT_EQ(T.columnCount(), 1u);
  EXPECT_EQ(T.row(1)[0], "2");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table T({"a", "b"});
  T.addRow({"plain", "with,comma"});
  T.addRow({"with\"quote", "ok"});
  const std::string Csv = T.renderCsv();
  EXPECT_NE(Csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(Csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(Csv.find("a,b\n"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(Table::formatDouble(2.0, 0), "2");
  EXPECT_EQ(Table::formatInt(-42), "-42");
}

TEST(Table, EmptyTableRendersHeaderOnly) {
  Table T({"only"});
  const std::string Out = T.renderText();
  EXPECT_NE(Out.find("only"), std::string::npos);
  EXPECT_EQ(T.rowCount(), 0u);
}

} // namespace

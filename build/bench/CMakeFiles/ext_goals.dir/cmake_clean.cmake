file(REMOVE_RECURSE
  "CMakeFiles/ext_goals.dir/ext_goals.cpp.o"
  "CMakeFiles/ext_goals.dir/ext_goals.cpp.o.d"
  "ext_goals"
  "ext_goals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_goals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- mechanisms/Dpm.h - Dynamic Pipeline Mapping --------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DPM [Moreno et al., Euro-Par 2008], which the paper cites as "a
/// technique similar to FDP" (Sec. 9). Where FDP climbs on *measured
/// throughput* and reverts failed moves, DPM follows per-stage
/// *utilization* directly: each decision moves one thread from the most
/// under-utilized stage to the most over-utilized one, with a deadband
/// so a balanced pipeline stops churning. Simpler than FDP (no history,
/// no reverts) but blind to effects its utilization model misses —
/// exactly the contrast the related-work discussion draws.
///
/// Implemented as a DoPE mechanism to demonstrate, once more, that new
/// policies slot in without touching application code.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_DPM_H
#define DOPE_MECHANISMS_DPM_H

#include "core/Mechanism.h"

namespace dope {

/// Tuning parameters of DPM.
struct DpmParams {
  /// Minimum utilization spread (max - min) that justifies moving a
  /// thread; below this the mapping is considered balanced.
  double Deadband = 0.15;
};

/// Dynamic Pipeline Mapping.
class DpmMechanism : public Mechanism {
public:
  explicit DpmMechanism(DpmParams Params = DpmParams());

  std::string name() const override { return "DPM"; }

  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx)
      override;

private:
  DpmParams Params;
};

} // namespace dope

#endif // DOPE_MECHANISMS_DPM_H

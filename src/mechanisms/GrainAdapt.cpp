//===- mechanisms/GrainAdapt.cpp - Adaptive grain control ------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/GrainAdapt.h"

#include <algorithm>
#include <cmath>

using namespace dope;

GrainAdaptMechanism::GrainAdaptMechanism(GrainAdaptParams P)
    : Params(P) {}

void GrainAdaptMechanism::reset() {
  State = WalkState::Walking;
  PlateauTaskSeconds = 0.0;
  PlateauBudget = 0;
}

std::optional<RegionConfig>
GrainAdaptMechanism::reconfigure(const ParDescriptor &Region,
                                 const RegionSnapshot &Root,
                                 const RegionConfig &Current,
                                 const MechanismContext &Ctx) {
  // This mechanism only understands tree regions; anything else keeps
  // its configuration (proposing a grain elsewhere would be rejected by
  // validateConfig anyway).
  if (!Region.isTree() || Current.Tasks.empty() || Root.Tasks.empty())
    return std::nullopt;

  const TaskSnapshot &TS = Root.Tasks.front();
  if (TS.Invocations == 0)
    return std::nullopt; // unmeasured: nothing to walk from yet

  const unsigned Budget = Ctx.effectiveThreads();
  const double MeanTask = Ctx.feature("MeanTaskSeconds", TS.ExecTime);
  const double StealRate = Ctx.feature("StealRate", 0.0);

  const unsigned Extent = std::max(1u, Current.Tasks.front().Extent);
  const unsigned Grain =
      std::max(Params.MinGrain, Current.Tasks.front().Grain);

  // The plateau holds until the accepted cost signal drifts or the
  // thread budget moves (FDP's re-explore idiom).
  if (State == WalkState::Converged) {
    const bool BudgetMoved = Budget != PlateauBudget;
    const bool Drifted =
        PlateauTaskSeconds > 0.0 && MeanTask > 0.0 &&
        std::abs(MeanTask - PlateauTaskSeconds) >
            Params.ReexploreDrift * PlateauTaskSeconds;
    if (!BudgetMoved && !Drifted)
      return std::nullopt;
    State = WalkState::Walking;
  }

  unsigned NextGrain = Grain;
  if (StealRate > Params.ThrashStealsPerSec &&
      MeanTask < Params.MinTaskSeconds) {
    // Thrash: tasks too fine — thieves churn on tiny work. Coarsen.
    NextGrain = std::min(Params.MaxGrain, Grain * 2);
  } else if (TS.Load < Params.StarveLoadFactor * Extent &&
             Grain > Params.MinGrain) {
    // Starvation: too few outstanding tasks to feed the workers while
    // the region is still measured as running. Refine.
    NextGrain = std::max(Params.MinGrain, Grain / 2);
  }

  RegionConfig Next = Current;
  Next.Tasks.front().Grain = NextGrain;
  // One knob besides the grain: keep the worker set sized to the
  // budget, so lease grants and revocations take effect here.
  Next.Tasks.front().Extent = Budget;

  if (Next == Current) {
    State = WalkState::Converged;
    PlateauTaskSeconds = MeanTask;
    PlateauBudget = Budget;
    return std::nullopt;
  }
  return Next;
}

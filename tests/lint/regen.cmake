# Regenerates every golden under tests/lint/expected/ from the current
# dope_lint binary: one expected/<fixture>.txt per fixtures/<fixture>.cpp,
# produced with the exact flags the conformance suite replays
# (--basenames --quiet). Invoked by the `lint-regen` custom target —
# review the diffs before committing, like trace-regen and whatif-regen.
if(NOT DOPE_LINT_BIN OR NOT LINT_DIR)
  message(FATAL_ERROR "run via the lint-regen target (needs DOPE_LINT_BIN "
                      "and LINT_DIR)")
endif()

file(GLOB Fixtures "${LINT_DIR}/fixtures/*.cpp")
list(SORT Fixtures)
foreach(Fixture IN LISTS Fixtures)
  get_filename_component(Name "${Fixture}" NAME_WE)
  execute_process(
    COMMAND "${DOPE_LINT_BIN}" --basenames --quiet "${Fixture}"
    OUTPUT_VARIABLE Out
    RESULT_VARIABLE Code)
  # Exit 1 just means findings (the point of the bad_* fixtures);
  # anything above 1 is a usage or I/O failure.
  if(Code GREATER 1)
    message(FATAL_ERROR "dope_lint failed on ${Fixture} (exit ${Code})")
  endif()
  file(WRITE "${LINT_DIR}/expected/${Name}.txt" "${Out}")
  message(STATUS "regenerated expected/${Name}.txt")
endforeach()

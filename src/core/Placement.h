//===- core/Placement.h - Stage-to-core placement ---------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Placement of pipeline stage replicas onto hardware threads. Beyond
/// choosing *which* tasks run and *how many* threads each gets, the
/// executive decides *where* they run: adjacent pipeline stages placed
/// on the same socket communicate through the shared cache instead of
/// the interconnect (paper Sec. 1, third bullet: "on which hardware
/// thread should each stage be placed to maximize locality of
/// communication").
///
/// For a pipeline, locality is maximized by *partitioning*: every socket
/// hosts a proportional slice of every stage (a mini-pipeline), and the
/// runtime routes each item to a consumer on the producer's socket
/// whenever one has capacity. The oblivious baseline stripes each stage
/// across sockets and routes uniformly. Three pieces model this:
///
///   * placePartitioned / placeStriped / placeContiguous — placements;
///   * stageHandoffCost — expected per-item hand-off cost between two
///     adjacent stages under uniform or locality-preferring routing;
///   * meanCommCost — the per-item total across the pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_PLACEMENT_H
#define DOPE_CORE_PLACEMENT_H

#include "core/Topology.h"

#include <cstddef>
#include <vector>

namespace dope {

/// Core assignment for every replica of every stage: Cores[S][R] is the
/// core of stage S's replica R. When the configuration demands more
/// threads than the platform has cores, assignments wrap (time-shared
/// cores).
struct Placement {
  std::vector<std::vector<unsigned>> Cores;

  unsigned totalReplicas() const {
    unsigned Total = 0;
    for (const std::vector<unsigned> &Stage : Cores)
      Total += static_cast<unsigned>(Stage.size());
    return Total;
  }
};

/// How produced items are matched to downstream replicas.
enum class RoutingPolicy {
  /// Any consumer replica, uniformly (an oblivious work queue).
  Uniform,
  /// Prefer a consumer on the producer's socket while one has capacity.
  LocalityPreferring,
};

/// Locality-maximizing placement: every socket receives a proportional
/// slice of every stage, so items can flow end to end without leaving
/// their socket. Combine with RoutingPolicy::LocalityPreferring.
Placement placePartitioned(const Topology &Topo,
                           const std::vector<unsigned> &Extents);

/// Oblivious baseline: stripe each stage's replicas across the sockets.
Placement placeStriped(const Topology &Topo,
                       const std::vector<unsigned> &Extents);

/// Naive packing: fill cores in order, stage after stage (adjacent
/// stages only meet at socket boundaries — poor locality for wide
/// stages, provided for comparison).
Placement placeContiguous(const Topology &Topo,
                          const std::vector<unsigned> &Extents);

/// Expected communication cost of one item's hand-off from stage
/// \p From to stage \p From + 1 under placement \p P and the given
/// routing policy. Items are produced in proportion to the producer
/// replicas per socket and absorbed in proportion to consumer capacity.
double stageHandoffCost(const Topology &Topo, const Placement &P,
                        size_t From,
                        RoutingPolicy Routing = RoutingPolicy::Uniform);

/// Expected total communication cost per item across the pipeline: the
/// sum of stageHandoffCost over all adjacent stage pairs.
double meanCommCost(const Topology &Topo, const Placement &P,
                    RoutingPolicy Routing = RoutingPolicy::Uniform);

} // namespace dope

#endif // DOPE_CORE_PLACEMENT_H

//===- core/Builders.h - High-level parallelism builders --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mechanical-boilerplate elimination. The paper observes that "the
/// process of defining the functors is mechanical — it can be
/// simplified with compiler support" (Sec. 3.1). These builders play the
/// compiler's role as a library: they generate the functors, queues,
/// load callbacks, and the suspend/drain/reopen protocol for the common
/// parallelism shapes, so an application states only its stage bodies.
///
///   * buildQueueDoAll — a DOALL loop over a work queue;
///   * PipelineBuilder — a typed linear pipeline source -> stages ->
///     sink, with inter-stage queues wired automatically;
///   * buildDriver — wraps one or more region alternatives (e.g. a
///     pipeline and its fused variant) under a driver task for the
///     throughput mechanisms.
///
/// Everything the builders create observes the reconfiguration protocol:
/// head tasks honour SUSPENDED from Task::begin by closing their output
/// queue, downstream stages drain to queue closure, and InitCBs reopen
/// the queues when the region restarts.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_BUILDERS_H
#define DOPE_CORE_BUILDERS_H

#include "core/Dope.h"
#include "core/Task.h"
#include "core/TaskTree.h"
#include "queue/BoundedQueue.h"
#include "queue/WorkQueue.h"

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <typeindex>
#include <vector>

namespace dope {

/// Builds a parallel DOALL task that drains \p Input, applying \p Body
/// to every item. The queue must already be closed (batch) or be closed
/// by the producer; the task finishes when the queue is closed and
/// drained. Monitoring (begin/end) and the load callback are generated.
template <typename T>
Task *buildQueueDoAll(TaskGraph &Graph, std::string Name,
                      WorkQueue<T> &Input, std::function<void(T &)> Body) {
  assert(Body && "DOALL needs a body");
  TaskFn Fn = [&Input, Body = std::move(Body)](TaskRuntime &RT) {
    if (RT.begin() == TaskStatus::Suspended)
      return TaskStatus::Suspended;
    std::optional<T> Item = Input.waitAndPop();
    if (!Item)
      return TaskStatus::Finished;
    Body(*Item);
    if (RT.end() == TaskStatus::Suspended)
      return TaskStatus::Suspended;
    return TaskStatus::Executing;
  };
  LoadFn Load = [&Input] { return static_cast<double>(Input.size()); };
  return Graph.createTask(std::move(Name), std::move(Fn), std::move(Load),
                          Graph.parDescriptor());
}

/// Fluent builder for a typed linear pipeline. Usage:
/// \code
///   PipelineBuilder B(Graph);
///   B.source<int>("read", [&]() -> std::optional<int> { ... });
///   B.stage<int, std::string>("render", [](int X) { ... });
///   B.sink<std::string>("write", [](std::string S) { ... });
///   ParDescriptor *Pipe = B.build();
/// \endcode
class PipelineBuilder {
public:
  explicit PipelineBuilder(TaskGraph &Graph) : Graph(Graph) {}

  /// Sets the capacity of inter-stage queues created *after* this call.
  /// Bounded queues give the pipeline backpressure: a fast producer
  /// blocks instead of racing arbitrarily far ahead of its consumer —
  /// which both bounds memory and keeps the producer alive long enough
  /// for load signals (and suspensions) to mean something. The default
  /// is effectively unbounded.
  PipelineBuilder &queueCapacity(size_t Capacity) {
    assert(Capacity > 0 && "queues need capacity");
    NextCapacity = Capacity;
    return *this;
  }

  /// The head of the pipeline: \p Produce returns items until
  /// std::nullopt ends the stream. Sources are sequential.
  ///
  /// Queue closure is a FiniCB, not an in-functor action: the executive
  /// runs a task's FiniCB only after *all* of its replicas have stopped,
  /// which is what makes the drain race-free — a replica observing
  /// end-of-input must not cut off a sibling that still holds an
  /// in-flight item.
  template <typename Out>
  PipelineBuilder &source(std::string Name,
                          std::function<std::optional<Out>()> Produce) {
    assert(Tasks.empty() && "source must come first");
    auto OutQ = std::make_shared<BoundedQueue<Out>>(NextCapacity);
    TaskFn Fn = [OutQ, Produce = std::move(Produce)](TaskRuntime &RT) {
      if (RT.begin() == TaskStatus::Suspended)
        return TaskStatus::Suspended; // FiniCB will signal downstream
      std::optional<Out> Item = Produce();
      if (!Item)
        return TaskStatus::Finished;
      OutQ->push(std::move(*Item));
      (void)RT.end();
      return TaskStatus::Executing;
    };
    HookFn Init = [OutQ] { OutQ->reopen(); };
    HookFn Fini = [OutQ] { OutQ->close(); };
    Tasks.push_back(Graph.createTask(std::move(Name), std::move(Fn),
                                     LoadFn(), Graph.seqDescriptor(),
                                     std::move(Init), std::move(Fini)));
    rememberQueue<Out>(OutQ);
    return *this;
  }

  /// An interior stage transforming In items to Out items. Parallel by
  /// default.
  template <typename In, typename Out>
  PipelineBuilder &stage(std::string Name,
                         std::function<Out(In)> Transform,
                         bool Parallel = true) {
    auto InQ = takeQueue<In>();
    auto OutQ = std::make_shared<BoundedQueue<Out>>(NextCapacity);
    TaskFn Fn = [InQ, OutQ,
                 Transform = std::move(Transform)](TaskRuntime &RT) {
      std::optional<In> Item = InQ->waitAndPop();
      if (!Item)
        return TaskStatus::Finished; // FiniCB closes the output
      (void)RT.begin();
      Out Result = Transform(std::move(*Item));
      (void)RT.end();
      OutQ->push(std::move(Result));
      return TaskStatus::Executing;
    };
    LoadFn Load = [InQ] { return static_cast<double>(InQ->size()); };
    HookFn Init = [OutQ] { OutQ->reopen(); };
    HookFn Fini = [OutQ] { OutQ->close(); };
    Tasks.push_back(Graph.createTask(
        std::move(Name), std::move(Fn), std::move(Load),
        Parallel ? Graph.parDescriptor() : Graph.seqDescriptor(),
        std::move(Init), std::move(Fini)));
    rememberQueue<Out>(OutQ);
    return *this;
  }

  /// The tail of the pipeline, consuming items. Sequential by default.
  template <typename In>
  PipelineBuilder &sink(std::string Name, std::function<void(In)> Consume,
                        bool Parallel = false) {
    auto InQ = takeQueue<In>();
    TaskFn Fn = [InQ, Consume = std::move(Consume)](TaskRuntime &RT) {
      std::optional<In> Item = InQ->waitAndPop();
      if (!Item)
        return TaskStatus::Finished;
      (void)RT.begin();
      Consume(std::move(*Item));
      (void)RT.end();
      return TaskStatus::Executing;
    };
    LoadFn Load = [InQ] { return static_cast<double>(InQ->size()); };
    Tasks.push_back(Graph.createTask(
        std::move(Name), std::move(Fn), std::move(Load),
        Parallel ? Graph.parDescriptor() : Graph.seqDescriptor()));
    return *this;
  }

  /// Finalizes the pipeline into a parallel region (first task = master).
  ParDescriptor *build() {
    assert(Tasks.size() >= 2 && "a pipeline needs a source and a sink");
    assert(!HasOpenOutput && "last stage must be a sink");
    ParDescriptor *Region = Graph.createRegion(Tasks);
    Tasks.clear();
    return Region;
  }

  size_t stageCount() const { return Tasks.size(); }

private:
  template <typename T>
  void rememberQueue(std::shared_ptr<BoundedQueue<T>> Q) {
    LastQueue = std::move(Q);
    LastType = std::type_index(typeid(T));
    HasOpenOutput = true;
  }

  template <typename T> std::shared_ptr<BoundedQueue<T>> takeQueue() {
    assert(HasOpenOutput && "stage/sink needs an upstream source/stage");
    assert(LastType == std::type_index(typeid(T)) &&
           "stage input type does not match upstream output type");
    auto Q = std::static_pointer_cast<BoundedQueue<T>>(LastQueue);
    HasOpenOutput = false;
    return Q;
  }

  TaskGraph &Graph;
  std::vector<Task *> Tasks;
  size_t NextCapacity = size_t(1) << 20; // effectively unbounded
  std::shared_ptr<void> LastQueue;
  std::type_index LastType{typeid(void)};
  bool HasOpenOutput = false;
};

/// What buildTaskTree returns: the region to hand to Dope::create plus
/// the live handles an application drives the computation through.
struct TreeRegionHandle {
  /// The tree-marked region (single recursive PAR task).
  ParDescriptor *Region = nullptr;
  /// The recursive task.
  Task *TreeTask = nullptr;
  /// The engine; submit roots and close injection through it. Shared so
  /// the generated functor and the application co-own it safely.
  std::shared_ptr<TreeEngine> Engine;

  /// Submits a root range; see TreeEngine::submit.
  bool submit(uint64_t Lo, uint64_t Hi) { return Engine->submit(Lo, Hi); }

  /// Closes injection so the region can finish once work drains.
  void close() { Engine->close(); }

  /// Wires the engine's monitoring into \p D: registers the "StealRate"
  /// platform feature (successful steals per second), the
  /// "MeanTaskSeconds" feature (the tree task's smoothed per-instance
  /// execution time — the GrainAdapt mechanism's cost signal), and
  /// points the engine's steal tracing at the executive's tracer.
  /// Call after Dope::create; \p D must outlive the features' use.
  void registerFeatures(Dope &D) const {
    Engine->setTracer(D.tracer());
    std::shared_ptr<TreeEngine> E = Engine;
    D.registerCB("StealRate", [E] { return E->stealRateSample(); });
    Task *T = TreeTask;
    D.registerCB("MeanTaskSeconds", [&D, T] { return D.getExecTime(T); });
  }
};

/// Builds a recursive task-tree region over \p Body: a single PAR task
/// whose replicas drive a shared TreeEngine, acquiring ranges from
/// work-stealing deques (roots from the central injection queue) under
/// the executive's begin/end protocol. The region's configuration
/// carries the GrainSize knob (TaskConfig::Grain), so mechanisms adapt
/// the split threshold exactly like they adapt extents.
///
/// \p MaxWorkers sizes the engine's worker-index space; it must be at
/// least the executive's MaxThreads so any extent the mechanism picks
/// has a deque. \p DefaultGrain seeds defaultConfig; \p AutoSplit as in
/// TreeEngine::Options. The replica functor observes the protocol:
/// SUSPENDED between acquire and execute returns the task to a deque
/// (nothing is lost), idle replicas park with a bounded timeout so they
/// re-observe suspend flags, and the task finishes only when injection
/// is closed and all spawned work has run.
inline TreeRegionHandle buildTaskTree(TaskGraph &Graph, std::string Name,
                                      TreeBodyFn Body, unsigned MaxWorkers,
                                      unsigned DefaultGrain = 64,
                                      bool AutoSplit = true,
                                      uint64_t Seed = 0x9e3779b9ull) {
  assert(Body && "a tree region needs a body");
  TreeEngine::Options Opts;
  Opts.MaxWorkers = MaxWorkers;
  Opts.Seed = Seed;
  Opts.AutoSplit = AutoSplit;
  Opts.Name = Name;
  auto Engine = std::make_shared<TreeEngine>(std::move(Opts));
  Engine->setBody(std::move(Body));

  TaskFn Fn = [Engine](TaskRuntime &RT) {
    const unsigned W = RT.replicaIndex();
    uint64_t Item;
    unsigned From = 0;
    // Acquire (and park when starved) before begin: the begin..end
    // bracket then times only actual task execution, keeping
    // MeanTaskSeconds a clean cost-per-task signal. A starved replica
    // still passes through the bracket once per park so it observes
    // suspension; those probes record near-zero samples only.
    bool Got = Engine->acquire(W, Item, From);
    if (!Got) {
      if (Engine->done())
        return TaskStatus::Finished;
      Engine->parkIdle([] { return false; },
                       std::chrono::microseconds(200));
      Got = Engine->acquire(W, Item, From);
      if (!Got && Engine->done())
        return TaskStatus::Finished;
    }
    if (RT.begin() == TaskStatus::Suspended) {
      if (Got)
        // Still counted as outstanding — hand it back for the next
        // epoch; no task is lost across the reconfiguration.
        Engine->giveBack(W, Item);
      return TaskStatus::Suspended;
    }
    if (Got)
      Engine->execute(W, RT.grain(), Item, From);
    return RT.end();
  };
  LoadFn Load = [Engine] {
    return static_cast<double>(Engine->outstandingTasks());
  };
  Task *T = Graph.createTask(std::move(Name), std::move(Fn), std::move(Load),
                             Graph.parDescriptor());

  TreeRegionHandle Handle;
  Handle.Region = Graph.createTreeRegion(T, DefaultGrain);
  Handle.TreeTask = T;
  Handle.Engine = std::move(Engine);
  return Handle;
}

/// Wraps region alternatives under a sequential driver task whose functor
/// executes the active alternative once via TaskRuntime::wait — the
/// canonical shape the throughput mechanisms (TBF and friends) navigate.
inline Task *buildDriver(TaskGraph &Graph, std::string Name,
                         std::vector<ParDescriptor *> Alternatives) {
  assert(!Alternatives.empty() && "driver needs at least one alternative");
  TaskFn Fn = [](TaskRuntime &RT) {
    // SUSPENDED and FAILED propagate to the executive; everything else
    // means the alternative ran one lifetime to completion.
    const TaskStatus Inner = RT.wait();
    return Inner == TaskStatus::Executing ? TaskStatus::Finished : Inner;
  };
  return Graph.createTask(
      std::move(Name), std::move(Fn), LoadFn(),
      Graph.createDescriptor(TaskKind::Sequential, std::move(Alternatives)));
}

} // namespace dope

#endif // DOPE_CORE_BUILDERS_H

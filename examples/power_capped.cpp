//===- examples/power_capped.cpp - Power-capped throughput with TPC --------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The administrator story of Sec. 4: "maximize throughput with 24
/// threads, 600 Watts" — here with a 540 W target (90% of the model
/// platform's peak, i.e. 60% of its dynamic CPU range).
///
/// The example drives the ferret application model on the simulated
/// 24-context platform: the TPC mechanism reads the "SystemPower"
/// platform feature (registered with the PDU-like 13-samples-per-minute
/// lag), ramps the degree of parallelism until the budget is used,
/// explores, and stabilizes. The printed trace is the Fig. 14 story in
/// miniature.
///
//===----------------------------------------------------------------------===//

#include "apps/PipelineApps.h"
#include "mechanisms/Goal.h"
#include "sim/PipelineSim.h"

#include <cstdio>

using namespace dope;

int main() {
  PipelineAppModel Ferret = makeFerretApp();

  PipelineSimOptions Opts;
  Opts.Contexts = 24;
  Opts.Seed = 7;
  Opts.NumItems = 2500;
  Opts.DecisionIntervalSeconds = 5.0;
  Opts.TraceWindowSeconds = 60.0;
  Opts.Power = PowerModel(24, 450.0, 6.25);
  Opts.PowerBudgetWatts = 0.9 * Opts.Power.peakWatts();
  Opts.PowerSampleIntervalSeconds = 60.0 / 13.0;

  PipelineSim Sim(Ferret, Opts);

  // Administrator: power-capped throughput; the default mechanism for
  // that goal is TPC.
  PerformanceGoal Goal;
  Goal.Obj = Objective::MaxThroughputPowerCapped;
  Goal.MaxThreads = 24;
  Goal.PowerBudgetWatts = Opts.PowerBudgetWatts;
  std::unique_ptr<Mechanism> Tpc = makeDefaultMechanism(Goal);

  PipelineSimResult R = Sim.run(Tpc.get(), {});

  std::printf("power_capped: ferret under TPC, budget %.0f W (90%% of "
              "peak)\n\n",
              Opts.PowerBudgetWatts);
  std::printf("%10s  %10s  %12s\n", "time (s)", "power (W)",
              "tput (q/s)");
  for (size_t I = 0; I < R.PowerSeries.size(); I += 13) {
    const TimeSeries::Point &P = R.PowerSeries.point(I);
    const double Tput =
        R.ThroughputSeries.meanOver(P.Time - 60.0, P.Time + 1e-9);
    std::printf("%10.0f  %10.1f  %12.3f\n", P.Time, P.Value, Tput);
  }

  std::printf("\ncompleted %llu queries in %.0f s (%.3f queries/s), "
              "%llu reconfigurations\n",
              static_cast<unsigned long long>(R.ItemsCompleted),
              R.TotalSeconds, R.Throughput,
              static_cast<unsigned long long>(R.Reconfigurations));

  // Sanity: the run must finish, spend most of its time at the target,
  // and never idle at the unconstrained maximum.
  const double StablePower =
      R.PowerSeries.meanOver(R.TotalSeconds * 0.5, R.TotalSeconds * 0.9);
  const bool AtTarget = StablePower > 500.0 &&
                        StablePower < Opts.PowerBudgetWatts + 12.5;
  std::printf("stable-phase mean power: %.1f W (%s)\n", StablePower,
              AtTarget ? "at target" : "OFF TARGET");
  return R.ItemsCompleted == Opts.NumItems && AtTarget ? 0 : 1;
}

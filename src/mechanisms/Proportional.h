//===- mechanisms/Proportional.h - Exec-time-proportional DoP --*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The example mechanism of Figure 10 in the paper: assign each task a
/// DoP extent proportional to its (normalized) execution time, recursing
/// into inner loops with the task's share of the thread budget. "The
/// intuition ... is that tasks that take longer to execute should be
/// assigned more resources."
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_PROPORTIONAL_H
#define DOPE_MECHANISMS_PROPORTIONAL_H

#include "core/Mechanism.h"

namespace dope {

/// Exec-time-proportional DoP assignment (paper Fig. 10).
class ProportionalMechanism : public Mechanism {
public:
  ProportionalMechanism() = default;

  std::string name() const override { return "Proportional"; }

  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx)
      override;

private:
  /// Assigns \p Budget threads to the tasks of one region, recursing into
  /// active inner alternatives with each task's share.
  std::vector<TaskConfig> assignRegion(const ParDescriptor &Region,
                                       const RegionSnapshot &Snap,
                                       const std::vector<TaskConfig> &Current,
                                       unsigned Budget) const;
};

} // namespace dope

#endif // DOPE_MECHANISMS_PROPORTIONAL_H

//===- mechanisms/WqtH.cpp - Work Queue Threshold with Hysteresis ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/WqtH.h"

#include "mechanisms/ServerNest.h"

#include <cassert>

using namespace dope;

WqtHMechanism::WqtHMechanism(WqtHParams Params) : Params(Params) {
  assert(Params.MMax >= 1 && "Mmax must be positive");
  assert(Params.NOn >= 1 && Params.NOff >= 1 && "hysteresis must be >= 1");
}

std::optional<RegionConfig>
WqtHMechanism::reconfigure(const ParDescriptor &Region,
                           const RegionSnapshot &Root,
                           const RegionConfig &Current,
                           const MechanismContext &Ctx) {
  (void)Current;
  if (!isServerNest(Region))
    return std::nullopt;
  assert(!Root.Tasks.empty() && "snapshot is empty");

  // The outer task's load callback reports the work-queue occupancy.
  const double Occupancy = Root.Tasks.front().LastLoad;

  if (Occupancy < Params.QueueThreshold) {
    ++BelowCount;
    AboveCount = 0;
  } else {
    ++AboveCount;
    BelowCount = 0;
  }

  if (!InPar && BelowCount > Params.NOff) {
    InPar = true;
    BelowCount = 0;
  } else if (InPar && AboveCount > Params.NOn) {
    InPar = false;
    AboveCount = 0;
  }

  const unsigned Inner = InPar ? Params.MMax : 1;
  const unsigned Outer = outerExtentFor(Ctx.effectiveThreads(), Inner);
  return makeServerConfig(Region, Outer, Inner, Params.AltIndex);
}

void WqtHMechanism::seedWarmStart(const WarmStartHint &Hint) {
  if (!Hint.appliesTo(name()) || Hint.Extents.size() != 2)
    return;
  StartInPar = Hint.Extents[1] > 1;
  InPar = StartInPar;
  BelowCount = 0;
  AboveCount = 0;
}

void WqtHMechanism::reset() {
  // The hinted start state survives reset(): a restart should resume in
  // the regime the profile predicted, not the cold SEQ default.
  InPar = StartInPar;
  BelowCount = 0;
  AboveCount = 0;
}

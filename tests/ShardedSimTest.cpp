//===- tests/ShardedSimTest.cpp - Sharded-sim differential harness -------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The determinism proof for the sharded simulation core: the colocation
// simulator at Shards=1 (the inline, synchronization-free oracle — the
// byte-identical descendant of the historical sequential loop) is
// differentially compared against Shards=2/4/8 across many logged
// seeds, honest and chaotic schedules, arbiter outages, and shared-RNG
// fault injection. "Identical" means bit-identical: every per-tenant
// counter and float, the fairness summary, the allocation timeline, the
// protocol journal record-for-record, and the simulated-event count.
// Traces are compared through canonicalizeTrace, which erases only the
// writer-thread id — the one legitimately shard-dependent field.
//
// Override the seed base with DOPE_TEST_SEED to soak new streams; every
// run logs the base so failures replay exactly.
//
//===----------------------------------------------------------------------===//

#include "sim/ChaosInvariants.h"
#include "sim/ColocationSim.h"
#include "sim/FaultInjector.h"
#include "sim/ShardedPipeline.h"
#include "support/Random.h"
#include "support/Trace.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace dope;

namespace {

constexpr double EpochSeconds = 2.0;
constexpr double LeaseTtl = 5.0;
constexpr unsigned Contexts = 32;
constexpr double Duration = 40.0;

/// Mixed platform population: latency frontends and throughput batch
/// pipelines, enough tenants that 8 shards all own work.
std::vector<ColocationTenantSpec> platformTenants() {
  std::vector<ColocationTenantSpec> Tenants;
  for (int F = 0; F != 3; ++F) {
    ColocationTenantSpec T;
    T.Tenant.Name = "frontend" + std::to_string(F);
    T.Tenant.Goal = TenantGoal::ResponseTime;
    T.Tenant.Weight = 2.0;
    T.Tenant.MinThreads = 2;
    T.Tenant.SloSeconds = 0.5;
    T.Kind = ColocationTenantSpec::AppKind::NestServer;
    T.Nest.Name = T.Tenant.Name;
    T.Nest.SeqServiceSeconds = 0.05;
    T.Nest.Curve = SpeedupCurve(0.1, 0.2);
    T.ArrivalRate = 20.0 + 5.0 * F;
    Tenants.push_back(std::move(T));
  }
  const char *Names[6] = {"batch", "miner", "indexer", "etl", "ocr", "rank"};
  for (int B = 0; B != 6; ++B) {
    ColocationTenantSpec T;
    T.Tenant.Name = Names[B];
    T.Tenant.Goal = TenantGoal::Throughput;
    T.Tenant.Weight = 1.0;
    T.Kind = ColocationTenantSpec::AppKind::Pipeline;
    T.Pipeline.Name = Names[B];
    T.Pipeline.Stages = {{"decode", true, 0.02, 0.15},
                         {"work", true, 0.1, 0.15},
                         {"sink", true, 0.03, 0.15}};
    T.ArrivalRate = 40.0 + 15.0 * B;
    Tenants.push_back(std::move(T));
  }
  return Tenants;
}

enum class Scenario {
  Honest,         // no misbehavior
  Chaos,          // crash + silent window + byzantine + envelope violator
  Outage,         // arbiter kill + warm-trace restart over the chaos mix
  InjectedFaults, // Chaos plus shared-RNG heartbeat drops
};

void applyScenario(std::vector<ColocationTenantSpec> &Tenants, Scenario S) {
  if (S == Scenario::Honest)
    return;
  Tenants[0].Misbehavior.SilentFromSeconds = 14.0;
  Tenants[0].Misbehavior.SilentUntilSeconds = 24.0;
  Tenants[3].Misbehavior.CrashSeconds = 17.3;
  Tenants[4].Misbehavior.ByzantineFromSeconds = 10.0;
  Tenants[4].Misbehavior.NonMonotoneClock = true;
  Tenants[5].Misbehavior.EnvelopeViolationThreads = 3;
}

ColocationSimResult runOnce(Scenario S, unsigned Shards, uint64_t Seed,
                            Tracer *Trace = nullptr) {
  std::vector<ColocationTenantSpec> Tenants = platformTenants();
  applyScenario(Tenants, S);

  ColocationSimOptions Opts;
  Opts.Contexts = Contexts;
  Opts.Seed = Seed;
  Opts.DurationSeconds = Duration;
  Opts.StepSeconds = 0.05;
  Opts.WarmupSeconds = 4.0;
  Opts.Shards = Shards;
  Opts.Policy = ColocationPolicy::Arbiter;
  Opts.Arbiter.EpochSeconds = EpochSeconds;
  Opts.Arbiter.LeaseTtlSeconds = LeaseTtl;
  Opts.TraceSink = Trace;
  if (S == Scenario::Outage) {
    Opts.Outage.KillSeconds = 18.0;
    Opts.Outage.RestartSeconds = 24.0;
    Opts.Outage.Mode = ArbiterOutage::RestartMode::WarmTrace;
  }

  FaultPlan Plan;
  FaultInjector Faults(Plan, Seed);
  if (S == Scenario::InjectedFaults) {
    Plan.HeartbeatDropProbability = 0.2;
    Faults = FaultInjector(Plan, Seed);
    Opts.Faults = &Faults;
  }

  ColocationSim Sim(std::move(Tenants), Opts);
  return Sim.run();
}

/// Bit-identical comparison of two runs. \p What names the pair in
/// failure messages ("seed=S shards=N").
void expectIdentical(const ColocationSimResult &Oracle,
                     const ColocationSimResult &Sharded,
                     const std::string &What) {
  SCOPED_TRACE(What);
  ASSERT_EQ(Oracle.Tenants.size(), Sharded.Tenants.size());
  for (size_t I = 0; I != Oracle.Tenants.size(); ++I) {
    const TenantStats &A = Oracle.Tenants[I];
    const TenantStats &B = Sharded.Tenants[I];
    SCOPED_TRACE("tenant " + A.Name);
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.LatencySensitive, B.LatencySensitive);
    EXPECT_EQ(A.Weight, B.Weight);
    EXPECT_EQ(A.SloSeconds, B.SloSeconds);
    EXPECT_EQ(A.Arrived, B.Arrived);
    EXPECT_EQ(A.Completed, B.Completed);
    EXPECT_EQ(A.Shed, B.Shed);
    EXPECT_EQ(A.SloHits, B.SloHits);
    EXPECT_EQ(A.LeaseChanges, B.LeaseChanges);
    EXPECT_EQ(A.ThreadSeconds, B.ThreadSeconds);
    EXPECT_EQ(A.Responses.count(), B.Responses.count());
    EXPECT_EQ(A.Responses.meanResponseTime(), B.Responses.meanResponseTime());
    EXPECT_EQ(A.Responses.meanExecTime(), B.Responses.meanExecTime());
    EXPECT_EQ(A.Responses.meanWaitTime(), B.Responses.meanWaitTime());
    EXPECT_EQ(A.Responses.responsePercentile(0.95),
              B.Responses.responsePercentile(0.95));
    EXPECT_EQ(A.Responses.maxResponseTime(), B.Responses.maxResponseTime());
    EXPECT_EQ(A.goalAttainment(), B.goalAttainment());
  }
  EXPECT_EQ(Oracle.Fairness.AggregateAttainment,
            Sharded.Fairness.AggregateAttainment);
  EXPECT_EQ(Oracle.Fairness.MinAttainment, Sharded.Fairness.MinAttainment);
  EXPECT_EQ(Oracle.Fairness.JainIndex, Sharded.Fairness.JainIndex);
  EXPECT_EQ(Oracle.LeaseChanges, Sharded.LeaseChanges);
  EXPECT_EQ(Oracle.DurationSeconds, Sharded.DurationSeconds);
  EXPECT_EQ(Oracle.SimulatedEvents, Sharded.SimulatedEvents);

  ASSERT_EQ(Oracle.AllocationTimeline.size(), Sharded.AllocationTimeline.size());
  for (size_t I = 0; I != Oracle.AllocationTimeline.size(); ++I) {
    EXPECT_EQ(Oracle.AllocationTimeline[I].Time,
              Sharded.AllocationTimeline[I].Time);
    EXPECT_EQ(Oracle.AllocationTimeline[I].Granted,
              Sharded.AllocationTimeline[I].Granted)
        << "allocation sample " << I;
  }

  ASSERT_EQ(Oracle.ProtocolJournal.size(), Sharded.ProtocolJournal.size());
  for (size_t I = 0; I != Oracle.ProtocolJournal.size(); ++I) {
    const TraceRecord &A = Oracle.ProtocolJournal[I];
    const TraceRecord &B = Sharded.ProtocolJournal[I];
    SCOPED_TRACE("journal record " + std::to_string(I));
    EXPECT_EQ(A.Time, B.Time);
    EXPECT_EQ(A.Kind, B.Kind);
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.A, B.A);
    EXPECT_EQ(A.B, B.B);
    EXPECT_EQ(A.Detail, B.Detail);
  }
}

class ShardedColocationDifferential
    : public ::testing::TestWithParam<Scenario> {};

/// The core differential sweep: ten logged seeds, oracle vs 2/4/8
/// shards, bit-identical everything.
TEST_P(ShardedColocationDifferential, MatchesOracleAcrossSeeds) {
  const Scenario S = GetParam();
  const uint64_t Base = loggedTestSeed(42);
  for (uint64_t Offset = 0; Offset != 10; ++Offset) {
    const uint64_t Seed = Base + Offset;
    const ColocationSimResult Oracle = runOnce(S, 1, Seed);
    EXPECT_GT(Oracle.SimulatedEvents, 0u);
    for (unsigned Shards : {2u, 4u, 8u}) {
      const ColocationSimResult Sharded = runOnce(S, Shards, Seed);
      expectIdentical(Oracle, Sharded,
                      "seed=" + std::to_string(Seed) +
                          " shards=" + std::to_string(Shards));
    }
  }
}

/// Chaos invariants hold at every shard count — the sharded runs obey
/// the same lease-protocol safety properties the sequential sim does.
TEST_P(ShardedColocationDifferential, ChaosInvariantsHoldAtEveryShardCount) {
  const Scenario S = GetParam();
  const uint64_t Seed = loggedTestSeed(42);
  ChaosInvariantOptions Inv;
  Inv.PlatformThreads = Contexts;
  Inv.LeaseTtlSeconds = LeaseTtl;
  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    const ColocationSimResult R = runOnce(S, Shards, Seed);
    const ChaosInvariantReport Report =
        checkChaosInvariants(R.ProtocolJournal, Inv);
    EXPECT_TRUE(Report.ok()) << "shards=" << Shards << ": "
                             << (Report.Violations.empty()
                                     ? ""
                                     : Report.Violations.front().Message);
    EXPECT_GT(Report.HeartbeatRecords, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ShardedColocationDifferential,
                         ::testing::Values(Scenario::Honest, Scenario::Chaos,
                                           Scenario::Outage,
                                           Scenario::InjectedFaults),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case Scenario::Honest:
                             return "Honest";
                           case Scenario::Chaos:
                             return "Chaos";
                           case Scenario::Outage:
                             return "Outage";
                           case Scenario::InjectedFaults:
                             return "InjectedFaults";
                           }
                           return "?";
                         });

/// Traces drained from different shard counts canonicalize to the same
/// sequence: the only shard-dependent field is the writer-thread id.
TEST(ShardedColocationTrace, CanonicalTracesMatchAcrossShardCounts) {
  const uint64_t Seed = loggedTestSeed(42);
  Tracer OracleTrace;
  const ColocationSimResult Oracle =
      runOnce(Scenario::Chaos, 1, Seed, &OracleTrace);
  std::vector<TraceRecord> Want = OracleTrace.drain();
  canonicalizeTrace(Want);
  ASSERT_FALSE(Want.empty());

  for (unsigned Shards : {2u, 4u}) {
    Tracer ShardTrace;
    const ColocationSimResult Sharded =
        runOnce(Scenario::Chaos, Shards, Seed, &ShardTrace);
    expectIdentical(Oracle, Sharded, "traced shards=" + std::to_string(Shards));
    std::vector<TraceRecord> Got = ShardTrace.drain();
    canonicalizeTrace(Got);
    ASSERT_EQ(Want.size(), Got.size()) << "shards=" << Shards;
    for (size_t I = 0; I != Want.size(); ++I) {
      SCOPED_TRACE("shards=" + std::to_string(Shards) + " record " +
                   std::to_string(I));
      EXPECT_EQ(Want[I].Time, Got[I].Time);
      EXPECT_EQ(Want[I].Kind, Got[I].Kind);
      EXPECT_EQ(Want[I].Name, Got[I].Name);
      EXPECT_EQ(Want[I].A, Got[I].A);
      EXPECT_EQ(Want[I].B, Got[I].B);
      EXPECT_EQ(Want[I].Detail, Got[I].Detail);
    }
  }
}

/// Repeating a sharded run must reproduce itself exactly — worker
/// scheduling is real nondeterminism the engine has to erase.
TEST(ShardedColocationTrace, RepeatedShardedRunsAreIdentical) {
  const uint64_t Seed = loggedTestSeed(42);
  const ColocationSimResult First = runOnce(Scenario::InjectedFaults, 8, Seed);
  const ColocationSimResult Second = runOnce(Scenario::InjectedFaults, 8, Seed);
  expectIdentical(First, Second, "run-to-run shards=8");
}

//===----------------------------------------------------------------------===//
// Pipeline fleet
//===----------------------------------------------------------------------===//

PipelineFleetOptions fleetOptions(unsigned Shards, uint64_t Seed) {
  PipelineFleetOptions Opts;
  Opts.Shards = Shards;
  Opts.App.Name = "ferretish";
  Opts.App.Stages = {{"load", true, 0.01, 0.1},
                     {"rank", true, 0.05, 0.2},
                     {"out", false, 0.005, 0.1}};
  Opts.Base.Contexts = 16;
  Opts.Base.Seed = Seed;
  Opts.Base.NumItems = 600;
  return Opts;
}

TEST(PipelineFleetTest, FleetOfOneMatchesPlainPipelineSim) {
  const uint64_t Seed = loggedTestSeed(42);
  PipelineFleetOptions Opts = fleetOptions(1, Seed);
  const PipelineFleetResult Fleet = runPipelineFleet(Opts);

  PipelineSim Plain(Opts.App, Opts.Base);
  const PipelineSimResult Want = Plain.run(nullptr);

  ASSERT_EQ(Fleet.Replicas.size(), 1u);
  EXPECT_EQ(Fleet.ItemsCompleted, Want.ItemsCompleted);
  EXPECT_EQ(Fleet.Throughput, Want.Throughput);
  EXPECT_EQ(Fleet.Replicas[0].TotalSeconds, Want.TotalSeconds);
  EXPECT_EQ(Fleet.Replicas[0].Reconfigurations, Want.Reconfigurations);
}

TEST(PipelineFleetTest, FleetSplitsItemsAndIsDeterministic) {
  const uint64_t Seed = loggedTestSeed(42);
  for (unsigned Shards : {2u, 4u}) {
    PipelineFleetOptions Opts = fleetOptions(Shards, Seed);
    const PipelineFleetResult First = runPipelineFleet(Opts);
    const PipelineFleetResult Second = runPipelineFleet(Opts);

    ASSERT_EQ(First.Replicas.size(), Shards);
    EXPECT_EQ(First.ItemsCompleted, Opts.Base.NumItems)
        << "batch fleet completes every item";
    EXPECT_EQ(First.ItemsCompleted, Second.ItemsCompleted);
    EXPECT_EQ(First.Throughput, Second.Throughput);
    EXPECT_EQ(First.P95ResponseSeconds, Second.P95ResponseSeconds);
    for (unsigned R = 0; R != Shards; ++R) {
      EXPECT_EQ(First.Replicas[R].ItemsCompleted,
                Second.Replicas[R].ItemsCompleted)
          << "replica " << R;
      EXPECT_EQ(First.Replicas[R].TotalSeconds,
                Second.Replicas[R].TotalSeconds)
          << "replica " << R;
    }
  }
}

TEST(PipelineFleetTest, ReplicaZeroKeepsBaseSeedStream) {
  // Replica 0 of any fleet runs the base seed with its share of items —
  // growing the fleet must not perturb lower-indexed replica streams.
  const uint64_t Seed = loggedTestSeed(42);
  PipelineFleetOptions Opts = fleetOptions(2, Seed);
  const PipelineFleetResult Fleet = runPipelineFleet(Opts);

  PipelineSimOptions Solo = Opts.Base;
  Solo.NumItems = Opts.Base.NumItems / 2; // replica 0's share
  PipelineSim Plain(Opts.App, Solo);
  const PipelineSimResult Want = Plain.run(nullptr);
  EXPECT_EQ(Fleet.Replicas[0].ItemsCompleted, Want.ItemsCompleted);
  EXPECT_EQ(Fleet.Replicas[0].TotalSeconds, Want.TotalSeconds);
}

TEST(PipelineFleetTest, RejectsZeroShards) {
  PipelineFleetOptions Opts = fleetOptions(0, 42);
  EXPECT_THROW(runPipelineFleet(Opts), std::invalid_argument);
}

} // namespace

//===- sim/PipelineSim.h - Pipeline application simulation -----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discrete-event simulation of a staged pipeline application (ferret,
/// dedup) on the simulated C-context platform, driving real Mechanism
/// objects (TBF, TB, FDP, SEDA, TPC, statics).
///
/// Platform model: processor sharing. Every in-service item progresses at
/// a per-thread rate of min(1, C_eff / BusyThreads) where
/// C_eff = C / (1 + gamma * max(0, BusyThreads / C - 1)); gamma is the
/// application's oversubscription penalty (context switching and cache
/// pollution — the reason "Pthreads-OS" helps ferret but hurts dedup in
/// the paper's Table 15). Items flow stage to stage through bounded
/// queues with producer blocking; a stage's measured begin..end time
/// therefore includes CPU contention but excludes blocked-on-full time,
/// matching where the paper's applications place Task::begin/Task::end.
///
/// Workloads: batch (a feeder keeps the first stage's queue topped up
/// until N items have entered) or open loop (Poisson arrivals) for
/// response-time experiments. Power is modelled by PowerModel and
/// published through a FeatureRegistry with PDU-like sampling lag.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_PIPELINESIM_H
#define DOPE_SIM_PIPELINESIM_H

#include "core/FeatureRegistry.h"
#include "core/Mechanism.h"
#include "core/Placement.h"
#include "core/Task.h"
#include "core/Topology.h"
#include "metrics/FaultStats.h"
#include "metrics/ResponseStats.h"
#include "metrics/TimeSeries.h"
#include "sim/EventQueue.h"
#include "sim/FaultInjector.h"
#include "sim/PowerModel.h"
#include "support/MovingAverage.h"
#include "support/Random.h"
#include "support/Trace.h"
#include "workload/Arrivals.h"

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace dope {

/// One pipeline stage of the application model.
struct PipelineStageSpec {
  std::string Name;
  /// Parallel stages accept any extent; sequential stages are pinned at 1.
  bool Parallel = true;
  /// Mean per-item service time in seconds (at rate 1.0).
  double ServiceSeconds = 1.0;
  /// Coefficient of variation of the per-item service time.
  double Cv = 0.15;
};

/// A pipeline application model, optionally with a fused variant exposed
/// as a second descriptor alternative (paper Sec. 7.2: the developer
/// registers the fused task; DoPE spawns it when TBF triggers fusion).
struct PipelineAppModel {
  std::string Name = "pipeline";
  std::vector<PipelineStageSpec> Stages;
  /// Fused variant; empty when the application exposes none.
  std::vector<PipelineStageSpec> FusedStages;
  /// Oversubscription penalty gamma (see file header): applies when more
  /// threads are simultaneously *busy* than the platform has contexts.
  double OversubPenalty = 0.1;
  /// Thread-footprint penalty delta: created-but-possibly-idle threads
  /// still pollute caches and consume memory, slowing everyone down by
  /// 1 / (1 + delta * max(0, TotalThreads / C - 1)). This is what makes
  /// "Pthreads-OS" a wash for memory-bound dedup while compute-bound
  /// ferret tolerates it (paper Sec. 8.2.2).
  double ThreadOverheadPenalty = 0.02;
};

/// How stage replicas are mapped onto the platform's cores.
enum class PlacementPolicy {
  /// Ignore placement entirely (no communication modelling).
  None,
  /// Locality-maximizing: every socket hosts a slice of every stage and
  /// items are routed to local consumers (placePartitioned +
  /// RoutingPolicy::LocalityPreferring).
  LocalityAware,
  /// Oblivious: stages striped across sockets, uniform routing.
  Oblivious,
};

/// Simulation options.
struct PipelineSimOptions {
  unsigned Contexts = 24;
  uint64_t Seed = 42;
  /// Socket/core structure of the platform (paper: 4 sockets x 6 cores).
  Topology Topo{4, 6, 3.0};
  /// Placement policy for stage replicas.
  PlacementPolicy Place = PlacementPolicy::None;
  /// Per-item inter-stage hand-off cost at communication cost 1.0 (one
  /// intra-socket hop); 0 disables communication modelling.
  double CommSecondsPerHop = 0.0;
  /// Open loop: Poisson arrivals at ArrivalRate. Batch otherwise.
  bool OpenLoop = false;
  double ArrivalRate = 1.0;
  /// Load-factor schedule modulating the open-loop arrival rate over time
  /// (burst/overload traces); an empty trace keeps the rate constant.
  LoadTrace ArrivalTrace;
  /// Admission control: arrivals finding this many items already waiting
  /// in the outer queue are shed (counted, not enqueued), bounding queue
  /// occupancy under overload. 0 disables shedding.
  size_t AdmissionLimit = 0;
  /// Items to push through the pipeline.
  uint64_t NumItems = 2000;
  /// Mechanism decision cadence.
  double DecisionIntervalSeconds = 0.5;
  /// Pause charged per applied reconfiguration.
  double ReconfigPauseSeconds = 0.05;
  /// Inter-stage queue capacity (bounded, producers block).
  size_t QueueCapacity = 64;
  /// Items excluded from response statistics (open loop warm-up).
  uint64_t WarmupItems = 0;
  /// Safety bound on virtual time.
  double MaxSimSeconds = 1e6;
  /// Power model of the platform and its budget (0 = unconstrained).
  PowerModel Power{24, 450.0, 6.25};
  double PowerBudgetWatts = 0.0;
  /// Sampling lag of the power measurement path (paper: 13 samples/min).
  double PowerSampleIntervalSeconds = 60.0 / 13.0;
  /// Width of throughput/power trace windows.
  double TraceWindowSeconds = 1.0;
  /// Structured tracer recording decisions, queue depths, reconfigs, and
  /// fault events in virtual time; null disables tracing. During run()
  /// the tracer's clock is retargeted to the simulator's virtual clock
  /// (and restored afterwards) so mirrored log lines share the domain.
  Tracer *TraceSink = nullptr;
  /// Also emit TaskBegin/TaskEnd records for every item service, with
  /// parentage (B = item id, Detail = upstream stage) linking each
  /// stage's instance to the one that produced the item. Off by default:
  /// instance records are per-item and dominate trace volume; the
  /// what-if profiler turns them on to reconstruct the spawn DAG.
  bool TraceTaskInstances = false;
};

/// A scheduled disturbance: at Time, scale stage Stage's service time by
/// Factor (models the "system event" transient of Fig. 14).
struct Disturbance {
  double Time = 0.0;
  size_t Stage = 0;
  double Factor = 1.0;
  /// Duration of the disturbance; the factor reverts afterwards.
  double Duration = 0.0;
};

/// Results of one simulated run.
struct PipelineSimResult {
  uint64_t ItemsCompleted = 0;
  double TotalSeconds = 0.0;
  /// Overall items/second.
  double Throughput = 0.0;
  /// Open-loop response statistics.
  ResponseStats Stats;
  /// Windowed throughput over time (Fig. 13 / Fig. 14 traces).
  TimeSeries ThroughputSeries{"throughput"};
  /// Sampled power over time (Fig. 14 trace).
  TimeSeries PowerSeries{"power"};
  /// Total configured threads over time.
  TimeSeries ThreadsSeries{"threads"};
  uint64_t Reconfigurations = 0;
  /// Extents per stage at the end of the run.
  std::vector<unsigned> FinalExtents;
  /// True when the run ended on the fused alternative.
  bool EndedFused = false;
  /// Failure/recovery counters (kills, wedges, sheds, drops).
  /// TimeToRecoverSeconds is left for the harness to fill — the engine
  /// does not know the caller's recovery target.
  FaultStats Faults;
  /// Virtual time of the first injected fault; negative without faults.
  double FirstFaultTime = -1.0;
  /// Live contexts at the end of the run (Contexts minus kills).
  unsigned LiveContextsAtEnd = 0;
  /// Peak outer-queue occupancy observed at arrival instants (open loop);
  /// with admission control this is bounded by AdmissionLimit.
  size_t PeakOuterQueue = 0;
};

/// The pipeline simulator.
class PipelineSim {
public:
  PipelineSim(PipelineAppModel App, PipelineSimOptions Opts);

  /// Runs the workload under \p Mech (nullptr = static). \p InitialExtents
  /// sets the starting per-stage extents of the unfused pipeline; empty
  /// means all ones.
  PipelineSimResult run(Mechanism *Mech,
                        std::vector<unsigned> InitialExtents = {});

  /// Adds a disturbance applied during subsequent run() calls.
  void addDisturbance(const Disturbance &D) { Disturbances.push_back(D); }
  void clearDisturbances() { Disturbances.clear(); }

  /// Installs the fault plan applied during subsequent run() calls (the
  /// injector itself is re-seeded per run from the options seed).
  void setFaultPlan(FaultPlan Plan) { Faults = std::move(Plan); }
  const FaultPlan &faultPlan() const { return Faults; }

  /// Analytic throughput bound of a configuration: the lesser of the
  /// bottleneck stage capacity min_i(n_i / s_i) and the CPU pool bound
  /// C_eff / sum_i(s_i). Used for calibration and tests.
  double analyticThroughput(const std::vector<unsigned> &Extents,
                            bool Fused = false) const;

  const PipelineAppModel &app() const { return App; }
  const ParDescriptor *rootRegion() const { return Root; }

  /// Stage count of the unfused pipeline.
  size_t stageCount() const { return App.Stages.size(); }

private:
  void buildGraph();

  PipelineAppModel App;
  PipelineSimOptions Opts;
  std::vector<Disturbance> Disturbances;
  FaultPlan Faults;

  TaskGraph Graph;
  ParDescriptor *Root = nullptr;
  Task *Driver = nullptr;
  std::vector<Task *> StageTasks;
  std::vector<Task *> FusedTasks;
};

} // namespace dope

#endif // DOPE_SIM_PIPELINESIM_H

//===- tests/StatisticsTest.cpp - Streaming statistics tests ---------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dope;

namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), 0.0);
  EXPECT_DOUBLE_EQ(S.max(), 0.0);
}

TEST(StreamingStats, BasicMoments) {
  StreamingStats S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.addSample(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12); // unbiased
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.sum(), 40.0);
}

TEST(StreamingStats, SingleSampleVarianceIsZero) {
  StreamingStats S;
  S.addSample(3.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  StreamingStats All, A, B;
  for (int I = 0; I != 100; ++I) {
    const double X = std::sin(I) * 10.0;
    All.addSample(X);
    (I % 2 ? A : B).addSample(X);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_NEAR(A.mean(), All.mean(), 1e-9);
  EXPECT_NEAR(A.variance(), All.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(A.min(), All.min());
  EXPECT_DOUBLE_EQ(A.max(), All.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats A, Empty;
  A.addSample(1.0);
  A.addSample(2.0);
  StreamingStats Copy = A;
  A.merge(Empty);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_DOUBLE_EQ(A.mean(), Copy.mean());
  Empty.merge(A);
  EXPECT_EQ(Empty.count(), 2u);
  EXPECT_DOUBLE_EQ(Empty.mean(), 1.5);
}

TEST(StreamingStats, ResetClears) {
  StreamingStats S;
  S.addSample(5.0);
  S.reset();
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
}

TEST(PercentileTracker, MedianOfOddCount) {
  PercentileTracker P;
  for (double X : {5.0, 1.0, 3.0})
    P.addSample(X);
  EXPECT_DOUBLE_EQ(P.median(), 3.0);
}

TEST(PercentileTracker, InterpolatesBetweenSamples) {
  PercentileTracker P;
  for (double X : {10.0, 20.0})
    P.addSample(X);
  EXPECT_DOUBLE_EQ(P.percentile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(P.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(P.percentile(1.0), 20.0);
}

TEST(PercentileTracker, EmptyReturnsZero) {
  PercentileTracker P;
  EXPECT_DOUBLE_EQ(P.percentile(0.9), 0.0);
}

TEST(PercentileTracker, TailPercentiles) {
  PercentileTracker P;
  for (int I = 1; I <= 100; ++I)
    P.addSample(static_cast<double>(I));
  EXPECT_NEAR(P.percentile(0.99), 99.01, 0.011);
  EXPECT_NEAR(P.percentile(0.50), 50.5, 0.001);
}

TEST(PercentileTracker, InsertAfterQueryStillSorts) {
  PercentileTracker P;
  P.addSample(2.0);
  EXPECT_DOUBLE_EQ(P.median(), 2.0);
  P.addSample(1.0);
  P.addSample(3.0);
  EXPECT_DOUBLE_EQ(P.median(), 2.0);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram H(0.0, 10.0, 5);
  for (double X : {0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 100.0})
    H.addSample(X);
  EXPECT_EQ(H.bucketCount(), 5u);
  EXPECT_EQ(H.bucketValue(0), 2u); // 0.5, 1.5
  EXPECT_EQ(H.bucketValue(1), 1u); // 2.5
  EXPECT_EQ(H.bucketValue(4), 1u); // 9.9
  EXPECT_EQ(H.underflow(), 1u);
  EXPECT_EQ(H.overflow(), 2u);
  EXPECT_EQ(H.totalCount(), 7u);
  EXPECT_DOUBLE_EQ(H.bucketLowerEdge(0), 0.0);
  EXPECT_DOUBLE_EQ(H.bucketLowerEdge(4), 8.0);
}

TEST(Histogram, RenderHasOneGlyphPerBucket) {
  Histogram H(0.0, 4.0, 4);
  H.addSample(0.5);
  H.addSample(1.5);
  H.addSample(1.6);
  const std::string Art = H.render();
  EXPECT_EQ(Art.size(), 4u);
}

TEST(Geomean, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
  EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({5.0}), 5.0);
}

TEST(Geomean, PaperExampleOneThirtySixPercent) {
  // "The throughputs of two batch-oriented applications were improved by
  // 136% (geomean)": e.g. 2.12x and 2.63x give roughly 2.36x.
  EXPECT_NEAR(geomean({2.12, 2.63}), 2.36, 0.03);
}

} // namespace
